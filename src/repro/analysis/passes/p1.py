"""P1 — parallel-safety: code the campaign executor fans out must fork.

``repro.campaign`` ships units to a ``ProcessPoolExecutor`` and
asserts parallel ≡ serial bit-identity.  That guarantee dies the
moment worker code depends on mutable process-global state, closes
over something a spawn-start child cannot pickle, or forks around live
OS resources.  P1 polices the packages whose functions are submitted
to the executor (``repro.campaign`` itself and the experiment drivers
it runs):

* **module-level mutable state** — a module-scope ``list``/``dict``/
  ``set`` that some function in the same module mutates: workers each
  mutate their own copy and the parent never sees any of it;
* **unpicklable submissions** — a ``lambda`` or locally-defined
  closure passed to ``Executor.submit`` / ``Executor.map`` /
  ``Process(target=…)``: breaks under the spawn start method and
  silently shares closure state under fork;
* **fork-unsafe patterns** — ``os.fork()``, explicitly selecting the
  ``fork`` start method, creating pools/threads/locks or opening
  files at module import time (inherited mid-state by every worker),
  and module-level RNG objects (every worker replays the same stream).

One P1 check is **scope-free** (it applies to every module, not just
the parallel scopes): direct attribute writes to the scoped runtime
flags ``repro.obs.runtime.sink`` and ``repro.faults.runtime.injector``.
Both are served per-context from a ContextVar behind module
``__getattr__``; assigning the module attribute directly bypasses the
scoping entirely — the write is process-visible, shadows every
context's slot, and breaks the install/uninstall pairing the parallel
serve lanes depend on.  Only ``install()`` / ``uninstall()`` and their
context managers may change what a context resolves.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analysis.astutil import Context, dotted_name, in_scope
from repro.analysis.dataflow import functions_in
from repro.analysis.findings import Finding

__all__ = ["PARALLEL_SCOPES", "check_p1"]

#: Packages whose functions run inside campaign executor workers.
PARALLEL_SCOPES = ("repro.campaign", "repro.experiments")

_MUTATING_METHODS = {
    "append", "extend", "add", "update", "setdefault", "insert",
    "remove", "discard", "pop", "popitem", "clear",
}

_SUBMIT_METHODS = {"submit", "map", "apply_async", "imap", "imap_unordered"}

#: Module-scope constructor calls that capture OS state across fork.
_FORK_UNSAFE_CTORS = {
    "ProcessPoolExecutor", "ThreadPoolExecutor", "Pool", "Thread",
    "Lock", "RLock", "Semaphore", "BoundedSemaphore", "Condition",
    "Event", "Queue", "Manager", "open",
}

_RNG_CTORS = {"default_rng", "Generator", "RandomState"}

#: Scoped-runtime flags that must never be assigned directly: the
#: module attribute is a ContextVar-backed fast flag, and only the
#: runtime's own install()/uninstall() may change what a context sees.
_SCOPED_RUNTIME_ATTRS = {
    "repro.obs.runtime.sink": "install()/uninstall()/observing()",
    "repro.faults.runtime.injector": "install()/uninstall()/injecting()",
}

#: The modules that legitimately manage those attributes.
_SCOPED_RUNTIME_MODULES = {"repro.obs.runtime", "repro.faults.runtime"}


def _import_aliases(tree: ast.Module) -> dict:
    """Local name -> the dotted module/object it was imported as."""
    aliases = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                bound = alias.asname or alias.name
                aliases[bound] = f"{node.module}.{alias.name}"
    return aliases


def _scoped_runtime_writes(tree: ast.Module) -> Iterator[tuple]:
    """(node, full_dotted, fix_hint) for direct scoped-flag writes."""
    aliases = _import_aliases(tree)
    for node in ast.walk(tree):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = node.targets
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            dotted = dotted_name(target)
            if dotted is None or "." not in dotted:
                continue
            head, rest = dotted.split(".", 1)
            full = f"{aliases.get(head, head)}.{rest}"
            if full in _SCOPED_RUNTIME_ATTRS:
                yield node, full, _SCOPED_RUNTIME_ATTRS[full]


def _module_level_mutables(tree: ast.Module) -> dict:
    """name -> def-site node for module-scope mutable container bindings."""
    out = {}
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        mutable = isinstance(value, (ast.List, ast.Dict, ast.Set,
                                     ast.ListComp, ast.DictComp,
                                     ast.SetComp))
        if isinstance(value, ast.Call):
            callee = (dotted_name(value.func) or "").split(".")[-1]
            mutable = callee in {"list", "dict", "set", "defaultdict",
                                 "OrderedDict", "Counter", "deque"}
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out[target.id] = stmt
    return out


def _mutation_sites(tree: ast.Module, names: Set[str]) -> dict:
    """name -> first in-function mutation node for module globals."""
    sites = {}
    for unit in functions_in(tree):
        for node in ast.walk(unit.node):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ) and node.func.attr in _MUTATING_METHODS and isinstance(
                node.func.value, ast.Name
            ) and node.func.value.id in names:
                sites.setdefault(node.func.value.id, node)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for t in targets:
                    if isinstance(t, ast.Subscript) and isinstance(
                        t.value, ast.Name
                    ) and t.value.id in names:
                        sites.setdefault(t.value.id, node)
                    elif (
                        isinstance(node, ast.AugAssign)
                        and isinstance(t, ast.Name)
                        and t.id in names
                    ):
                        sites.setdefault(t.id, node)
    return sites


def _local_callables(tree: ast.Module) -> Set[str]:
    """Names of functions defined *inside* other functions (closures)."""
    return {
        u.node.name for u in functions_in(tree) if u.depth > 0
    }


def check_p1(ctx: Context) -> Iterator[Finding]:
    # ---- scope-free: direct writes to the scoped runtime flags
    if ctx.module not in _SCOPED_RUNTIME_MODULES:
        for node, full, fix in _scoped_runtime_writes(ctx.tree):
            yield Finding(
                ctx.path, node.lineno, node.col_offset, "P1",
                f"direct write to `{full}` bypasses the scoped runtime: "
                "the attribute is a ContextVar-backed fast flag, and an "
                "assignment is process-visible instead of per-context; "
                f"use {fix}",
            )

    if not in_scope(ctx.module, PARALLEL_SCOPES):
        return
    tree = ctx.tree

    # ---- module-level mutable state mutated from functions
    mutables = _module_level_mutables(tree)
    if mutables:
        mutated = _mutation_sites(tree, set(mutables))
        for name, def_site in sorted(mutables.items()):
            if name not in mutated:
                continue  # read-only tables are fine
            mut = mutated[name]
            yield Finding(
                ctx.path, def_site.lineno, def_site.col_offset, "P1",
                f"module-level mutable `{name}` is mutated inside a "
                f"function (line {mut.lineno}); executor workers each "
                "mutate a private copy, so results silently diverge "
                "between serial and parallel runs",
            )

    closures = _local_callables(tree)
    module_funcs = {u.node.name for u in functions_in(tree) if u.depth == 0}

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = dotted_name(node.func) or ""
        callee = dotted.split(".")[-1]

        # ---- unpicklable submissions
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SUBMIT_METHODS
            and node.args
        ):
            fn_arg = node.args[0]
            if isinstance(fn_arg, ast.Lambda):
                yield Finding(
                    ctx.path, fn_arg.lineno, fn_arg.col_offset, "P1",
                    f"lambda passed to `.{node.func.attr}()`: lambdas "
                    "cannot be pickled to executor workers; use a "
                    "module-level function (optionally functools.partial)",
                )
            elif isinstance(fn_arg, ast.Name) and fn_arg.id in closures \
                    and fn_arg.id not in module_funcs:
                yield Finding(
                    ctx.path, fn_arg.lineno, fn_arg.col_offset, "P1",
                    f"locally-defined closure `{fn_arg.id}` passed to "
                    f"`.{node.func.attr}()`: closures cannot be pickled "
                    "to executor workers; hoist it to module level",
                )
        if callee == "Process":
            for kw in node.keywords:
                if kw.arg == "target" and isinstance(
                    kw.value, (ast.Lambda, ast.Name)
                ):
                    if isinstance(kw.value, ast.Lambda) or (
                        isinstance(kw.value, ast.Name)
                        and kw.value.id in closures
                        and kw.value.id not in module_funcs
                    ):
                        yield Finding(
                            ctx.path, kw.value.lineno,
                            kw.value.col_offset, "P1",
                            "unpicklable `target=` for Process: use a "
                            "module-level function",
                        )

        # ---- fork-unsafe calls (anywhere)
        if dotted == "os.fork":
            yield Finding(
                ctx.path, node.lineno, node.col_offset, "P1",
                "`os.fork()` in executor-adjacent code: forking a "
                "process with live simulator state is not reproducible;"
                " use the campaign executor instead",
            )
        elif callee == "set_start_method" and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and arg.value == "fork":
                yield Finding(
                    ctx.path, node.lineno, node.col_offset, "P1",
                    "explicitly selecting the `fork` start method "
                    "inherits parent state mid-run; campaign workers "
                    "must be start-method agnostic",
                )

    # ---- fork-unsafe module-import-time constructions
    for stmt in tree.body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.Expr)):
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                dotted = dotted_name(node.func) or ""
                callee = dotted.split(".")[-1]
                if callee in _FORK_UNSAFE_CTORS:
                    yield Finding(
                        ctx.path, node.lineno, node.col_offset, "P1",
                        f"`{callee}(...)` at module import time: every "
                        "executor worker re-creates (or fork-inherits) "
                        "this OS resource mid-state; construct it "
                        "inside the function that uses it",
                    )
                elif callee in _RNG_CTORS and (
                    "random" in dotted or callee == "RandomState"
                ):
                    yield Finding(
                        ctx.path, node.lineno, node.col_offset, "P1",
                        "module-level RNG object: every executor worker "
                        "replays the identical stream and serial vs "
                        "parallel draw order diverges; derive per-unit "
                        "generators via repro.sim.rng instead",
                    )
