"""D2 — RNG-taint: nondeterministic values must not reach sim state.

Where D1 flags entropy *sources* syntactically (and only in a fixed
scope list), D2 tracks the *values* those sources produce through
assignments, arithmetic and calls with a taint dataflow analysis, and
flags any flow into a reproducibility-critical sink anywhere in the
tree:

* a ``seed`` keyword / a ``repro.sim.rng`` seeding call,
* an event-scheduling delay (``<sim>.schedule(delay, ...)``),
* a hash input (``hash()``, ``hashlib.*`` — cache keys, fingerprints),
* simulator state: attribute/subscript writes inside the simulation
  packages.

Taint kinds: entropy calls (``random``, unseeded numpy RNG, wall clock,
``id``, ``uuid``, ``secrets``) and *iteration order* — a list built by
iterating a set or ``.keys()`` view carries hash order even though its
elements are deterministic.  ``sorted()`` launders order taint (that is
the sanctioned fix) but no call launders value entropy.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.astutil import (
    Context,
    RNG_MODULE,
    dotted_name,
    entropy_source,
    in_scope,
    unordered_iterable,
)
from repro.analysis.dataflow import (
    Taint,
    TaintEnv,
    build_cfg,
    functions_in,
    solve_forward,
)
from repro.analysis.findings import Finding

__all__ = ["check_d2"]

#: Packages whose object state is simulator state: a tainted attribute
#: write there embeds entropy in the simulation itself.
SIM_STATE_SCOPES = (
    "repro.core",
    "repro.noc",
    "repro.sim",
    "repro.faults",
)

#: Seeding entry points of repro.sim.rng plus generic seed setters.
_SEED_SINK_FUNCS = {"spawn_rng", "rng_for", "seed", "derive_seed"}

#: Calls whose result does not depend on argument *order* taint.
_ORDER_INSENSITIVE = {
    "sorted", "len", "sum", "min", "max", "set", "frozenset", "any", "all",
}

_HASH_FUNCS = {"sha1", "sha224", "sha256", "sha384", "sha512", "md5",
               "blake2b", "blake2s"}


def _strip_order(taints: FrozenSet[Taint]) -> FrozenSet[Taint]:
    return frozenset(t for t in taints if t.kind != "iter-order")


class _TaintMachine:
    """Expression evaluation + statement transfer for the taint domain."""

    def __init__(self, ctx: Context) -> None:
        self.ctx = ctx
        self.sim_state = in_scope(ctx.module, SIM_STATE_SCOPES)
        self.findings: List[Finding] = []
        self._seen: Set[Tuple[int, int, str]] = set()
        self.report = False

    # ------------------------------------------------------------ findings
    def _emit(self, node: ast.AST, message: str) -> None:
        if not self.report:
            return
        key = (node.lineno, node.col_offset, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(
            Finding(self.ctx.path, node.lineno, node.col_offset, "D2",
                    message)
        )

    @staticmethod
    def _describe(taints: FrozenSet[Taint]) -> str:
        srcs = sorted(str(t) for t in taints)
        return "; ".join(srcs[:3]) + (" …" if len(srcs) > 3 else "")

    # ---------------------------------------------------------- expressions
    def eval(self, node: Optional[ast.expr], env: TaintEnv) -> FrozenSet[Taint]:
        if node is None or isinstance(node, (ast.Constant, ast.Lambda)):
            return frozenset()
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            if dotted is not None:
                return env.get(dotted)
            return self.eval(node.value, env)
        if isinstance(node, ast.Call):
            self.check_call_sinks(node, env)
            src = entropy_source(node)
            taints: FrozenSet[Taint] = frozenset()
            if src is not None:
                kind = "wall-clock" if src.startswith("wall-clock") else "rng"
                taints |= {Taint(kind, node.lineno, src)}
            arg_taints: FrozenSet[Taint] = frozenset()
            for arg in node.args:
                arg_taints |= self.eval(arg, env)
            for kw in node.keywords:
                arg_taints |= self.eval(kw.value, env)
            fn = dotted_name(node.func)
            callee = (fn or "").split(".")[-1]
            if callee in _ORDER_INSENSITIVE:
                arg_taints = _strip_order(arg_taints)
            # method calls: the receiver's taint propagates too
            if isinstance(node.func, ast.Attribute):
                arg_taints |= self.eval(node.func.value, env)
            return taints | arg_taints
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            taints: FrozenSet[Taint] = frozenset()
            inner = env.copy()
            for gen in node.generators:
                reason = unordered_iterable(gen.iter)
                gen_taints = self.eval(gen.iter, inner)
                if reason is not None:
                    gen_taints |= {Taint(
                        "iter-order", node.lineno,
                        f"hash-ordered iteration over {reason}",
                    )}
                for name in _target_names(gen.target):
                    inner.set(name, gen_taints)
                taints |= gen_taints
                for cond in gen.ifs:
                    taints |= self.eval(cond, inner)
            taints |= self.eval(node.elt, inner)
            return taints
        if isinstance(node, (ast.SetComp, ast.DictComp)):
            # The result is itself unordered: element values keep their
            # taint, but hash order of the *source* is laundered.
            taints = frozenset()
            inner = env.copy()
            for gen in node.generators:
                gen_taints = self.eval(gen.iter, inner)
                for name in _target_names(gen.target):
                    inner.set(name, gen_taints)
                taints |= gen_taints
            if isinstance(node, ast.DictComp):
                taints |= self.eval(node.key, inner)
                taints |= self.eval(node.value, inner)
            else:
                taints |= self.eval(node.elt, inner)
            return _strip_order(taints)
        # Generic: union over child expressions (BinOp, BoolOp, Compare,
        # IfExp, Tuple, List, Dict, JoinedStr, Subscript, Starred, ...).
        taints = frozenset()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                taints |= self.eval(child, env)
            elif isinstance(child, ast.comprehension):  # pragma: no cover
                taints |= self.eval(child.iter, env)
        return taints

    # ---------------------------------------------------------------- sinks
    def check_call_sinks(self, node: ast.Call, env: TaintEnv) -> None:
        fn = dotted_name(node.func) or ""
        callee = fn.split(".")[-1]
        # seed sinks
        for kw in node.keywords:
            if kw.arg == "seed":
                taints = self.eval(kw.value, env)
                if taints:
                    self._emit(
                        kw.value,
                        "nondeterministic value flows into `seed=`: "
                        + self._describe(taints),
                    )
        if callee in _SEED_SINK_FUNCS:
            for arg in node.args:
                taints = self.eval(arg, env)
                if taints:
                    self._emit(
                        arg,
                        f"nondeterministic value flows into `{fn}()`: "
                        + self._describe(taints),
                    )
        # event-scheduling delay sink
        if callee == "schedule" and node.args:
            taints = self.eval(node.args[0], env)
            if taints:
                self._emit(
                    node.args[0],
                    "nondeterministic delay flows into `schedule()`: "
                    + self._describe(taints),
                )
        # hash sinks
        if fn == "hash" or fn.startswith("hashlib.") or (
            callee in _HASH_FUNCS and fn.split(".")[0] == "hashlib"
        ):
            for arg in node.args:
                taints = self.eval(arg, env)
                if taints:
                    self._emit(
                        arg,
                        f"nondeterministic value flows into `{fn}()` "
                        "(unstable hash/cache key): "
                        + self._describe(taints),
                    )

    def _check_state_write(
        self, target: ast.expr, taints: FrozenSet[Taint]
    ) -> None:
        if not (self.sim_state and taints):
            return
        if isinstance(target, ast.Attribute):
            self._emit(
                target,
                f"nondeterministic value stored into simulator state "
                f"`{dotted_name(target) or target.attr}`: "
                + self._describe(taints),
            )
        elif isinstance(target, ast.Subscript) and isinstance(
            target.value, (ast.Attribute, ast.Name)
        ):
            base = dotted_name(target.value) or "container"
            if isinstance(target.value, ast.Attribute):
                self._emit(
                    target,
                    f"nondeterministic value stored into simulator state "
                    f"`{base}[...]`: " + self._describe(taints),
                )

    # ----------------------------------------------------------- statements
    def transfer_stmt(self, stmt: ast.stmt, env: TaintEnv) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested definitions analyzed separately
        if isinstance(stmt, ast.Assign):
            taints = self.eval(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, stmt.value, taints, env)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            taints = self.eval(stmt.value, env)
            self._assign(stmt.target, stmt.value, taints, env)
            return
        if isinstance(stmt, ast.AugAssign):
            taints = self.eval(stmt.value, env) | self.eval(
                _as_load(stmt.target), env
            )
            self._assign(stmt.target, stmt.value, taints, env)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            taints = self.eval(stmt.iter, env)
            reason = unordered_iterable(stmt.iter)
            if reason is not None:
                taints |= {Taint(
                    "iter-order", stmt.iter.lineno,
                    f"hash-ordered iteration over {reason}",
                )}
            for name in _target_names(stmt.target):
                env.set(name, taints)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taints = self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    for name in _target_names(item.optional_vars):
                        env.set(name, taints)
            return
        if isinstance(stmt, ast.Try):
            return  # structure handled by the CFG; headers carry no exprs
        if isinstance(stmt, ast.excepthandler):
            return
        if isinstance(stmt, ast.If):
            self.eval(stmt.test, env)
            return
        if isinstance(stmt, ast.While):
            self.eval(stmt.test, env)
            return
        # Expression statements, returns, asserts, deletes, raises:
        # evaluate for sink checks inside calls.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self.eval(child, env)

    def _assign(
        self,
        target: ast.expr,
        value: ast.expr,
        taints: FrozenSet[Taint],
        env: TaintEnv,
    ) -> None:
        if isinstance(target, ast.Name):
            env.set(target.id, taints)
        elif isinstance(target, (ast.Tuple, ast.List)):
            # Elementwise when shapes line up, else smear.
            if isinstance(value, (ast.Tuple, ast.List)) and len(
                value.elts
            ) == len(target.elts):
                for t_el, v_el in zip(target.elts, value.elts):
                    self._assign(t_el, v_el, self.eval(v_el, env), env)
            else:
                for t_el in target.elts:
                    self._assign(t_el, value, taints, env)
        elif isinstance(target, ast.Attribute):
            self._check_state_write(target, taints)
            dotted = dotted_name(target)
            if dotted is not None:
                env.set(dotted, taints)
        elif isinstance(target, ast.Subscript):
            self._check_state_write(target, taints)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, value, taints, env)


def _target_names(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for el in target.elts:
            names.extend(_target_names(el))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


def _as_load(target: ast.expr) -> ast.expr:
    """Reuse an assignment target as a read (taint lookup only)."""
    return target


def _analyze_unit(
    ctx: Context, body_owner: "ast.AST", machine: _TaintMachine
) -> None:
    cfg = build_cfg(body_owner)  # type: ignore[arg-type]

    def transfer(block, state: TaintEnv) -> TaintEnv:
        out = state.copy()
        for stmt in block.stmts:
            machine.transfer_stmt(stmt, out)
        return out

    try:
        entry = solve_forward(
            cfg,
            TaintEnv(),
            transfer,
            lambda a, b: a.join(b),
            lambda s: s.copy(),
        )
    except RecursionError:  # pragma: no cover - pathological nesting
        return
    # Reporting sweep: replay each block once from its fixpoint entry
    # state with finding emission enabled.
    machine.report = True
    for bid in sorted(cfg.blocks):
        state = entry.get(bid)
        if state is None:
            continue
        out = state.copy()
        for stmt in cfg.blocks[bid].stmts:
            machine.transfer_stmt(stmt, out)
    machine.report = False


class _ModuleBody:
    """Duck-typed function: lets module-level code reuse build_cfg."""

    def __init__(self, tree: ast.Module) -> None:
        self.body = tree.body


def check_d2(ctx: Context) -> Iterator[Finding]:
    if ctx.module == RNG_MODULE:
        return
    machine = _TaintMachine(ctx)
    _analyze_unit(ctx, _ModuleBody(ctx.tree), machine)
    for unit in functions_in(ctx.tree):
        _analyze_unit(ctx, unit.node, machine)
    yield from machine.findings
