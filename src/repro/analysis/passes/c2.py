"""C2 — coin-flow: every code path must move coins delta-balanced.

The engine's conserved quantity is ``Σ tile.has + _in_flight +
(coins_lost - coins_reminted)``.  Every function that touches coin
accounting must leave that sum unchanged on *every* control-flow path —
the runtime sanitizer checks this dynamically per event; C2 proves it
statically per function by abstract interpretation of the coin ledger.

Recognized movements (the accounting vocabulary):

* ``<x>._apply_delta(t, e)``  → ``+e`` into tile registers,
* ``self._in_flight += e`` / ``-= e`` → ``±e`` into the NoC ledger,
* ``<x>._book_loss(e, …)`` / ``self.coins_lost += e`` → ``+e`` lost,
* ``self.coins_reminted += e`` → ``-e`` lost (re-minting drains the
  pending-loss ledger).

A path is balanced when the symbolic sum of its movements reduces to
zero.  The reducer knows one algebraic fact beyond term cancellation:
an ``ExchangeResult.deltas`` tuple sums to zero (``repro.core.coins``
guarantees it), so applying *all* elements of one deltas family —
directly, by unpacking, or by looping over a ``deltas[k:]`` slice —
balances.  The ledger primitives themselves (``_apply_delta``,
``_book_loss``) are exempt: their bodies *define* the movements their
call sites account for.

Paths are enumerated acyclically over the function's CFG (closures
included, sharing the enclosing function's delta families).  A loop
body containing movements must balance on its own unless it iterates a
deltas slice (then it contributes ``sum(deltas[k:])`` as a whole).
"""

from __future__ import annotations

import ast
import copy
from collections import Counter
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.astutil import Context, dotted_name, in_scope
from repro.analysis.dataflow import build_cfg, functions_in, iter_acyclic_paths
from repro.analysis.findings import Finding

__all__ = ["COIN_SCOPES", "check_c2"]

COIN_SCOPES = ("repro.core", "repro.sim")

#: Bodies that define the ledger primitives callers account for.
_EXEMPT_FUNCS = {"_apply_delta", "_book_loss", "__init__", "__post_init__"}

_PATH_LIMIT = 200

# A symbolic movement is a Counter mapping term-key -> coefficient.
# Term keys:  ("term", "<unparsed expr>")  a plain expression
#             ("elt", family_id, index)    one element of a deltas tuple
#             ("rest", family_id, k)       sum of family elements [k:]


class _Families:
    """Zero-sum delta families discovered in one top-level function."""

    def __init__(self) -> None:
        #: name of an unpacked element -> (family_id, element index)
        self.elements: Dict[str, Tuple[int, int]] = {}
        #: name bound to a whole ``.deltas`` tuple -> family id
        self.tuples: Dict[str, int] = {}
        #: family id -> element count (None when bound as a whole tuple)
        self.sizes: Dict[int, Optional[int]] = {}
        self._next = 0

    def new_family(self, size: Optional[int]) -> int:
        fid = self._next
        self._next += 1
        self.sizes[fid] = size
        return fid

    def harvest(self, root: ast.AST) -> None:
        """Find ``… = <x>.deltas`` bindings anywhere under ``root``."""
        for node in ast.walk(root):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            if not (
                isinstance(node.value, ast.Attribute)
                and node.value.attr == "deltas"
            ):
                continue
            target = node.targets[0]
            if isinstance(target, ast.Name):
                self.tuples[target.id] = self.new_family(None)
            elif isinstance(target, (ast.Tuple, ast.List)) and all(
                isinstance(el, ast.Name) for el in target.elts
            ):
                fid = self.new_family(len(target.elts))
                for i, el in enumerate(target.elts):
                    self.elements[el.id] = (fid, i)


def _negate(term: Counter) -> Counter:
    return Counter({k: -v for k, v in term.items()})


def _accumulate(total: Counter, move: Counter) -> None:
    # Counter's `+` operator drops non-positive entries, which would
    # silently erase negative movements; accumulate coefficients by hand.
    for key, coeff in move.items():
        total[key] += coeff


class _Accountant:
    """Turns AST subtrees into symbolic coin movements."""

    def __init__(self, families: _Families) -> None:
        self.families = families

    def term_of(self, expr: ast.expr) -> Counter:
        """Symbolic value of a movement amount expression."""
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
            return _negate(self.term_of(expr.operand))
        if isinstance(expr, ast.Name):
            fam = self.families.elements.get(expr.id)
            if fam is not None:
                return Counter({("elt", fam[0], fam[1]): 1})
        if isinstance(expr, ast.Subscript) and isinstance(
            expr.value, ast.Name
        ):
            fid = self.families.tuples.get(expr.value.id)
            if fid is not None:
                idx = _const_int(expr.slice)
                if idx is not None:
                    return Counter({("elt", fid, idx): 1})
        if isinstance(expr, ast.Constant) and expr.value == 0:
            return Counter()
        try:
            text = ast.unparse(expr)
        except Exception:  # pragma: no cover - unparse is total on exprs
            text = repr(expr)
        return Counter({("term", text): 1})

    def movements_in(self, node: ast.AST) -> List[Counter]:
        """All coin movements in a subtree (each AST node counted once)."""
        moves: List[Counter] = []
        for sub in ast.walk(node):
            if isinstance(sub, ast.AugAssign) and isinstance(
                sub.target, ast.Attribute
            ):
                account = sub.target.attr
                sign = 0
                if account == "_in_flight":
                    if isinstance(sub.op, ast.Add):
                        sign = 1
                    elif isinstance(sub.op, ast.Sub):
                        sign = -1
                elif account == "coins_lost" and isinstance(sub.op, ast.Add):
                    sign = 1
                elif account == "coins_reminted" and isinstance(
                    sub.op, ast.Add
                ):
                    sign = -1
                if sign:
                    term = self.term_of(sub.value)
                    moves.append(term if sign > 0 else _negate(term))
            elif isinstance(sub, ast.Call):
                callee = (dotted_name(sub.func) or "").split(".")[-1]
                if callee == "_apply_delta" and len(sub.args) >= 2:
                    moves.append(self.term_of(sub.args[1]))
                elif callee == "_book_loss" and sub.args:
                    moves.append(self.term_of(sub.args[0]))
        return moves

    def loop_family_slice(
        self, stmt: "ast.For | ast.AsyncFor"
    ) -> Optional[Tuple[int, int, Set[str]]]:
        """Detect ``for … in deltas[k:]`` (possibly through ``zip``).

        Returns (family_id, k, {loop-var names bound to delta elements}),
        or None for ordinary loops.
        """
        pairs: List[Tuple[ast.expr, ast.expr]] = []
        if (
            isinstance(stmt.iter, ast.Call)
            and isinstance(stmt.iter.func, ast.Name)
            and stmt.iter.func.id == "zip"
            and isinstance(stmt.target, (ast.Tuple, ast.List))
            and len(stmt.iter.args) == len(stmt.target.elts)
        ):
            pairs = list(zip(stmt.target.elts, stmt.iter.args))
        else:
            pairs = [(stmt.target, stmt.iter)]
        for target, source in pairs:
            if not isinstance(target, ast.Name):
                continue
            if isinstance(source, ast.Name):
                fid = self.families.tuples.get(source.id)
                if fid is not None:
                    return fid, 0, {target.id}
            elif isinstance(source, ast.Subscript) and isinstance(
                source.value, ast.Name
            ):
                fid = self.families.tuples.get(source.value.id)
                if fid is None or not isinstance(source.slice, ast.Slice):
                    continue
                if source.slice.upper is None and source.slice.step is None:
                    k = _const_int(source.slice.lower) or 0
                    return fid, k, {target.id}
        return None

    def loop_body_sign(
        self, stmt: "ast.For | ast.AsyncFor", loop_vars: Set[str]
    ) -> int:
        """Net per-iteration coefficient of movements on the loop var."""
        sign = 0
        for body_stmt in stmt.body:
            for move in self.movements_in(body_stmt):
                for key, coeff in move.items():
                    if key[0] == "term" and key[1] in loop_vars:
                        sign += coeff
        return sign


def _const_int(node: Optional[ast.AST]) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    return None


def _reduce(total: Counter, families: _Families) -> Counter:
    """Cancel zero-sum delta families out of a symbolic path sum."""
    total = Counter({k: v for k, v in total.items() if v != 0})
    changed = True
    while changed:
        changed = False
        for fid, size in families.sizes.items():
            elts = {
                k: v for k, v in total.items()
                if k[0] == "elt" and k[1] == fid
            }
            rests = {
                k: v for k, v in total.items()
                if k[0] == "rest" and k[1] == fid
            }
            if not elts and not rests:
                continue
            coeffs = set(elts.values()) | set(rests.values())
            if len(coeffs) != 1:
                continue
            indices = sorted(k[2] for k in elts)
            cancel = False
            if len(rests) == 1:
                # elements [0..k-1] plus sum(deltas[k:]) = sum(deltas)
                k_rest = next(iter(rests))[2]
                cancel = indices == list(range(k_rest))
            elif not rests and size is not None:
                cancel = indices == list(range(size))
            if cancel:
                for k in list(elts) + list(rests):
                    del total[k]
                changed = True
        total = Counter({k: v for k, v in total.items() if v != 0})
    return total


def _pretty(total: Counter) -> str:
    parts: List[str] = []
    for key, coeff in sorted(total.items(), key=lambda kv: str(kv[0])):
        if key[0] == "term":
            name = key[1]
        elif key[0] == "elt":
            name = f"deltas#{key[1]}[{key[2]}]"
        else:
            name = f"sum(deltas#{key[1]}[{key[2]}:])"
        sign = "+" if coeff > 0 else "-"
        mag = abs(coeff)
        parts.append(f"{sign}{mag}*{name}" if mag != 1 else f"{sign}{name}")
    return " ".join(parts) or "0"


class _Strip(ast.NodeTransformer):
    """Empty out nested function bodies (they get their own analysis)."""

    def _strip(self, node: ast.AST) -> ast.AST:
        node.body = [ast.copy_location(ast.Pass(), node)]  # type: ignore
        return node

    def visit_FunctionDef(self, node: ast.FunctionDef) -> ast.AST:
        return self._strip(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> ast.AST:
        return self._strip(node)


def _own_body(
    fn: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> "ast.FunctionDef | ast.AsyncFunctionDef":
    clone = copy.deepcopy(fn)
    stripper = _Strip()
    clone.body = [stripper.visit(s) for s in clone.body]
    return clone


def _path_residues(
    owner: "ast.FunctionDef | ast.AsyncFunctionDef",
    families: _Families,
    acct: _Accountant,
) -> Iterator[Counter]:
    """Residues of unbalanced acyclic paths through ``owner``'s body."""
    cfg = build_cfg(owner)
    for path in iter_acyclic_paths(cfg, limit=_PATH_LIMIT):
        total: Counter = Counter()
        for block in path:
            for stmt in block.stmts:
                if isinstance(
                    stmt,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    continue
                if isinstance(stmt, (ast.For, ast.AsyncFor)):
                    fam = acct.loop_family_slice(stmt)
                    if fam is not None:
                        fid, k, loop_vars = fam
                        sign = acct.loop_body_sign(stmt, loop_vars)
                        if sign:
                            _accumulate(
                                total, Counter({("rest", fid, k): sign})
                            )
                    # Ordinary loop bodies are checked separately (their
                    # CFG blocks never complete an acyclic path).
                    continue
                if isinstance(stmt, (ast.If, ast.While, ast.Try)):
                    continue  # compound headers move nothing themselves
                for move in acct.movements_in(stmt):
                    _accumulate(total, move)
        residue = _reduce(total, families)
        if residue:
            yield residue


def _loop_bodies_with_movements(
    owner: "ast.FunctionDef | ast.AsyncFunctionDef", acct: _Accountant
) -> Iterator["ast.For | ast.AsyncFor | ast.While"]:
    for node in ast.walk(owner):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if acct.loop_family_slice(node) is not None:
                continue
        elif not isinstance(node, ast.While):
            continue
        if any(acct.movements_in(s) for s in node.body):
            yield node


class _LoopBody:
    """Duck-typed function wrapper so a loop body can reuse build_cfg."""

    def __init__(self, stmts: List[ast.stmt], lineno: int) -> None:
        self.body = stmts
        self.lineno = lineno
        self.col_offset = 0


def check_c2(ctx: Context) -> Iterator[Finding]:
    if not in_scope(ctx.module, COIN_SCOPES):
        return
    units = functions_in(ctx.tree)
    by_qual = {u.qualname: u for u in units}
    fam_of_top: Dict[str, _Families] = {}
    for u in units:
        if u.depth == 0:
            fam = _Families()
            fam.harvest(u.node)
            fam_of_top[u.qualname] = fam
    emitted: Set[Tuple[int, str]] = set()
    for unit in units:
        if unit.node.name in _EXEMPT_FUNCS:
            continue
        top = unit
        while top.depth > 0 and top.parent in by_qual:
            top = by_qual[top.parent]
        families = fam_of_top.get(top.qualname) or _Families()
        acct = _Accountant(families)
        own = _own_body(unit.node)
        if not any(acct.movements_in(s) for s in own.body):
            continue
        messages: List[Tuple[int, int, str]] = []
        for residue in _path_residues(own, families, acct):
            messages.append((
                unit.node.lineno,
                unit.node.col_offset,
                f"code path through `{unit.qualname}` moves coins "
                f"unbalanced (net {_pretty(residue)}); every path must "
                "conserve Σhas + in_flight + lost_pending",
            ))
        for loop in _loop_bodies_with_movements(own, acct):
            body_fn = _LoopBody(loop.body, loop.lineno)
            for residue in _path_residues(body_fn, families, acct):  # type: ignore[arg-type]
                messages.append((
                    loop.lineno,
                    loop.col_offset,
                    f"loop body in `{unit.qualname}` moves coins "
                    f"unbalanced per iteration (net {_pretty(residue)})",
                ))
        for line, col, msg in messages:
            if (line, msg) in emitted:
                continue
            emitted.add((line, msg))
            yield Finding(ctx.path, line, col, "C2", msg)
