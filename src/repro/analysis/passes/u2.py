"""U2 — units-flow: propagate unit tags and flag unit-unsafe math.

U1 makes public APIs *declare* their unit in the docstring; U2 makes
the arithmetic *respect* units.  Unit tags enter the analysis from two
places — identifier suffix conventions (``budget_mw``, ``base_j``,
``hop_cycles``, ``f_hz`` …) and U1 docstring declarations of functions
defined in the same module — and propagate through assignments,
``+``/``-``, ``min``/``max``/``sum``/``abs`` and comparisons via a
forward dataflow over each function's CFG.

Findings:

* **mixed-unit arithmetic** — adding/subtracting/comparing two values
  whose inferred units differ (watts + joules, mW + W, cycles + us);
* **unit-dropping assignment** — binding a value of one unit to a name
  whose suffix declares another (``total_mw = energy_j``);
* **unit-contradicting return** — a function whose docstring declares
  exactly one unit returning a value inferred to a different one.

Multiplication/division produce *derived* units and intentionally drop
to unknown; unknown never triggers a finding — only two *confidently*
conflicting tags do.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.astutil import Context, dotted_name, in_scope
from repro.analysis.dataflow import UnitEnv, build_cfg, functions_in, solve_forward
from repro.analysis.findings import Finding

__all__ = ["UNIT_SCOPES", "check_u2", "unit_of_identifier"]

#: Packages whose arithmetic mixes clock domains and power/energy math.
UNIT_SCOPES = (
    "repro.core",
    "repro.noc",
    "repro.power",
    "repro.thermal",
)

#: identifier suffix token -> canonical unit tag
_SUFFIX_UNITS: Dict[str, str] = {
    "mw": "mW", "uw": "uW", "w": "W", "kw": "kW", "watts": "W",
    "j": "J", "mj": "mJ", "uj": "uJ", "joules": "J",
    "cycles": "cycles", "cyc": "cycles",
    "coins": "coins",
    "us": "us", "ns": "ns", "ms": "ms", "sec": "s", "secs": "s",
    "seconds": "s",
    "hz": "Hz", "khz": "kHz", "mhz": "MHz", "ghz": "GHz",
}

#: Short tokens only count as *suffixes* (``power_w`` yes, bare ``w`` no);
#: word-like tokens may also be the whole name (``cycles``, ``coins``).
_WHOLE_NAME_OK = {"cycles", "coins", "watts", "joules", "seconds"}

_DIMENSION: Dict[str, str] = {
    "mW": "power", "uW": "power", "W": "power", "kW": "power",
    "J": "energy", "mJ": "energy", "uJ": "energy",
    "cycles": "time-cycles",
    "coins": "coins",
    "us": "time-wall", "ns": "time-wall", "ms": "time-wall",
    "s": "time-wall",
    "Hz": "frequency", "kHz": "frequency", "MHz": "frequency",
    "GHz": "frequency",
    "K/W": "thermal-resistance",
}

#: docstring word -> canonical unit, for U1-declaration harvesting.
_DOC_UNIT_WORDS: Dict[str, str] = {
    "mw": "mW", "milliwatt": "mW", "milliwatts": "mW",
    "watt": "W", "watts": "W",
    "joule": "J", "joules": "J", "mj": "mJ",
    "cycle": "cycles", "cycles": "cycles",
    "coin": "coins", "coins": "coins",
    "us": "us", "microsecond": "us", "microseconds": "us",
    "ms": "ms", "millisecond": "ms", "milliseconds": "ms",
    "ns": "ns", "nanosecond": "ns", "nanoseconds": "ns",
    "second": "s", "seconds": "s",
    "hz": "Hz", "khz": "kHz", "mhz": "MHz", "ghz": "GHz",
}

_DOC_TOKEN_RE = re.compile(r"[A-Za-z]+")

#: Calls that preserve the unit of their (uniform-unit) arguments.
_UNIT_PRESERVING = {"min", "max", "abs", "sum", "round", "int", "float",
                    "sorted"}


def unit_of_identifier(name: str) -> Optional[str]:
    """Unit tag from a naming convention, or None."""
    low = name.lower()
    if low.endswith("_k_per_w") or low.endswith("k_per_w"):
        return "K/W"
    if low.endswith("_per_cycle") or "_per_" in low:
        return None  # derived rates are untracked
    tokens = low.split("_")
    last = tokens[-1]
    unit = _SUFFIX_UNITS.get(last)
    if unit is None:
        return None
    if len(tokens) == 1 and last not in _WHOLE_NAME_OK:
        return None
    return unit


def _docstring_unit(doc: Optional[str]) -> Optional[str]:
    """The single unit a docstring declares, or None if 0 or several."""
    if not doc:
        return None
    units: Set[str] = set()
    for tok in _DOC_TOKEN_RE.findall(doc.lower()):
        u = _DOC_UNIT_WORDS.get(tok)
        if u is not None:
            units.add(u)
    if len(units) == 1:
        return next(iter(units))
    return None


def _module_fn_units(tree: ast.Module) -> Dict[str, str]:
    """name -> docstring-declared unit, for same-module call results."""
    out: Dict[str, str] = {}
    for unit in functions_in(tree):
        declared = _docstring_unit(ast.get_docstring(unit.node))
        if declared is not None:
            out.setdefault(unit.node.name, declared)
    return out


class _UnitMachine:
    def __init__(self, ctx: Context, fn_units: Dict[str, str]) -> None:
        self.ctx = ctx
        self.fn_units = fn_units
        self.findings: List[Finding] = []
        self._seen: Set[Tuple[int, int, str]] = set()
        self.report = False
        self.declared: Optional[str] = None  # enclosing fn docstring unit

    def _emit(self, node: ast.AST, message: str) -> None:
        if not self.report:
            return
        key = (node.lineno, node.col_offset, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(
            Finding(self.ctx.path, node.lineno, node.col_offset, "U2",
                    message)
        )

    # ---------------------------------------------------------- expressions
    def eval(self, node: Optional[ast.expr], env: UnitEnv) -> Optional[str]:
        if node is None or isinstance(node, ast.Constant):
            return None
        if isinstance(node, ast.Name):
            return env.get(node.id) or unit_of_identifier(node.id)
        if isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            if dotted is not None:
                hit = env.get(dotted)
                if hit is not None:
                    return hit
            return unit_of_identifier(node.attr)
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand, env)
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left, env)
            right = self.eval(node.right, env)
            if isinstance(node.op, (ast.Add, ast.Sub)):
                if left and right and left != right:
                    self._emit(
                        node,
                        f"mixed-unit arithmetic: `{_src(node.left)}` [{left}] "
                        f"{'+' if isinstance(node.op, ast.Add) else '-'} "
                        f"`{_src(node.right)}` [{right}]",
                    )
                    return None
                return left or right
            if isinstance(node.op, (ast.FloorDiv, ast.Mod)):
                return left if left == right else None
            return None  # *, /, ** produce derived units
        if isinstance(node, ast.Compare):
            left_u = self.eval(node.left, env)
            for op, comp in zip(node.ops, node.comparators):
                right_u = self.eval(comp, env)
                if (
                    left_u and right_u and left_u != right_u
                    and isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                ):
                    self._emit(
                        node,
                        f"mixed-unit comparison: `{_src(node.left)}` "
                        f"[{left_u}] vs `{_src(comp)}` [{right_u}]",
                    )
                left_u = right_u
            return None
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            a = self.eval(node.body, env)
            b = self.eval(node.orelse, env)
            return a if a == b else None
        if isinstance(node, ast.Call):
            for arg in node.args:
                self.eval(arg, env)
            for kw in node.keywords:
                self.eval(kw.value, env)
            fn = dotted_name(node.func)
            callee = (fn or "").split(".")[-1]
            if callee in _UNIT_PRESERVING and node.args:
                arg_units = {self.eval(a, env) for a in node.args}
                arg_units.discard(None)
                if len(arg_units) == 1:
                    return next(iter(arg_units))
                return None
            if callee in self.fn_units:
                return self.fn_units[callee]
            return None
        if isinstance(node, ast.Subscript):
            base = self.eval(node.value, env)
            self.eval(node.slice, env)
            return base
        if isinstance(node, (ast.Tuple, ast.List, ast.Dict, ast.Set)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.eval(child, env)
            return None
        # generic: evaluate children for nested finding detection
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child, env)
        return None

    # ----------------------------------------------------------- statements
    def transfer_stmt(self, stmt: ast.stmt, env: UnitEnv) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return
        if isinstance(stmt, ast.Assign):
            unit = self.eval(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, stmt.value, unit, env)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            unit = self.eval(stmt.value, env)
            self._assign(stmt.target, stmt.value, unit, env)
            return
        if isinstance(stmt, ast.AugAssign):
            value_unit = self.eval(stmt.value, env)
            target_unit = self.eval(stmt.target, env)
            if (
                isinstance(stmt.op, (ast.Add, ast.Sub))
                and value_unit and target_unit
                and value_unit != target_unit
            ):
                self._emit(
                    stmt,
                    f"mixed-unit arithmetic: `{_src(stmt.target)}` "
                    f"[{target_unit}] "
                    f"{'+=' if isinstance(stmt.op, ast.Add) else '-='} "
                    f"`{_src(stmt.value)}` [{value_unit}]",
                )
            return
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            got = self.eval(stmt.value, env)
            if self.declared and got and got != self.declared:
                self._emit(
                    stmt,
                    f"returns `{_src(stmt.value)}` [{got}] but the "
                    f"docstring declares {self.declared}; convert or "
                    "fix the declaration",
                )
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            unit = self.eval(stmt.iter, env)
            for name in _target_names(stmt.target):
                env.set(name, unit)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self.eval(child, env)

    def _assign(
        self,
        target: ast.expr,
        value: ast.expr,
        unit: Optional[str],
        env: UnitEnv,
    ) -> None:
        if isinstance(target, ast.Name):
            declared = unit_of_identifier(target.id)
            if declared and unit and declared != unit:
                self._emit(
                    target,
                    f"unit-dropping assignment: `{target.id}` is named "
                    f"[{declared}] but is bound to `{_src(value)}` "
                    f"[{unit}]",
                )
            env.set(target.id, unit or declared)
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (ast.Tuple, ast.List)) and len(
                value.elts
            ) == len(target.elts):
                for t_el, v_el in zip(target.elts, value.elts):
                    self._assign(t_el, v_el, self.eval(v_el, env), env)
            else:
                for t_el in target.elts:
                    if isinstance(t_el, ast.Name):
                        env.set(t_el.id, None)
        elif isinstance(target, ast.Attribute):
            declared = unit_of_identifier(target.attr)
            if declared and unit and declared != unit:
                self._emit(
                    target,
                    f"unit-dropping assignment: "
                    f"`{dotted_name(target) or target.attr}` is named "
                    f"[{declared}] but is bound to `{_src(value)}` "
                    f"[{unit}]",
                )
            dotted = dotted_name(target)
            if dotted is not None:
                env.set(dotted, unit or declared)


def _target_names(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: List[str] = []
        for el in target.elts:
            out.extend(_target_names(el))
        return out
    return []


def _src(node: ast.expr) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on exprs
        return "<expr>"
    return text if len(text) <= 40 else text[:37] + "..."


def check_u2(ctx: Context) -> Iterator[Finding]:
    if not in_scope(ctx.module, UNIT_SCOPES):
        return
    fn_units = _module_fn_units(ctx.tree)
    machine = _UnitMachine(ctx, fn_units)
    for unit in functions_in(ctx.tree):
        machine.declared = _docstring_unit(ast.get_docstring(unit.node))
        cfg = build_cfg(unit.node)

        def transfer(block, state: UnitEnv) -> UnitEnv:
            out = state.copy()
            for stmt in block.stmts:
                machine.transfer_stmt(stmt, out)
            return out

        entry = solve_forward(
            cfg,
            UnitEnv(),
            transfer,
            lambda a, b: a.join(b),
            lambda s: s.copy(),
        )
        machine.report = True
        for bid in sorted(cfg.blocks):
            state = entry.get(bid)
            if state is None:
                continue
            out = state.copy()
            for stmt in cfg.blocks[bid].stmts:
                machine.transfer_stmt(stmt, out)
        machine.report = False
    yield from machine.findings
