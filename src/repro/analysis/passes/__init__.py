"""blitzlint v2 rule families, built on ``repro.analysis.dataflow``.

Each pass exports ``check_<code>(ctx) -> Iterator[Finding]`` with the
same contract as the syntactic rules in ``repro.analysis.lint``; the
front end registers them in its ``_CHECKS`` table.
"""

from repro.analysis.passes.c2 import check_c2
from repro.analysis.passes.d2 import check_d2
from repro.analysis.passes.p1 import check_p1
from repro.analysis.passes.u2 import check_u2

__all__ = ["check_c2", "check_d2", "check_p1", "check_u2"]
