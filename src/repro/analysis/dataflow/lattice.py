"""Abstract domains for the blitzlint dataflow passes.

Two concrete domains cover every current rule family:

* :class:`TaintEnv` — maps variable names to *sets* of taint labels
  (powerset lattice; join = pointwise union).  Used by D2 to track
  values derived from nondeterministic sources.
* :class:`UnitEnv` — maps variable names to a single unit tag
  (flat lattice; join keeps a binding only when both sides agree, so
  a merged unit is never *guessed*).  Used by U2.

Both are small immutable-ish wrappers over dicts with the operations
the generic worklist solver needs: ``copy``, ``join`` and ``==``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

__all__ = ["Taint", "TaintEnv", "UnitEnv"]


@dataclass(frozen=True)
class Taint:
    """One taint label: what kind of entropy, introduced where."""

    kind: str  # "rng", "wall-clock", "id", "iter-order", ...
    line: int
    desc: str

    def __str__(self) -> str:
        return f"{self.desc} (line {self.line})"


class TaintEnv:
    """Variable -> set-of-taints environment (powerset lattice)."""

    __slots__ = ("vars",)

    def __init__(
        self, vars: Optional[Dict[str, FrozenSet[Taint]]] = None
    ) -> None:
        self.vars: Dict[str, FrozenSet[Taint]] = dict(vars or {})

    def copy(self) -> "TaintEnv":
        return TaintEnv(self.vars)

    def get(self, name: str) -> FrozenSet[Taint]:
        return self.vars.get(name, frozenset())

    def set(self, name: str, taints: FrozenSet[Taint]) -> None:
        if taints:
            self.vars[name] = taints
        else:
            self.vars.pop(name, None)

    def join(self, other: "TaintEnv") -> "TaintEnv":
        merged = dict(self.vars)
        for name, taints in other.vars.items():
            merged[name] = merged.get(name, frozenset()) | taints
        return TaintEnv(merged)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TaintEnv) and self.vars == other.vars

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaintEnv({self.vars!r})"


@dataclass
class UnitEnv:
    """Variable -> unit-tag environment (flat lattice per variable).

    A binding is only present when the unit is *known*; ``join`` drops
    any variable the two branches disagree on, which keeps the pass
    from fabricating units at merge points.
    """

    vars: Dict[str, str] = field(default_factory=dict)

    def copy(self) -> "UnitEnv":
        return UnitEnv(dict(self.vars))

    def get(self, name: str) -> Optional[str]:
        return self.vars.get(name)

    def set(self, name: str, unit: Optional[str]) -> None:
        if unit is None:
            self.vars.pop(name, None)
        else:
            self.vars[name] = unit

    def join(self, other: "UnitEnv") -> "UnitEnv":
        merged = {
            name: unit
            for name, unit in self.vars.items()
            if other.vars.get(name) == unit
        }
        return UnitEnv(merged)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UnitEnv) and self.vars == other.vars
