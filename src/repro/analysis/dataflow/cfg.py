"""Per-function control-flow graphs over Python AST.

A :class:`CFG` is a set of :class:`BasicBlock` nodes holding whole
``ast.stmt`` objects (expressions inside one statement are treated as
atomic — fine-grained enough for every blitzlint pass).  The builder
understands ``if``/``while``/``for``/``try``/``with``, ``break``,
``continue``, ``return`` and ``raise``; nested function definitions are
*not* inlined — they appear as plain statements in the enclosing graph
and get their own CFG via :func:`functions_in`.

Loops produce back edges; :func:`iter_acyclic_paths` enumerates
entry→exit paths ignoring back edges (each loop body is traversed at
most once per path), with a hard cap so pathological functions degrade
to "analysis gave up" rather than exponential blowup.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "CFG",
    "BasicBlock",
    "FunctionUnit",
    "build_cfg",
    "functions_in",
    "iter_acyclic_paths",
]


@dataclass
class BasicBlock:
    """A straight-line run of statements with single entry/exit."""

    bid: int
    stmts: List[ast.stmt] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ",".join(type(s).__name__ for s in self.stmts)
        return f"<B{self.bid} [{kinds}] -> {self.succs}>"


@dataclass
class CFG:
    """Control-flow graph of one function body."""

    blocks: Dict[int, BasicBlock]
    entry: int
    exit: int

    def block(self, bid: int) -> BasicBlock:
        return self.blocks[bid]

    def rpo(self) -> List[int]:
        """Reverse post-order from the entry (good worklist seed order)."""
        seen = set()
        order: List[int] = []

        def visit(bid: int) -> None:
            # Iterative DFS; recursion would overflow on long chains.
            stack: List[Tuple[int, int]] = [(bid, 0)]
            while stack:
                node, idx = stack.pop()
                if idx == 0:
                    if node in seen:
                        continue
                    seen.add(node)
                succ = self.blocks[node].succs
                if idx < len(succ):
                    stack.append((node, idx + 1))
                    nxt = succ[idx]
                    if nxt not in seen:
                        stack.append((nxt, 0))
                else:
                    order.append(node)

        visit(self.entry)
        order.reverse()
        return order


class _Builder:
    def __init__(self) -> None:
        self.blocks: Dict[int, BasicBlock] = {}
        self._next = 0

    def new_block(self) -> BasicBlock:
        b = BasicBlock(self._next)
        self.blocks[self._next] = b
        self._next += 1
        return b

    def edge(self, src: BasicBlock, dst: BasicBlock) -> None:
        if dst.bid not in src.succs:
            src.succs.append(dst.bid)
            dst.preds.append(src.bid)

    # The walker threads the "current" block through the statement list
    # and returns the block control falls out of (None if unreachable).
    def walk_body(
        self,
        body: List[ast.stmt],
        current: Optional[BasicBlock],
        exit_block: BasicBlock,
        loop_head: Optional[BasicBlock],
        loop_after: Optional[BasicBlock],
    ) -> Optional[BasicBlock]:
        for stmt in body:
            if current is None:
                # Dead code after return/raise/break still gets a block
                # so passes can see it, but no edge leads into it.
                current = self.new_block()
            if isinstance(stmt, ast.If):
                current.stmts.append(stmt)
                after = self.new_block()
                then = self.new_block()
                self.edge(current, then)
                t_out = self.walk_body(
                    stmt.body, then, exit_block, loop_head, loop_after
                )
                if t_out is not None:
                    self.edge(t_out, after)
                if stmt.orelse:
                    els = self.new_block()
                    self.edge(current, els)
                    e_out = self.walk_body(
                        stmt.orelse, els, exit_block, loop_head, loop_after
                    )
                    if e_out is not None:
                        self.edge(e_out, after)
                else:
                    self.edge(current, after)
                current = after
            elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                head = self.new_block()
                head.stmts.append(stmt)
                self.edge(current, head)
                after = self.new_block()
                body_entry = self.new_block()
                self.edge(head, body_entry)
                self.edge(head, after)  # zero-iteration / loop-exit edge
                b_out = self.walk_body(
                    stmt.body, body_entry, exit_block, head, after
                )
                if b_out is not None:
                    self.edge(b_out, head)  # back edge
                if stmt.orelse:
                    # for/while else runs on normal exhaustion; model it
                    # on the exit edge path.
                    els = self.new_block()
                    head.succs.remove(after.bid)
                    after.preds.remove(head.bid)
                    self.edge(head, els)
                    e_out = self.walk_body(
                        stmt.orelse, els, exit_block, loop_head, loop_after
                    )
                    if e_out is not None:
                        self.edge(e_out, after)
                current = after
            elif isinstance(stmt, ast.Try):
                current.stmts.append(stmt)
                after = self.new_block()
                body_entry = self.new_block()
                self.edge(current, body_entry)
                b_out = self.walk_body(
                    stmt.body, body_entry, exit_block, loop_head, loop_after
                )
                # Any statement in the try body may raise into a handler;
                # approximate with an edge from the try entry and from the
                # body exit to each handler.
                handler_outs: List[Optional[BasicBlock]] = []
                for handler in stmt.handlers:
                    h_entry = self.new_block()
                    h_entry.stmts.append(handler)
                    self.edge(body_entry, h_entry)
                    if b_out is not None:
                        self.edge(b_out, h_entry)
                    h_out = self.walk_body(
                        handler.body, h_entry, exit_block,
                        loop_head, loop_after,
                    )
                    handler_outs.append(h_out)
                # orelse runs after a clean body
                o_out = b_out
                if stmt.orelse and b_out is not None:
                    els = self.new_block()
                    self.edge(b_out, els)
                    o_out = self.walk_body(
                        stmt.orelse, els, exit_block, loop_head, loop_after
                    )
                tails = [o_out] + handler_outs
                if stmt.finalbody:
                    fin = self.new_block()
                    for t in tails:
                        if t is not None:
                            self.edge(t, fin)
                    f_out = self.walk_body(
                        stmt.finalbody, fin, exit_block, loop_head,
                        loop_after,
                    )
                    if f_out is not None:
                        self.edge(f_out, after)
                else:
                    for t in tails:
                        if t is not None:
                            self.edge(t, after)
                current = after if after.preds else None
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                current.stmts.append(stmt)
                inner = self.new_block()
                self.edge(current, inner)
                w_out = self.walk_body(
                    stmt.body, inner, exit_block, loop_head, loop_after
                )
                after = self.new_block()
                if w_out is not None:
                    self.edge(w_out, after)
                current = after
            elif isinstance(stmt, (ast.Return, ast.Raise)):
                current.stmts.append(stmt)
                self.edge(current, exit_block)
                current = None
            elif isinstance(stmt, ast.Break):
                current.stmts.append(stmt)
                if loop_after is not None:
                    self.edge(current, loop_after)
                current = None
            elif isinstance(stmt, ast.Continue):
                current.stmts.append(stmt)
                if loop_head is not None:
                    self.edge(current, loop_head)
                current = None
            else:
                # Plain statement (incl. nested FunctionDef/ClassDef,
                # Assign, Expr, Assert, Global, ...): straight line.
                current.stmts.append(stmt)
        return current


def build_cfg(fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> CFG:
    """Build the CFG of one function's body."""
    b = _Builder()
    entry = b.new_block()
    exit_block = b.new_block()
    out = b.walk_body(fn.body, entry, exit_block, None, None)
    if out is not None:
        b.edge(out, exit_block)
    return CFG(blocks=b.blocks, entry=entry.bid, exit=exit_block.bid)


@dataclass
class FunctionUnit:
    """One analyzable function: its AST node, qualname, and nesting."""

    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    qualname: str
    #: Qualname of the directly enclosing function ("" at module level).
    parent: str
    depth: int


def functions_in(tree: ast.AST) -> List[FunctionUnit]:
    """All function definitions in ``tree``, outermost first."""
    units: List[FunctionUnit] = []

    def visit(node: ast.AST, prefix: str, parent: str, depth: int) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}" if prefix else child.name
                units.append(FunctionUnit(child, qual, parent, depth))
                visit(child, qual + ".", qual, depth + 1)
            elif isinstance(child, ast.ClassDef):
                cprefix = f"{prefix}{child.name}." if prefix else child.name + "."
                visit(child, cprefix, parent, depth)
            else:
                visit(child, prefix, parent, depth)

    visit(tree, "", "", 0)
    return units


def iter_acyclic_paths(
    cfg: CFG, limit: int = 256
) -> Iterator[List[BasicBlock]]:
    """Enumerate entry→exit paths, skipping back edges.

    Yields at most ``limit`` paths; a function with more distinct
    acyclic paths than that yields what fits (callers should treat a
    truncated enumeration as "analysis incomplete", not "verified").
    """
    count = 0
    stack: List[Tuple[int, List[int]]] = [(cfg.entry, [cfg.entry])]
    while stack and count < limit:
        bid, path = stack.pop()
        if bid == cfg.exit:
            count += 1
            yield [cfg.blocks[p] for p in path]
            continue
        for succ in reversed(cfg.blocks[bid].succs):
            if succ in path:  # back edge (or any revisit): skip
                continue
            stack.append((succ, path + [succ]))
