"""Dataflow static-analysis core: CFGs, a worklist solver, lattices.

This package is the machinery under blitzlint's v2 rule families
(D2 rng-taint, U2 units-flow, C2 coin-flow, P1 parallel-safety in
``repro.analysis.passes``); it knows nothing about any specific rule.
"""

from repro.analysis.dataflow.cfg import (
    CFG,
    BasicBlock,
    FunctionUnit,
    build_cfg,
    functions_in,
    iter_acyclic_paths,
)
from repro.analysis.dataflow.lattice import Taint, TaintEnv, UnitEnv
from repro.analysis.dataflow.solver import FixpointDiverged, solve_forward

__all__ = [
    "CFG",
    "BasicBlock",
    "FixpointDiverged",
    "FunctionUnit",
    "Taint",
    "TaintEnv",
    "UnitEnv",
    "build_cfg",
    "functions_in",
    "iter_acyclic_paths",
    "solve_forward",
]
