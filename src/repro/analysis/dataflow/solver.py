"""Generic forward worklist fixpoint solver over a :class:`~repro.analysis.dataflow.cfg.CFG`.

The solver is deliberately tiny: a pass supplies an initial abstract
state, a ``transfer(block, state) -> state`` function, and the state
type's own ``join``/``copy``/``==``.  Iteration order is reverse
post-order, which converges in one or two sweeps for reducible graphs
(every CFG Python syntax can produce is reducible).

A hard iteration cap guards against a non-monotone transfer function
looping forever — hitting it raises :class:`FixpointDiverged` so the
bug is loud instead of a silent hang in CI.
"""

from __future__ import annotations

from typing import Callable, Dict, TypeVar

from repro.analysis.dataflow.cfg import CFG, BasicBlock

__all__ = ["FixpointDiverged", "solve_forward"]

S = TypeVar("S")


class FixpointDiverged(RuntimeError):
    """The worklist did not stabilize within the iteration budget."""


def solve_forward(
    cfg: CFG,
    init: S,
    transfer: Callable[[BasicBlock, S], S],
    join: Callable[[S, S], S],
    copy: Callable[[S], S],
    max_visits_per_block: int = 64,
) -> Dict[int, S]:
    """Run to fixpoint; returns the abstract state at each block *entry*.

    ``transfer`` must not mutate its input state (take a copy first or
    return a fresh state).  ``init`` seeds the entry block.
    """
    order = cfg.rpo()
    position = {bid: i for i, bid in enumerate(order)}
    entry_state: Dict[int, S] = {cfg.entry: copy(init)}
    out_state: Dict[int, S] = {}
    visits: Dict[int, int] = {}
    budget = max_visits_per_block * max(1, len(cfg.blocks))

    # Worklist keyed by RPO position for deterministic iteration order.
    worklist = sorted(cfg.blocks, key=lambda b: position.get(b, len(order)))
    pending = set(worklist)
    total = 0
    while worklist:
        bid = worklist.pop(0)
        pending.discard(bid)
        total += 1
        if total > budget:
            raise FixpointDiverged(
                f"no fixpoint after {total} block visits "
                f"({len(cfg.blocks)} blocks)"
            )
        visits[bid] = visits.get(bid, 0) + 1
        block = cfg.blocks[bid]
        preds = [p for p in block.preds if p in out_state]
        if bid == cfg.entry:
            state = copy(init)
            for p in preds:  # back edges into the entry are possible
                state = join(state, out_state[p])
        elif preds:
            state = copy(out_state[preds[0]])
            for p in preds[1:]:
                state = join(state, out_state[p])
        elif bid in entry_state:
            state = copy(entry_state[bid])
        else:
            # Unreachable block: analyze from the initial state so its
            # statements are still checked.
            state = copy(init)
        entry_state[bid] = copy(state)
        new_out = transfer(block, state)
        if bid not in out_state or not (out_state[bid] == new_out):
            out_state[bid] = new_out
            for succ in block.succs:
                if succ not in pending:
                    pending.add(succ)
                    # Insert keeping RPO order (small graphs; O(n) fine).
                    pos = position.get(succ, len(order))
                    idx = 0
                    while idx < len(worklist) and position.get(
                        worklist[idx], len(order)
                    ) < pos:
                        idx += 1
                    worklist.insert(idx, succ)
    return entry_state
