"""Shared finding/rule vocabulary for blitzlint.

Kept in its own module so the rule passes (``repro.analysis.passes``),
the dataflow core (``repro.analysis.dataflow``), and the front end
(``repro.analysis.lint``) can all depend on it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["Finding", "LintError", "RULES"]


class LintError(RuntimeError):
    """Raised when a target cannot be linted (bad path, syntax error)."""


#: code -> short rule name, the stable public catalog.
RULES: Dict[str, str] = {
    "D1": "determinism",
    "D2": "rng-taint",
    "C1": "coin-integrality",
    "C2": "coin-flow",
    "S1": "state-discipline",
    "U1": "units",
    "U2": "units-flow",
    "P1": "parallel-safety",
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "rule": RULES[self.code],
            "message": self.message,
        }
