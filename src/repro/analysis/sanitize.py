"""Runtime sanitizer: per-event invariant checking for the engine.

The static rules in :mod:`repro.analysis.lint` keep the *code* honest;
this module keeps a *run* honest.  When attached to a
``CoinExchangeEngine`` it wraps the simulator's ``schedule`` so that
after every executed event it re-verifies the paper's hardware
invariants:

* **coin conservation** — coins on tiles plus coins in flight equal the
  fixed pool (the global form of "every exchange's deltas sum to zero",
  Section III-B / Fig. 2);
* **packet conservation** — every packet injected into the NoC fabric
  is eventually delivered (or, under fault injection, terminally
  discarded) exactly once and never double-counted;
* **register sanity** — no tile's ``max`` entitlement is ever negative,
  and no tile's ``has`` drifts beyond the engine's divergence bound.

Violations raise :class:`SanitizerError` carrying a ring buffer of the
most recent events and packet sends (the "offending event trace"), so a
broken invariant is debuggable instead of just fatal.

Enable globally with ``BLITZCOIN_SANITIZE=1`` in the environment or
per-run with ``BlitzCoinConfig(sanitize=True)``; the engine then
attaches a sanitizer to itself at construction.  The checks are
read-only and scheduled nothing, so a sanitized run produces *bit
identical* results to an unsanitized one — only slower.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, List, Optional

__all__ = [
    "Sanitizer",
    "SanitizerError",
    "TraceEntry",
    "attach_sanitizer",
    "sanitize_enabled",
]

#: Environment variable that switches the sanitizer on for every engine.
SANITIZE_ENV = "BLITZCOIN_SANITIZE"

_TRUTHY = {"1", "true", "yes", "on"}


def sanitize_enabled(config: Optional[Any] = None) -> bool:
    """True when the env var or the config flag asks for sanitizing."""
    if config is not None and getattr(config, "sanitize", False):
        return True
    return os.environ.get(SANITIZE_ENV, "").strip().lower() in _TRUTHY


@dataclass(frozen=True)
class TraceEntry:
    """One recorded step: an executed event or an injected packet."""

    time: int
    kind: str  # "event" | "send" | "deliver"
    description: str

    def __str__(self) -> str:
        return f"[{self.time:>10d}] {self.kind:<7s} {self.description}"


class SanitizerError(RuntimeError):
    """A runtime invariant violation, with the recent event trace.

    Attributes
    ----------
    kind:
        Stable violation class: ``coin-conservation``,
        ``packet-conservation``, ``negative-max``, or ``coin-divergence``.
    trace:
        The most recent :class:`TraceEntry` records (oldest first),
        ending with the event that exposed the violation.
    details:
        Violation-specific numbers (pool, tile sums, counters).
    """

    def __init__(
        self,
        kind: str,
        message: str,
        trace: List[TraceEntry],
        details: Optional[dict] = None,
    ) -> None:
        rendered = "\n".join(str(t) for t in trace[-16:])
        super().__init__(
            f"[{kind}] {message}\n--- recent events (oldest first) ---\n"
            f"{rendered if rendered else '(no events recorded)'}"
        )
        self.kind = kind
        self.trace = trace
        self.details = details or {}


class Sanitizer:
    """Wraps one engine's simulator and fabric with invariant checks.

    The wrapping is purely observational: callbacks run unchanged and
    no extra events are scheduled, so event times, heap sequence numbers
    and therefore results are identical with and without the sanitizer.
    """

    def __init__(self, engine: Any, trace_depth: int = 64) -> None:
        self.engine = engine
        self.trace: Deque[TraceEntry] = deque(maxlen=trace_depth)
        self.events_checked = 0
        self.packets_outstanding = 0
        self._attached = False

    # ------------------------------------------------------------- attach
    def attach(self) -> "Sanitizer":
        """Instrument the engine's simulator and NoC fabric."""
        if self._attached:
            return self
        self._attached = True
        sim = self.engine.sim
        noc = self.engine.noc
        original_schedule = sim.schedule
        original_send = noc.send
        original_deliver = noc._deliver
        original_drop = noc._drop

        def schedule(
            delay: int, callback: Callable[[], None], priority: int = 0
        ):
            return original_schedule(
                delay, self._wrap(callback), priority
            )

        def send(packet) -> None:
            self.packets_outstanding += 1
            self.trace.append(
                TraceEntry(
                    sim.now,
                    "send",
                    f"{packet.msg_type.value} {packet.src}->{packet.dst} "
                    f"payload={packet.payload!r}",
                )
            )
            original_send(packet)

        def deliver(packet) -> None:
            self.packets_outstanding -= 1
            self.trace.append(
                TraceEntry(
                    sim.now,
                    "deliver",
                    f"{packet.msg_type.value} {packet.src}->{packet.dst}",
                )
            )
            original_deliver(packet)

        def drop(packet, reason: str) -> None:
            # A terminal in-transit discard (fault injection): the
            # packet leaves the fabric without reaching _deliver.
            self.packets_outstanding -= 1
            self.trace.append(
                TraceEntry(
                    sim.now,
                    "drop",
                    f"{packet.msg_type.value} {packet.src}->{packet.dst} "
                    f"({reason})",
                )
            )
            original_drop(packet, reason)

        sim.schedule = schedule
        noc.send = send
        noc._deliver = deliver
        noc._drop = drop
        return self

    def _wrap(self, callback: Callable[[], None]) -> Callable[[], None]:
        name = getattr(callback, "__qualname__", repr(callback))

        def checked() -> None:
            self.trace.append(
                TraceEntry(self.engine.sim.now, "event", name)
            )
            callback()
            self.events_checked += 1
            self.check_now()

        # Keep the original callback's identity visible so kernel
        # profilers attribute events to the real site, not the wrapper.
        checked.__qualname__ = name
        checked.__module__ = getattr(
            callback, "__module__", checked.__module__
        )
        return checked

    # ------------------------------------------------------------- checks
    def check_now(self) -> None:
        """Verify every invariant against the engine's current state."""
        engine = self.engine
        on_tiles = sum(f.coins.has for f in engine.fsm.values())
        in_flight = engine._in_flight
        lost_pending = getattr(engine, "lost_pending", 0)
        if on_tiles + in_flight + lost_pending != engine.pool:
            raise SanitizerError(
                "coin-conservation",
                f"tiles hold {on_tiles} coins with {in_flight} in flight "
                f"and {lost_pending} lost awaiting reconciliation, "
                f"but the pool is {engine.pool} (leak of "
                f"{engine.pool - on_tiles - in_flight - lost_pending})",
                list(self.trace),
                details={
                    "on_tiles": on_tiles,
                    "in_flight": in_flight,
                    "lost_pending": lost_pending,
                    "pool": engine.pool,
                },
            )
        for tid, fsm in engine.fsm.items():
            if fsm.coins.max < 0:
                raise SanitizerError(
                    "negative-max",
                    f"tile {tid} has negative entitlement "
                    f"max={fsm.coins.max}",
                    list(self.trace),
                    details={"tile": tid, "max": fsm.coins.max},
                )
            if abs(fsm.coins.has) > 2 * engine.pool + 64:
                raise SanitizerError(
                    "coin-divergence",
                    f"tile {tid} coin count {fsm.coins.has} is outside "
                    f"the divergence bound for pool {engine.pool}",
                    list(self.trace),
                    details={"tile": tid, "has": fsm.coins.has},
                )
        stats = engine.noc.stats
        discarded = stats.discarded
        if self.packets_outstanding < 0 or (
            stats.injected - stats.delivered - discarded
            != self.packets_outstanding
        ):
            raise SanitizerError(
                "packet-conservation",
                f"fabric accounting broken: injected={stats.injected} "
                f"delivered={stats.delivered} discarded={discarded} but "
                f"{self.packets_outstanding} packet(s) tracked in flight",
                list(self.trace),
                details={
                    "injected": stats.injected,
                    "delivered": stats.delivered,
                    "discarded": discarded,
                    "outstanding": self.packets_outstanding,
                },
            )


def attach_sanitizer(engine: Any, trace_depth: int = 64) -> Sanitizer:
    """Create and attach a :class:`Sanitizer` to ``engine``.

    Must be called before the engine (or anything else sharing its
    simulator) schedules events that should be checked; the engine does
    this itself at construction when :func:`sanitize_enabled` is true.
    """
    return Sanitizer(engine, trace_depth=trace_depth).attach()
