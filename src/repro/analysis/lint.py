"""blitzlint: the repo-specific static-analysis pass.

The reproduction's value rests on two properties the paper proves in
hardware: exchanges are *exactly* coin-conserving (Section III-B /
Fig. 2) and a run is bit-reproducible from its seed alone.  Both are
easy to break with ordinary Python idioms (a stray ``random.random()``,
a float division in the exchange arithmetic, an event handler poking a
coin register directly), so this module walks the AST of every module
under ``repro`` and enforces the coding rules that keep them true.

Rule catalog (see ``docs/STATIC_ANALYSIS.md`` for the full rationale):

``D1`` determinism (syntactic)
    No wall-clock or unseeded randomness anywhere outside
    ``repro.sim.rng``, and no iteration over unordered ``set`` /
    ``dict.keys()`` results in the event-scheduling packages.
``D2`` rng-taint (dataflow)
    Values *derived from* entropy sources (unseeded randomness, wall
    clock, ``id()``, hash-ordered iteration) must not flow into sim
    state, seeds, scheduling delays, or hashes — anywhere.
``C1`` coin integrality (syntactic)
    No float literals, ``/`` true division, or float ``==``/``!=``
    comparisons in ``repro.core.coins`` or the delta-computation
    helpers of ``repro.core.engine``.
``C2`` coin-flow (dataflow)
    Every control-flow path through a coin-moving function must be
    delta-balanced (Σhas + in_flight + lost_pending conserved).
``S1`` state discipline (syntactic)
    Coin registers may only be mutated by the engine's blessed
    mutation points, never directly from a packet/event handler.
``U1`` units (syntactic)
    Public functions in ``repro.core`` / ``repro.noc`` whose name or
    docstring mentions time must state the unit (cycles or seconds).
``U2`` units-flow (dataflow)
    Unit tags (mW/J/cycles/coins/…) propagate through assignments and
    arithmetic; mixed-unit adds and unit-contradicting returns flag.
``P1`` parallel-safety (syntactic+scope)
    No module-level mutable state, unpicklable executor submissions,
    or fork-unsafe patterns in campaign-executed packages.

Suppression: append ``# blitzlint: disable=<code>[,<code>...]`` (or
``disable=all``) to the offending line, or put the same comment alone
on the line directly above it.  A whole intentional-deviation file
(e.g. a benchmark that *measures* wall time) may carry
``# blitzlint: disable-file=<code>[,<code>...]``.  Files outside
``src/repro`` may pin their effective module identity for rule scoping
with a ``# blitzlint: scope=<dotted.module>`` comment on any line.
"""

from __future__ import annotations

import ast
import fnmatch
import json
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.astutil import (
    Context as _Context,
    RNG_MODULE,
    SEEDED_RNG_CTORS as _SEEDED_RNG_CTORS,
    WALL_CLOCK_CALLS as _WALL_CLOCK_CALLS,
    build_function_map as _build_function_map,
    dotted_name as _dotted,
    in_scope as _in_scope,
    unordered_iterable as _unordered_iterable,
)
from repro.analysis.findings import Finding, LintError, RULES
from repro.analysis.passes import check_c2, check_d2, check_p1, check_u2

__all__ = [
    "Finding",
    "LintError",
    "LINT_VERSION",
    "RULES",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
]

#: Bumped whenever any rule's behavior changes; part of the result-cache
#: key so stale cached findings can never survive a linter upgrade.
LINT_VERSION = 3

_DISABLE_RE = re.compile(
    r"#\s*blitzlint:\s*disable=([A-Za-z0-9_,\s]+|all)"
)
_DISABLE_FILE_RE = re.compile(
    r"#\s*blitzlint:\s*disable-file=([A-Za-z0-9_,\s]+|all)"
)
_SCOPE_RE = re.compile(r"#\s*blitzlint:\s*scope=([A-Za-z0-9_.]+)")

# ---------------------------------------------------------------- D1 tables
#: Packages whose event-scheduling code must not iterate unordered sets.
#: repro.faults is included: fault decisions are event-scheduling inputs,
#: so hash-order iteration there would break run reproducibility too.
#: repro.campaign is included: unit enumeration and seed derivation feed
#: the cache keys and the parallel/serial bit-identity guarantee.
#: repro.obs.monitor and repro.report are included: monitors run on the
#: sink path during simulation, and reports/diffs must be byte-stable
#: artifacts — hash-order iteration in either would break bit-identity.
#: repro.serve is included: job results, stream frames, and stored
#: scenario artifacts must be byte-deterministic for the dedupe and
#: streamed-equals-stored contracts to hold.
_ORDERED_ITERATION_SCOPES = (
    "repro.core",
    "repro.noc",
    "repro.sim",
    "repro.faults",
    "repro.campaign",
    "repro.obs.monitor",
    "repro.report",
    "repro.perf",
    "repro.serve",
)

# ---------------------------------------------------------------- C1 tables
_C1_WHOLE_MODULES = ("repro.core.coins",)
#: Delta-computation helpers of the engine: the code between receiving a
#: status and emitting/applying a delta must stay integral.
_C1_ENGINE_FUNCS = {
    "_apply_delta",
    "_serve_one_way",
    "_collect_four_way",
    "_on_update",
    "apply_and_reply",
    "apply_and_update",
    "check_conservation",
}
_C1_ENGINE_MODULE = "repro.core.engine"

# ---------------------------------------------------------------- S1 tables
#: repro.campaign is in scope: the campaign layer aggregates results
#: and must never reach into engine/tile coin state directly; the
#: monitor and report layers likewise observe but never mutate.
#: repro.serve is in scope for the same reason: the service observes
#: runs through the sink and the store, never through coin state.
_S1_SCOPES = (
    "repro.core",
    "repro.noc",
    "repro.campaign",
    "repro.obs.monitor",
    "repro.report",
    "repro.perf",
    "repro.serve",
)
#: The only functions allowed to write a coin register directly: the
#: engine's single delta-application point, the activity-edge API, and
#: object construction.
_S1_BLESSED_FUNCS = {"_apply_delta", "set_max", "__init__", "__post_init__"}

# ---------------------------------------------------------------- U1 tables
#: v2 widened U1 beyond core/noc: the simulator kernel and trace APIs
#: (cycles) and the thermal/power models (seconds) are where a missing
#: unit statement actually bites — cycles-vs-seconds confusion at the
#: sim/physics boundary is the classic reproduction bug.
_U1_SCOPES = (
    "repro.core",
    "repro.noc",
    "repro.sim",
    "repro.power",
    "repro.thermal",
)
_U1_TRIGGERS = re.compile(
    r"\b(time|latency|delay|duration|timeout|interval|period)\b", re.I
)
_U1_UNITS = re.compile(
    r"\b(cycle|cycles|second|seconds|sec|us|ms|ns|hz|mhz|ghz|"
    r"microsecond|microseconds|millisecond|milliseconds)\b",
    re.I,
)


# ===================================================================== rules
def _check_d1(ctx: _Context) -> Iterator[Finding]:
    if ctx.module == RNG_MODULE:
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield Finding(
                        ctx.path, node.lineno, node.col_offset, "D1",
                        "import of stdlib `random`: all randomness must "
                        "come from a seeded repro.sim.rng generator",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                yield Finding(
                    ctx.path, node.lineno, node.col_offset, "D1",
                    "import from stdlib `random`: all randomness must "
                    "come from a seeded repro.sim.rng generator",
                )
        elif isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if len(parts) >= 2 and tuple(parts[-2:]) in _WALL_CLOCK_CALLS:
                yield Finding(
                    ctx.path, node.lineno, node.col_offset, "D1",
                    f"wall-clock call `{dotted}()` breaks seed-only "
                    "reproducibility; derive times from Simulator.now",
                )
            elif len(parts) >= 3 and parts[-2] == "random" and parts[-3] in (
                "np", "numpy"
            ):
                fn = parts[-1]
                if fn in _SEEDED_RNG_CTORS:
                    continue
                if fn == "default_rng" and (node.args or node.keywords):
                    continue
                yield Finding(
                    ctx.path, node.lineno, node.col_offset, "D1",
                    f"`{dotted}()` uses numpy's global/unseeded RNG; "
                    "spawn a generator via repro.sim.rng instead",
                )
    if not _in_scope(ctx.module, _ORDERED_ITERATION_SCOPES):
        return
    for node in ast.walk(ctx.tree):
        iters: List[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters = [node.iter]
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters = [gen.iter for gen in node.generators]
        for it in iters:
            reason = _unordered_iterable(it)
            if reason is not None:
                yield Finding(
                    ctx.path, it.lineno, it.col_offset, "D1",
                    f"iteration over {reason} in event-scheduling code; "
                    "iterate a list or wrap in sorted() so event order "
                    "cannot depend on hash order",
                )


def _is_float_node(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    ):
        return True
    return False


def _check_c1(ctx: _Context) -> Iterator[Finding]:
    whole = ctx.module in _C1_WHOLE_MODULES
    engine = ctx.module == _C1_ENGINE_MODULE
    if not (whole or engine):
        return
    for node in ast.walk(ctx.tree):
        if engine and ctx.func_of.get(node) not in _C1_ENGINE_FUNCS:
            continue
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            yield Finding(
                ctx.path, node.lineno, node.col_offset, "C1",
                f"float literal {node.value!r} in coin arithmetic; "
                "exchange math must be exact integer arithmetic",
            )
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            yield Finding(
                ctx.path, node.lineno, node.col_offset, "C1",
                "true division `/` in coin arithmetic; use `//` "
                "(scaled integer) so deltas stay integral",
            )
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.op, ast.Div
        ):
            yield Finding(
                ctx.path, node.lineno, node.col_offset, "C1",
                "true division `/=` in coin arithmetic; use `//=` so "
                "coin counts stay integral",
            )
        elif isinstance(node, ast.Compare) and any(
            isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
        ):
            operands = [node.left, *node.comparators]
            if any(_is_float_node(o) for o in operands):
                yield Finding(
                    ctx.path, node.lineno, node.col_offset, "C1",
                    "float equality comparison in coin arithmetic; "
                    "compare exact integers instead",
                )


def _coin_register_target(target: ast.expr) -> Optional[str]:
    """Return a description if ``target`` writes a coin register."""
    if not isinstance(target, ast.Attribute):
        return None
    if target.attr in ("has", "max"):
        base = target.value
        if isinstance(base, ast.Attribute) and base.attr == "coins":
            return f"`{_dotted(target) or target.attr}`"
    if target.attr == "coins":
        return f"`{_dotted(target) or 'coins'}`"
    return None


def _check_s1(ctx: _Context) -> Iterator[Finding]:
    if not _in_scope(ctx.module, _S1_SCOPES):
        return
    for node in ast.walk(ctx.tree):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            desc = _coin_register_target(target)
            if desc is None:
                continue
            func = ctx.func_of.get(node, "")
            if func in _S1_BLESSED_FUNCS:
                continue
            yield Finding(
                ctx.path, node.lineno, node.col_offset, "S1",
                f"direct write to coin register {desc} in `{func or 'module scope'}`; "
                "coin state may only change through the engine's "
                "_apply_delta / set_max mutation points",
            )


def _check_u1(ctx: _Context) -> Iterator[Finding]:
    if not _in_scope(ctx.module, _U1_SCOPES):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name.startswith("_"):
            continue
        doc = ast.get_docstring(node) or ""
        name_words = node.name.replace("_", " ")
        mentions_time = bool(
            _U1_TRIGGERS.search(name_words) or _U1_TRIGGERS.search(doc)
        )
        if not mentions_time:
            continue
        if not _U1_UNITS.search(doc):
            yield Finding(
                ctx.path, node.lineno, node.col_offset, "U1",
                f"public function `{node.name}` mentions time but its "
                "docstring does not state the unit (cycles or seconds)",
            )


_CHECKS = {
    "D1": _check_d1,
    "D2": check_d2,
    "C1": _check_c1,
    "C2": check_c2,
    "S1": _check_s1,
    "U1": _check_u1,
    "U2": check_u2,
    "P1": check_p1,
}


# ================================================================ front end
def _module_name_for(path: Path) -> str:
    """Map a file path to its dotted module name under ``repro``.

    Files outside a ``repro`` package root get an empty module name (only
    the globally scoped D1/D2 checks apply) unless they carry a
    ``# blitzlint: scope=...`` pragma.
    """
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        mod_parts = parts[idx:]
        if mod_parts[-1] == "__init__":
            mod_parts = mod_parts[:-1]
        return ".".join(mod_parts)
    return ""


def _parse_codes(raw: str) -> Set[str]:
    if raw.strip() == "all":
        return set(RULES)
    return {c.strip().upper() for c in raw.split(",") if c.strip()}


def _comment_lines(source: str) -> Iterator[Tuple[int, str, bool]]:
    """Yield (lineno, comment text, standalone?) for real comment tokens.

    Tokenizing (rather than regex-scanning raw lines) keeps pragma text
    inside string literals inert — test files embed lint snippets as
    strings and must not re-scope or suppress their *own* findings.
    Falls back to a conservative line scan if tokenization fails.
    """
    import io
    import tokenize

    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                standalone = tok.line[: tok.start[1]].strip() == ""
                yield tok.start[0], tok.string, standalone
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for lineno, line in enumerate(source.splitlines(), start=1):
            if "#" in line:
                idx = line.index("#")
                yield lineno, line[idx:], line[:idx].strip() == ""


def _suppressions(
    source: str,
) -> Tuple[Dict[int, Set[str]], Optional[str], Set[str]]:
    """(per-line suppressed codes, scope override, whole-file codes).

    A ``disable=`` pragma on a line suppresses that line; the same
    pragma *standalone* on a comment-only line also suppresses the
    next line (for statements too long to carry a trailing comment).
    """
    suppressed: Dict[int, Set[str]] = {}
    scope: Optional[str] = None
    file_codes: Set[str] = set()
    for lineno, comment, standalone in _comment_lines(source):
        fm = _DISABLE_FILE_RE.search(comment)
        if fm:
            file_codes |= _parse_codes(fm.group(1))
        m = _DISABLE_RE.search(comment)
        if m and not fm:
            codes = _parse_codes(m.group(1))
            suppressed.setdefault(lineno, set()).update(codes)
            if standalone:
                # standalone pragma: also covers the following line
                suppressed.setdefault(lineno + 1, set()).update(codes)
        s = _SCOPE_RE.search(comment)
        if s:
            scope = s.group(1)
    return suppressed, scope, file_codes


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    module: Optional[str] = None,
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint one source string; ``module`` overrides path-derived scoping."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}: syntax error: {exc}") from exc
    suppressed, scope, file_codes = _suppressions(source)
    if module is None:
        module = scope or _module_name_for(Path(path))
    ctx = _Context(
        path=path,
        module=module,
        tree=tree,
        func_of=_build_function_map(tree),
    )
    selected = list(rules) if rules is not None else list(_CHECKS)
    unknown = [r for r in selected if r not in _CHECKS]
    if unknown:
        raise LintError(f"unknown rule code(s): {', '.join(unknown)}")
    findings: List[Finding] = []
    for code in selected:
        for f in _CHECKS[code](ctx):
            if f.code in file_codes:
                continue
            if f.code in suppressed.get(f.line, set()):
                continue
            findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def lint_file(
    path: Path, *, rules: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Lint one Python file."""
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read {path}: {exc}") from exc
    return lint_source(source, str(path), rules=rules)


def _iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for p in paths:
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p
        else:
            raise LintError(f"not a Python file or directory: {p}")


def _excluded(path: Path, patterns: Sequence[str]) -> bool:
    text = path.as_posix()
    return any(
        fnmatch.fnmatch(text, pat) or fnmatch.fnmatch(path.name, pat)
        for pat in patterns
    )


def lint_paths(
    paths: Sequence[str],
    *,
    rules: Optional[Sequence[str]] = None,
    exclude: Sequence[str] = (),
    cache: Optional["ResultCache"] = None,
) -> List[Finding]:
    """Lint every ``*.py`` file under the given files/directories.

    ``exclude`` holds fnmatch globs applied to the posix path and the
    bare filename.  ``cache``, when given, is consulted per file keyed
    on content hash + rule selection + linter version (see
    ``repro.analysis.cache``).
    """
    resolved = [Path(p) for p in paths]
    missing = [p for p in resolved if not p.exists()]
    if missing:
        raise LintError(
            f"no such path(s): {', '.join(str(p) for p in missing)}"
        )
    findings: List[Finding] = []
    for f in _iter_python_files(resolved):
        if _excluded(f, exclude):
            continue
        if cache is not None:
            try:
                source = f.read_text(encoding="utf-8")
            except OSError as exc:
                raise LintError(f"cannot read {f}: {exc}") from exc
            key = cache.key_for(source, rules)
            hit = cache.get(str(f), key)
            if hit is not None:
                findings.extend(hit)
                continue
            result = lint_source(source, str(f), rules=rules)
            cache.put(str(f), key, result)
            findings.extend(result)
        else:
            findings.extend(lint_file(f, rules=rules))
    return findings


# ================================================================= renderers
def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable one-line-per-finding report."""
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.code} [{RULES[f.code]}] {f.message}"
        for f in findings
    ]
    lines.append(
        f"blitzlint: {len(findings)} finding(s)"
        if findings
        else "blitzlint: clean"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Stable machine-readable report (schema version 1)."""
    return json.dumps(
        {
            "version": 1,
            "tool": "blitzlint",
            "count": len(findings),
            "findings": [f.to_dict() for f in findings],
        },
        indent=2,
    )


# Imported late to avoid a cycle (cache stores Finding objects).
from repro.analysis.cache import ResultCache  # noqa: E402  (cycle guard)
