"""``python -m repro.analysis``: run blitzlint from the command line.

Thin wrapper over the same implementation the ``blitzcoin-repro lint``
subcommand uses, so CI can invoke the linter without installing the
console script.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.baseline import (
    BaselineError,
    diff_against_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.cache import CacheError, ResultCache
from repro.analysis.lint import (
    RULES,
    LintError,
    lint_paths,
    render_json,
    render_text,
)
from repro.analysis.sarif import render_sarif

DEFAULT_BASELINE = "lint-baseline.json"
DEFAULT_CACHE = ".blitzlint-cache.json"


def default_lint_target() -> str:
    """The installed ``repro`` package directory (lintable from anywhere)."""
    import repro

    return str(Path(repro.__file__).parent)


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach blitzlint's arguments to ``parser`` (shared with the CLI)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help=f"comma-separated rule codes to run (default: all of "
        f"{', '.join(RULES)})",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="GLOB",
        help="skip files whose path or name matches GLOB (repeatable)",
    )
    parser.add_argument(
        "--baseline",
        nargs="?",
        const=DEFAULT_BASELINE,
        default=None,
        metavar="FILE",
        help="gate only on findings absent from this baseline file "
        f"(default file: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file from this run's findings and exit 0",
    )
    parser.add_argument(
        "--cache",
        nargs="?",
        const=DEFAULT_CACHE,
        default=None,
        metavar="FILE",
        help="memoize per-file results keyed on content hash "
        f"(default file: {DEFAULT_CACHE})",
    )


def _read_sources(findings) -> Dict[str, str]:
    """path -> content for fingerprinting; unreadable files map to ''."""
    sources: Dict[str, str] = {}
    for f in findings:
        if f.path not in sources:
            try:
                sources[f.path] = Path(f.path).read_text(encoding="utf-8")
            except OSError:
                sources[f.path] = ""
    return sources


def _emit(report: str, out: Optional[str]) -> None:
    if out is None:
        print(report, end="" if report.endswith("\n") else "\n")
        return
    out_path = Path(out)
    try:
        if out_path.parent != Path():
            out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(
            report if report.endswith("\n") else report + "\n",
            encoding="utf-8",
        )
    except OSError as exc:
        raise LintError(f"cannot write report to {out}: {exc}") from exc


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed arguments.

    Exit status: 0 clean (or only baselined findings), 1 findings,
    2 usage/parse/baseline/cache error (one-line diagnostic, no
    traceback).
    """
    paths = args.paths or [default_lint_target()]
    rules: Optional[List[str]] = None
    if args.rules:
        rules = [r.strip().upper() for r in args.rules.split(",") if r.strip()]
    cache: Optional[ResultCache] = None
    try:
        if getattr(args, "cache", None):
            cache = ResultCache(Path(args.cache))
        findings = lint_paths(
            paths,
            rules=rules,
            exclude=getattr(args, "exclude", []) or [],
            cache=cache,
        )
        if cache is not None:
            cache.save()
    except (LintError, CacheError, OSError) as exc:
        print(f"blitzlint: error: {exc}", file=sys.stderr)
        return 2

    baseline_path = getattr(args, "baseline", None)
    update = getattr(args, "update_baseline", False)
    sources = (
        _read_sources(findings)
        if (baseline_path or update or args.format == "sarif")
        else {}
    )

    if update:
        target = Path(baseline_path or DEFAULT_BASELINE)
        try:
            n = write_baseline(target, findings, sources)
        except OSError as exc:
            print(
                f"blitzlint: error: cannot write baseline {target}: {exc}",
                file=sys.stderr,
            )
            return 2
        print(f"blitzlint: baseline {target} updated ({n} fingerprint(s))")
        return 0

    gated = findings
    known_count = 0
    fixed: List[str] = []
    if baseline_path:
        try:
            baseline = load_baseline(Path(baseline_path))
        except BaselineError as exc:
            print(f"blitzlint: error: {exc}", file=sys.stderr)
            return 2
        gated, known, fixed = diff_against_baseline(
            findings, baseline, sources
        )
        known_count = len(known)

    if args.format == "json":
        report = render_json(gated)
    elif args.format == "sarif":
        report = render_sarif(gated, sources=sources)
    else:
        report = render_text(gated)
    try:
        _emit(report, getattr(args, "out", None))
    except LintError as exc:
        print(f"blitzlint: error: {exc}", file=sys.stderr)
        return 2

    if baseline_path and args.format == "text":
        if known_count:
            print(
                f"blitzlint: {known_count} baselined finding(s) not shown",
                file=sys.stderr,
            )
        for hint in fixed:
            print(
                f"blitzlint: baselined finding no longer present: {hint}",
                file=sys.stderr,
            )
    return 1 if gated else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="blitzlint",
        description="BlitzCoin repo-specific static analysis "
        "(determinism / coin-conservation rules)",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
