"""``python -m repro.analysis``: run blitzlint from the command line.

Thin wrapper over the same implementation the ``blitzcoin-repro lint``
subcommand uses, so CI can invoke the linter without installing the
console script.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.lint import (
    RULES,
    LintError,
    lint_paths,
    render_json,
    render_text,
)


def default_lint_target() -> str:
    """The installed ``repro`` package directory (lintable from anywhere)."""
    import repro

    return str(__import__("pathlib").Path(repro.__file__).parent)


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach blitzlint's arguments to ``parser`` (shared with the CLI)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help=f"comma-separated rule codes to run (default: all of "
        f"{', '.join(RULES)})",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed arguments.

    Exit status: 0 clean, 1 findings, 2 usage/parse error.
    """
    paths = args.paths or [default_lint_target()]
    rules: Optional[List[str]] = None
    if args.rules:
        rules = [r.strip().upper() for r in args.rules.split(",") if r.strip()]
    try:
        findings = lint_paths(paths, rules=rules)
    except LintError as exc:
        print(f"blitzlint: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="blitzlint",
        description="BlitzCoin repo-specific static analysis "
        "(determinism / coin-conservation rules)",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
