"""Static analysis (blitzlint) and the runtime invariant sanitizer.

``repro.analysis.lint`` enforces the repo's determinism and
coin-conservation coding rules; v2 adds a dataflow engine
(``repro.analysis.dataflow``: CFG + worklist fixpoint + lattices)
powering the D2/U2/C2/P1 rule families, a SARIF 2.1.0 exporter
(``repro.analysis.sarif``), baseline gating
(``repro.analysis.baseline``) and a content-hash result cache
(``repro.analysis.cache``).  ``repro.analysis.sanitize`` checks the
same invariants dynamically, event by event, when
``BLITZCOIN_SANITIZE=1`` (or ``BlitzCoinConfig.sanitize``) is set.
See ``docs/STATIC_ANALYSIS.md``.
"""

from repro.analysis.baseline import (
    BaselineError,
    diff_against_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.cache import CacheError, ResultCache
from repro.analysis.lint import (
    LINT_VERSION,
    RULES,
    Finding,
    LintError,
    lint_file,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)
from repro.analysis.sanitize import (
    Sanitizer,
    SanitizerError,
    TraceEntry,
    attach_sanitizer,
    sanitize_enabled,
)
from repro.analysis.sarif import render_sarif, to_sarif, validate_sarif

__all__ = [
    "BaselineError",
    "CacheError",
    "Finding",
    "LINT_VERSION",
    "LintError",
    "RULES",
    "ResultCache",
    "Sanitizer",
    "SanitizerError",
    "TraceEntry",
    "attach_sanitizer",
    "diff_against_baseline",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "render_json",
    "render_sarif",
    "render_text",
    "sanitize_enabled",
    "to_sarif",
    "validate_sarif",
    "write_baseline",
]
