"""Static analysis (blitzlint) and the runtime invariant sanitizer.

``repro.analysis.lint`` enforces the repo's determinism and
coin-conservation coding rules at the AST level;
``repro.analysis.sanitize`` checks the same invariants dynamically,
event by event, when ``BLITZCOIN_SANITIZE=1`` (or
``BlitzCoinConfig.sanitize``) is set.  See ``docs/STATIC_ANALYSIS.md``.
"""

from repro.analysis.lint import (
    RULES,
    Finding,
    LintError,
    lint_file,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)
from repro.analysis.sanitize import (
    Sanitizer,
    SanitizerError,
    TraceEntry,
    attach_sanitizer,
    sanitize_enabled,
)

__all__ = [
    "RULES",
    "Finding",
    "LintError",
    "Sanitizer",
    "SanitizerError",
    "TraceEntry",
    "attach_sanitizer",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "sanitize_enabled",
]
