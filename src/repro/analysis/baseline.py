"""Baseline gating: fail CI only on findings that are *new*.

A dataflow linter accumulates known, reviewed findings (intentional
deviations that carry suppressions are invisible here, but historical
ones sometimes stay visible while a refactor is pending).  The
baseline file records a stable fingerprint for every currently
accepted finding; ``diff_against_baseline`` partitions a fresh run
into *new* findings (gate) and *known* ones (report quietly).

Fingerprints must survive unrelated edits, so they hash the things
that identify a finding semantically rather than positionally:

* the file path (posix-normalized),
* the rule code,
* the whitespace-stripped text of the flagged line (robust to the
  finding moving up or down when unrelated lines are added),
* an occurrence index (the N-th identical line flagged by the same
  rule in the same file, so duplicated lines stay distinguishable).

The column and absolute line number are deliberately excluded.

Baseline layout (JSON, sorted, committed to the repo)::

    {"version": 1, "tool": "blitzlint",
     "fingerprints": {"<fp>": "<path>:<line> <code> <message>"}}

The value is a human-readable hint only; matching uses the key.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding

__all__ = [
    "BaselineError",
    "diff_against_baseline",
    "fingerprint",
    "load_baseline",
    "write_baseline",
]

_BASELINE_SCHEMA_VERSION = 1


class BaselineError(RuntimeError):
    """Raised when a baseline file is missing or unusable."""


def _line_text(source: Optional[str], line: int) -> str:
    if source is None:
        return ""
    lines = source.splitlines()
    if 1 <= line <= len(lines):
        return lines[line - 1].strip()
    return ""


def fingerprint(
    finding: Finding,
    *,
    source: Optional[str] = None,
    occurrence: Optional[Dict[tuple, int]] = None,
) -> str:
    """Stable content-based fingerprint for one finding.

    ``occurrence`` is a mutable counter shared across one run so the
    N-th finding of the same (path, code, line-text) gets index N.
    """
    text = _line_text(source, finding.line)
    key = (Path(finding.path).as_posix(), finding.code, text)
    n = 0
    if occurrence is not None:
        n = occurrence.get(key, 0)
        occurrence[key] = n + 1
    h = hashlib.sha256()
    for part in (*key, str(n)):
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()[:32]


def compute_fingerprints(
    findings: Sequence[Finding],
    sources: Optional[Dict[str, str]] = None,
) -> List[Tuple[str, Finding]]:
    """(fingerprint, finding) pairs with per-run occurrence indexing."""
    occurrence: Dict[tuple, int] = {}
    out = []
    for f in findings:
        src = (sources or {}).get(f.path)
        out.append((fingerprint(f, source=src, occurrence=occurrence), f))
    return out


def load_baseline(path: Path) -> Dict[str, str]:
    """Load fingerprint -> hint mapping; raise BaselineError on trouble."""
    if not path.exists():
        raise BaselineError(
            f"baseline file not found: {path} "
            "(run with --update-baseline to create it)"
        )
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"unreadable baseline {path}: {exc}") from exc
    if (
        not isinstance(raw, dict)
        or raw.get("version") != _BASELINE_SCHEMA_VERSION
        or not isinstance(raw.get("fingerprints"), dict)
    ):
        raise BaselineError(
            f"unrecognized baseline layout in {path} "
            "(regenerate with --update-baseline)"
        )
    return raw["fingerprints"]


def write_baseline(
    path: Path,
    findings: Sequence[Finding],
    sources: Optional[Dict[str, str]] = None,
) -> int:
    """Write (sorted, deterministic) baseline; returns entry count."""
    fps = {
        fp: f"{f.path}:{f.line} {f.code} {f.message}"
        for fp, f in compute_fingerprints(findings, sources)
    }
    payload = {
        "version": _BASELINE_SCHEMA_VERSION,
        "tool": "blitzlint",
        "fingerprints": dict(sorted(fps.items())),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(fps)


def diff_against_baseline(
    findings: Sequence[Finding],
    baseline: Dict[str, str],
    sources: Optional[Dict[str, str]] = None,
) -> Tuple[List[Finding], List[Finding], List[str]]:
    """Partition findings into (new, known); also return fixed hints.

    ``fixed`` lists the baseline hints whose fingerprints no longer
    occur — useful for pruning the baseline after genuine fixes.
    """
    pairs = compute_fingerprints(findings, sources)
    new = [f for fp, f in pairs if fp not in baseline]
    known = [f for fp, f in pairs if fp in baseline]
    seen = {fp for fp, _ in pairs}
    fixed = [hint for fp, hint in sorted(baseline.items()) if fp not in seen]
    return new, known, fixed
