"""AST helpers and determinism tables shared by every blitzlint pass.

Extracted from ``repro.analysis.lint`` so the dataflow rule families
(``repro.analysis.passes``) can reuse the same source-of-entropy
definitions without importing the front end.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

__all__ = [
    "Context",
    "RNG_MODULE",
    "SEEDED_RNG_CTORS",
    "WALL_CLOCK_CALLS",
    "build_function_map",
    "dotted_name",
    "entropy_source",
    "in_scope",
    "unordered_iterable",
]

#: Module allowed to talk to the RNG machinery directly.
RNG_MODULE = "repro.sim.rng"

#: Wall-clock calls that break seed-only reproducibility.
WALL_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

#: np.random.* constructors that take an explicit seed and are fine.
SEEDED_RNG_CTORS = {
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}


def in_scope(module: str, scopes: Sequence[str]) -> bool:
    return any(module == s or module.startswith(s + ".") for s in scopes)


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render an attribute/name chain like ``np.random.default_rng``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def build_function_map(tree: ast.Module) -> Dict[ast.AST, str]:
    """node -> name of the nearest enclosing function, "" at module level."""
    func_of: Dict[ast.AST, str] = {}

    def visit(node: ast.AST, current: str) -> None:
        func_of[node] = current
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(child, child.name)
            else:
                visit(child, current)

    visit(tree, "")
    return func_of


@dataclass
class Context:
    """Everything a rule needs to know about the module being linted."""

    path: str
    module: str
    tree: ast.Module
    #: node -> name of the nearest enclosing function, "" at module level.
    func_of: Dict[ast.AST, str]


def unordered_iterable(node: ast.expr) -> Optional[str]:
    """Describe ``node`` if iterating it depends on hash order."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set literal"
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in (
            "set", "frozenset"
        ):
            return f"a `{node.func.id}(...)` result"
        if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
            return "a `.keys()` view"
    return None


def entropy_source(node: ast.Call) -> Optional[str]:
    """Describe ``node`` if calling it injects process entropy.

    Covers unseeded randomness, wall-clock reads, ``id()`` (address-
    space layout), ``os.urandom``, ``uuid4`` and ``secrets``.  Returns
    a short human description, or None for deterministic calls.
    """
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    parts = dotted.split(".")
    if len(parts) >= 2 and tuple(parts[-2:]) in WALL_CLOCK_CALLS:
        return f"wall-clock `{dotted}()`"
    if len(parts) >= 3 and parts[-2] == "random" and parts[-3] in (
        "np", "numpy"
    ):
        fn = parts[-1]
        if fn in SEEDED_RNG_CTORS:
            return None
        if fn == "default_rng" and (node.args or node.keywords):
            return None
        return f"unseeded `{dotted}()`"
    if parts[0] == "random" and len(parts) >= 2:
        return f"stdlib `{dotted}()`"
    if dotted == "id":
        return "`id()` (address-space entropy)"
    if dotted in ("os.urandom", "uuid.uuid4", "uuid.uuid1"):
        return f"`{dotted}()`"
    if parts[0] == "secrets":
        return f"`{dotted}()`"
    return None
