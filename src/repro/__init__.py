"""BlitzCoin reproduction: fully decentralized hardware power management
for accelerator-rich SoCs (ISCA 2024), as a behavioral Python library.

The public surface is organized by subsystem; the most common entry
points are re-exported here:

>>> from repro import Soc, PMKind, WorkloadExecutor, build_pm, soc_3x3
>>> from repro.workloads import autonomous_vehicle_parallel
>>> soc = Soc(soc_3x3())
>>> pm = build_pm(PMKind.BLITZCOIN, soc, budget_mw=120.0)
>>> result = WorkloadExecutor(soc, autonomous_vehicle_parallel(), pm).run()
"""

from repro.core import BlitzCoinConfig, CoinExchangeEngine
from repro.soc import (
    PMKind,
    Soc,
    SocRunResult,
    WorkloadExecutor,
    build_pm,
    soc_3x3,
    soc_4x4,
    soc_6x6_chip,
)

__version__ = "1.0.0"

__all__ = [
    "BlitzCoinConfig",
    "CoinExchangeEngine",
    "PMKind",
    "Soc",
    "SocRunResult",
    "WorkloadExecutor",
    "__version__",
    "build_pm",
    "soc_3x3",
    "soc_4x4",
    "soc_6x6_chip",
]
