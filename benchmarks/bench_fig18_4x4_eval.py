"""Fig. 18: execution and response time on the 4x4 SoC."""

from repro.experiments import fig18_4x4_eval


def test_fig18_4x4_eval(benchmark, report):
    result = benchmark.pedantic(fig18_4x4_eval.run, rounds=1, iterations=1)
    report("Fig. 18: 4x4 SoC evaluation", fig18_4x4_eval.format_rows(result))

    # The 3x3 trends repeat at N=13: BC beats C-RR (paper: ~25%).
    assert result.mean_speedup(vs="C-RR") > 1.15
    for mode, budget in fig18_4x4_eval.CASES:
        assert result.speedup(mode, budget, vs="C-RR") > 0.95

    # BC matches BC-C's allocation-driven throughput.
    assert result.mean_speedup(vs="BC-C") > 0.97

    # Response: in the parallel workloads (the paper's headline regime,
    # many concurrent activity edges) BC responds well before the O(N)
    # centralized loop completes.
    for budget in (450.0, 900.0):
        bc = result.get("BC", "WL-Par", budget).mean_response_us
        crr = result.get("C-RR", "WL-Par", budget).mean_response_us
        assert bc < crr
