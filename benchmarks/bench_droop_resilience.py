"""Section IV-A ablation: droop resilience of UVFR vs fixed-frequency.

Quantifies the paper's motivation for supply-tracking clocks [58]-[60]:
under the same supply transients, UVFR pays a transient slowdown only,
while a conventional fixed-frequency design either violates timing or
pays the guard-band's power overhead permanently.
"""

from repro.dvfs.droop import DroopEvent, DroopSimulator
from repro.power.characterization import get_curve

DEPTHS_V = (0.02, 0.05, 0.08, 0.12)


def run_sweep():
    out = {}
    for name in ("FFT", "NVDLA", "GEMM"):
        sim = DroopSimulator(get_curve(name))
        f_mid = 0.75 * get_curve(name).spec.f_max_hz
        out[name] = {
            "tradeoff": sim.guardband_tradeoff(f_mid, DEPTHS_V),
            "unguarded": [
                sim.conventional_response(
                    f_mid, [DroopEvent(0, d, 200)], guardband_v=0.03
                ).timing_violations
                for d in DEPTHS_V
            ],
            "uvfr": [
                sim.uvfr_response(f_mid, [DroopEvent(0, d, 200)])
                for d in DEPTHS_V
            ],
        }
    return out


def test_droop_resilience(benchmark, report):
    results = benchmark(run_sweep)
    rows = []
    for name, r in results.items():
        for (depth, uvfr_frac, conv_overhead), violations in zip(
            r["tradeoff"], r["unguarded"]
        ):
            rows.append(
                f"{name:6s} droop={depth * 1000:4.0f} mV  "
                f"UVFR slowdown={uvfr_frac * 100:5.1f}% (transient)   "
                f"guard-band power={conv_overhead * 100:5.1f}% (permanent)  "
                f"30mV-guarded design violations={violations}"
            )
    report("Droop resilience: UVFR vs conventional", rows)

    for name, r in results.items():
        # UVFR never violates timing, at any droop depth.
        for res in r["uvfr"]:
            assert res.survives, name
        # A modest 30 mV guard-band fails once droops exceed it.
        assert r["unguarded"][-1] > 0, name
        # Surviving the worst droop statically costs permanent power.
        worst_overhead = r["tradeoff"][-1][2]
        assert worst_overhead > 0.08, name
        # UVFR's cost is bounded and transient.
        assert r["tradeoff"][-1][1] < 0.9, name
