"""Energy-efficiency ablation: work-per-joule across schemes.

The physical mechanism behind RP's win (Section VI-A): spreading the
budget across many tiles at low voltage buys more MHz per mW than
concentrating it at the V^2-expensive top of the curve.  This bench
measures completed accelerator-cycles per joule for each scheme on the
same workload and budget.
"""

from repro.report.post_process import throughput_per_watt
from repro.soc.executor import WorkloadExecutor
from repro.soc.pm import PMKind, build_pm
from repro.soc.presets import soc_3x3
from repro.soc.soc import Soc
from repro.workloads.apps import autonomous_vehicle_parallel

SCHEMES = (PMKind.BLITZCOIN, PMKind.BLITZCOIN_CENTRAL, PMKind.ROUND_ROBIN)


def run_all():
    out = {}
    for kind in SCHEMES:
        soc = Soc(soc_3x3())
        pm = build_pm(kind, soc, 120.0)
        result = WorkloadExecutor(
            soc, autonomous_vehicle_parallel(), pm
        ).run()
        out[kind.value] = {
            "result": result,
            "cycles_per_joule": throughput_per_watt(result),
            "energy_uj": result.energy_mj() * 1000,
        }
    return out


def test_energy_efficiency(benchmark, report):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        f"{name:5s} energy={r['energy_uj']:8.1f} uJ  "
        f"efficiency={r['cycles_per_joule'] / 1e9:6.2f} Gcycles/J  "
        f"makespan={r['result'].makespan_us:8.1f} us"
        for name, r in results.items()
    ]
    report("Energy efficiency (3x3 WL-Par @ 120 mW)", rows)

    bc = results["BC"]["cycles_per_joule"]
    crr = results["C-RR"]["cycles_per_joule"]
    # Proportional low-voltage operation completes more work per joule
    # than C-RR's max-or-idle duty cycling.
    assert bc > 1.10 * crr
    # Same total work, so BC also finishes with less total energy.
    assert (
        results["BC"]["energy_uj"] < results["C-RR"]["energy_uj"] * 1.0
    )
    # BC and BC-C share the allocation policy: efficiency within a few
    # percent of each other.
    bcc = results["BC-C"]["cycles_per_joule"]
    assert abs(bc - bcc) / bcc < 0.10
