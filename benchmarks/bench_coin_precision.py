"""Coin-precision ablation: why the hardware uses 6-bit counters.

Section IV-A: BlitzCoin's 64 power levels per tile are "much finer than
previous solutions, which implement between 2 and 5 power levels".
This bench sweeps the counter width on the 3x3 evaluation: prior-work
granularity (2-3 bits) loses throughput and even overshoots the cap
through quantization, while widths beyond 6 bits buy nothing.
"""

from repro.soc.executor import WorkloadExecutor
from repro.soc.pm import BlitzCoinPM
from repro.soc.presets import soc_3x3
from repro.soc.soc import Soc
from repro.workloads.apps import autonomous_vehicle_parallel

BITS = (2, 3, 4, 6, 8)


def run_sweep():
    out = {}
    for bits in BITS:
        soc = Soc(soc_3x3())
        pm = BlitzCoinPM(soc, 120.0, coin_bits=bits)
        out[bits] = WorkloadExecutor(
            soc, autonomous_vehicle_parallel(), pm
        ).run()
    return out


def test_coin_precision(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        f"{bits}-bit counters ({2 ** bits:3d} levels): "
        f"makespan={r.makespan_us:8.1f} us  "
        f"avg={r.average_power_mw():6.1f} mW  peak={r.peak_power_mw():6.1f} mW"
        for bits, r in results.items()
    ]
    report("Coin-precision ablation (3x3 WL-Par @ 120 mW)", rows)

    six = results[6]
    # Prior-work granularity (4 levels) costs heavily in throughput.
    assert results[2].makespan_us > 1.4 * six.makespan_us
    # From ~16 levels up, throughput is within a few percent of 64.
    assert results[4].makespan_us < 1.05 * six.makespan_us
    # Wider than 6 bits buys nothing measurable.
    assert abs(results[8].makespan_us - six.makespan_us) < 0.03 * six.makespan_us
    # Fine-grained quantization is also what keeps the cap honest:
    # 6-bit peaks stay under budget (+ slew transients) while 2-bit
    # quantization overshoots it badly.
    assert six.peak_power_mw() <= 1.10 * 120.0
    assert results[2].peak_power_mw() > 1.10 * 120.0
