"""Fig. 17: execution and response time on the 3x3 SoC."""

from repro.experiments import fig17_3x3_eval


def test_fig17_3x3_eval(benchmark, report):
    result = benchmark.pedantic(fig17_3x3_eval.run, rounds=1, iterations=1)
    report("Fig. 17: 3x3 SoC evaluation", fig17_3x3_eval.format_rows(result))

    # Headline: BC beats C-RR on throughput, ~25-34% in the paper;
    # require a clear mean advantage and no large per-case regression.
    assert result.mean_speedup(vs="C-RR") > 1.15
    for mode, budget in fig17_3x3_eval.CASES:
        assert result.speedup(mode, budget, vs="C-RR") > 0.95

    # BC is never meaningfully slower than BC-C (same allocation).
    assert result.mean_speedup(vs="BC-C") > 0.97

    # Response time: BC is the fastest scheme in every configuration,
    # and markedly faster than both centralized schemes on average
    # (paper: 10.1x vs BC-C, 12.1x vs C-RR).
    for mode, budget in fig17_3x3_eval.CASES:
        bc = result.get("BC", mode, budget).mean_response_us
        assert bc < result.get("BC-C", mode, budget).mean_response_us
        assert bc < result.get("C-RR", mode, budget).mean_response_us
    import statistics

    mean_impr_crr = statistics.mean(
        result.response_improvement(mode, budget, vs="C-RR")
        for mode, budget in fig17_3x3_eval.CASES
    )
    assert mean_impr_crr > 3.0
