"""Fig. 1: response-time scalability of power-management strategies."""

from repro.experiments import fig01_scalability


def test_fig01_scalability(benchmark, report):
    result = benchmark(fig01_scalability.run)
    report("Fig. 1: N_max per strategy and T_w", fig01_scalability.format_rows(result))

    # Shape: decentralized >> HW-centralized >> SW-centralized, at every T_w.
    for t_w in fig01_scalability.T_W_VALUES_US:
        dec = result.n_max[("Decentralized", t_w)]
        hw = result.n_max[("HW-centralized", t_w)]
        sw = result.n_max[("SW-centralized", t_w)]
        assert dec > 2 * hw > 4 * sw

    # The paper's anchors: SW management cannot even reach ~10-15
    # accelerators at T_w <= 20 ms; decentralized handles N >= 100 at
    # millisecond T_w.
    assert result.n_max[("SW-centralized", 20_000.0)] < 16
    assert result.n_max[("Decentralized", 2_000.0)] > 100

    # Response curves are monotone in N; interval curves decay as T_w/N.
    for series in result.response_us.values():
        assert series == sorted(series)
    for series in result.interval_us.values():
        assert series == sorted(series, reverse=True)
