"""Methodology ablation: behavioral vs cycle-level NoC.

The Monte-Carlo studies use a contention-free behavioral NoC (matching
the paper's own Python emulator); the SoC runs can use either.  This
bench validates the shortcut: coin traffic is sparse single-flit
messages, so running the full 3x3 evaluation over the cycle-level
router model (link serialization, XY routing, per-plane contention)
must not change who wins or the makespans beyond a few percent.
"""

from repro.soc.executor import WorkloadExecutor
from repro.soc.pm import PMKind, build_pm
from repro.soc.presets import soc_3x3
from repro.soc.soc import Soc
from repro.workloads.apps import autonomous_vehicle_parallel


def run_both():
    out = {}
    for fidelity in ("behavioral", "cycle"):
        for kind in (PMKind.BLITZCOIN, PMKind.ROUND_ROBIN):
            soc = Soc(soc_3x3(), noc_fidelity=fidelity)
            pm = build_pm(kind, soc, 120.0)
            result = WorkloadExecutor(
                soc, autonomous_vehicle_parallel(), pm
            ).run()
            out[(fidelity, kind.value)] = result
    return out


def test_noc_fidelity(benchmark, report):
    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        f"{fid:10s} {scheme:5s}  makespan={r.makespan_us:8.1f} us  "
        f"resp={r.mean_response_us:6.2f} us  peak={r.peak_power_mw():6.1f} mW"
        for (fid, scheme), r in results.items()
    ]
    report("NoC fidelity ablation (behavioral vs cycle router)", rows)

    # Makespans agree within a few percent across fidelities.
    for scheme in ("BC", "C-RR"):
        a = results[("behavioral", scheme)].makespan_us
        b = results[("cycle", scheme)].makespan_us
        assert abs(a - b) / a < 0.05, scheme

    # The winner is the same under both models.
    for fid in ("behavioral", "cycle"):
        assert (
            results[(fid, "BC")].makespan_us
            < results[(fid, "C-RR")].makespan_us
        )

    # The cap holds under contention too.
    for r in results.values():
        assert r.peak_power_mw() <= 1.10 * 120.0
