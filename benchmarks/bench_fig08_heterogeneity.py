"""Fig. 8: convergence time vs SoC size and heterogeneity."""

from repro.experiments import fig08_heterogeneity

DIMS = (4, 8, 12)
ACC_TYPES = (1, 2, 4, 8)
TRIALS = 5


def test_fig08_heterogeneity(benchmark, report):
    result = benchmark.pedantic(
        fig08_heterogeneity.run,
        kwargs={
            "dims": DIMS,
            "acc_types_values": ACC_TYPES,
            "trials": TRIALS,
        },
        rounds=1,
        iterations=1,
    )
    report(
        "Fig. 8: heterogeneity sweep",
        fig08_heterogeneity.format_rows(result),
    )

    # All configurations converge.
    for p in result.points.values():
        assert p.converged_fraction == 1.0

    # Convergence time grows with SoC size for every heterogeneity level.
    for at in ACC_TYPES:
        series = result.series_for_acc_types(at)
        assert series[-1].mean_cycles > series[0].mean_cycles

    # Higher heterogeneity -> larger start error (the paper's coupling),
    # checked on the largest SoC between the extremes.
    errors = dict(result.start_error_by_acc_types(DIMS[-1]))
    assert errors[ACC_TYPES[-1]] > errors[1]
