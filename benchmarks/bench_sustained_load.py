"""Empirical "keeping up" study (the criterion behind Figs. 1 and 21).

The paper's analytical model says an N=100 SoC is supportable by
BlitzCoin for T_w >= 0.2 ms and not for much faster churn.  This bench
runs the actual coin engine under random phase churn at N=100 and
measures the fraction of time the allocation is at its current
equilibrium: the empirical crossover must sit where the model puts it.
"""

from repro.experiments import sustained_load

T_W_VALUES_US = (20.0, 60.0, 200.0, 600.0)


def run_sweep():
    return [
        sustained_load.run_sustained(
            10, t_w, seed=0, horizon_us=min(5 * t_w, 1_500.0)
        )
        for t_w in T_W_VALUES_US
    ]


def test_sustained_load(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "Sustained churn at N=100 (analytic crossover: T_w ~ 0.2 ms)",
        sustained_load.format_rows(results),
    )

    by_tw = {r.t_w_us: r for r in results}
    # Far below the crossover: the PM is stale almost always.
    assert not by_tw[20.0].keeps_up
    # At and above the paper's supported point, it keeps up.
    assert by_tw[200.0].keeps_up
    assert by_tw[600.0].keeps_up
    # Converged fraction is monotone in T_w across the sweep.
    fractions = [by_tw[t].converged_fraction for t in T_W_VALUES_US]
    assert fractions == sorted(fractions)
