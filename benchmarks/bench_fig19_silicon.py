"""Fig. 19: the silicon-measurement experiments (simulated)."""

from repro.experiments import fig19_silicon
from repro.sim import cycles_to_us


def test_fig19_silicon(benchmark, report):
    result = benchmark.pedantic(fig19_silicon.run, rounds=1, iterations=1)
    report("Fig. 19: PM-cluster (silicon) experiments", fig19_silicon.format_rows(result))

    # Budget enforcement with high utilization (paper: 97% of budget,
    # cap never exceeded).
    for run in result.runs.values():
        assert run.peak_power_mw <= 1.05 * fig19_silicon.PM_CLUSTER_BUDGET_MW
        assert run.budget_utilization > 0.70

    # Dynamic redistribution beats the static split for every workload
    # size, with larger gains for more accelerators (paper: 27% at 7
    # accelerators down to 19% at 3).
    gains = {
        n: run.throughput_gain_percent for n, run in result.runs.items()
    }
    assert gains[7] > 5.0
    assert gains[7] > gains[3]

    # Coin redistribution settles within ~one coin of target (paper:
    # residual below one coin; we allow in-flight snapshot slack).
    assert result.coin_snapshot.worst_residual_coins <= 2.0

    # The UVFR transition settles in the paper's ~microsecond regime.
    assert result.uvfr_transition.settled
    assert cycles_to_us(result.uvfr_transition.cycles) < 3.0

    # BlitzCoin overhead vs the FFT No-PM tile: < 2%.
    assert result.pm_overhead_percent < 2.0
