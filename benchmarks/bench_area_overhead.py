"""Section IV-A claim: <1% per-tile area overhead, far below prior art.

Also quantifies the coin-exchange NoC traffic share in steady state —
the other "negligible overhead" dimension: once converged, dynamic
timing throttles coin messages to a vanishing fraction of the NoC's
link capacity.
"""

from repro.core.config import preferred_embodiment
from repro.core.engine import CoinExchangeEngine
from repro.noc.router import CycleNoc
from repro.noc.topology import MeshTopology
from repro.power.area import TileAreaBudget, comparison_rows
from repro.sim.kernel import Simulator
from repro.sim.rng import rng_for


def steady_state_traffic_share(d=6, settle=100_000, window=200_000):
    """Fraction of NoC link capacity used by coin traffic at steady state."""
    topo = MeshTopology(d, d)
    sim = Simulator()
    noc = CycleNoc(sim, topo)
    n = topo.n_tiles
    engine = CoinExchangeEngine(
        sim,
        noc,
        preferred_embodiment(),
        [8] * n,
        [8] * n,
        rng=rng_for(23),
    )
    engine.start()
    sim.run(until=settle)
    flits_before = sum(r.flits_forwarded for r in noc.routers)
    sim.run(until=settle + window)
    flits = sum(r.flits_forwarded for r in noc.routers) - flits_before
    capacity = 4 * n * window  # four outgoing links per tile
    return flits / capacity


def test_area_and_traffic_overhead(benchmark, report):
    def scenario():
        return {
            "area_rows": comparison_rows(1.0),
            "traffic_share": steady_state_traffic_share(),
        }

    results = benchmark.pedantic(scenario, rounds=1, iterations=1)
    rows = [
        f"{name:28s} {frac * 100:6.2f}% of a 1 mm^2 tile"
        for name, frac in results["area_rows"]
    ]
    rows.append(
        f"steady-state coin traffic: "
        f"{results['traffic_share'] * 100:.4f}% of NoC link capacity"
    )
    report("Overhead: area (Sec. IV-A) and steady-state traffic", rows)

    area = dict(results["area_rows"])
    ours = area["BlitzCoin (this work)"]
    # The paper's headline: under 1% per tile.
    assert ours < 0.01
    # And 30-70x below switched-capacitor regulators.
    budget = TileAreaBudget(1.0)
    assert budget.advantage_over("switched-cap UVFR [51]") > 30
    # Steady-state coin traffic is a negligible share of the NoC.
    assert results["traffic_share"] < 0.005
