"""blitzlint cache economics: cold analysis vs. warm content-hash hits.

blitzlint v2's dataflow passes (CFG construction, worklist fixpoints,
acyclic path enumeration) dominate cold runtime, but their output is a
pure function of (file content, rule selection, linter version), so
the result cache should make warm runs near-instant.  This benchmark
lints ``src/repro`` cold (fresh cache) and warm (same cache, nothing
changed), asserts the warm run returns the identical findings and is
at least 5x faster, and then touches one file to confirm the cache
re-lints only what changed.  EXPERIMENTS.md records the measured
ratio.
"""
# Benchmarks measure wall time by design; the D1 wall-clock rule is
# for simulation code, not for the harness timing it.
# blitzlint: disable-file=D1

import shutil
import tempfile
import time
from pathlib import Path

from repro.analysis.cache import ResultCache
from repro.analysis.lint import lint_paths
from repro.perf import register

REPO = Path(__file__).resolve().parent.parent
TARGET = REPO / "src" / "repro"
REPEATS = 3


@register(
    "lint.tree_cold",
    params={},
    suites=("full",),
    description="blitzlint full dataflow analysis of the whole "
    "src/repro tree on a fresh result cache.",
)
def run_cold_lint():
    with tempfile.TemporaryDirectory(prefix="bench-lint-") as scratch:
        findings = lint_paths(
            [str(TARGET)], cache=ResultCache(Path(scratch) / "cache.json")
        )
    return {"findings": len(findings)}


def _timed_lint(cache):
    t0 = time.perf_counter()
    findings = lint_paths([str(TARGET)], cache=cache)
    return time.perf_counter() - t0, findings


def test_lint_cache_speedup(report, tmp_path):
    cache_path = tmp_path / "lint-cache.json"

    # Cold: every file analyzed, cache filled.
    cold_time, cold_findings = _timed_lint(ResultCache(cache_path))
    c = ResultCache(cache_path)
    _, _ = _timed_lint(c)  # fill
    c.save()

    # Warm: best of REPEATS, all files served from the cache.
    warm_time = float("inf")
    warm_findings = None
    for _ in range(REPEATS):
        t, warm_findings = _timed_lint(ResultCache(cache_path))
        warm_time = min(warm_time, t)

    speedup = cold_time / warm_time
    report(
        "blitzlint cache economics (src/repro)",
        [
            f"cold full analysis : {cold_time * 1000:7.1f} ms",
            f"warm cache hits    : {warm_time * 1000:7.1f} ms",
            f"speedup            : {speedup:7.1f}x",
        ],
    )

    assert [f.to_dict() for f in warm_findings] == [
        f.to_dict() for f in cold_findings
    ]
    assert speedup >= 5.0, (
        f"warm cached lint only {speedup:.1f}x faster than cold "
        "(expected >= 5x)"
    )

    # Touch one file: exactly that file re-analyzes, findings unchanged.
    victim = TARGET / "core" / "coins.py"
    workdir = tmp_path / "tree"
    shutil.copytree(TARGET, workdir / "repro")
    edited = workdir / "repro" / "core" / "coins.py"
    edited.write_text(
        victim.read_text(encoding="utf-8") + "\n# cache-buster\n",
        encoding="utf-8",
    )
    edit_cache = ResultCache(tmp_path / "edit-cache.json")
    cold2, base = _timed_lint_at(workdir / "repro", edit_cache)
    edit_cache.save()
    t_incr, after = _timed_lint_at(
        workdir / "repro", ResultCache(tmp_path / "edit-cache.json")
    )
    assert [f.to_dict() for f in after] == [f.to_dict() for f in base]
    assert t_incr < cold2, "incremental re-lint should beat cold analysis"


def _timed_lint_at(target, cache):
    t0 = time.perf_counter()
    findings = lint_paths([str(target)], cache=cache)
    return time.perf_counter() - t0, findings


def main() -> int:
    from repro.perf import REGISTRY, run_benchmark

    result = run_benchmark(REGISTRY.get("lint.tree_cold"), reps=1, warmup=0)
    print(
        f"lint.tree_cold  {min(result.per_rep_s) * 1000:.1f} ms  "
        f"metrics={result.metrics}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
