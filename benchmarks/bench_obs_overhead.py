"""Observability overhead: the cost of the sink path and the monitors.

The obs design claim is "zero overhead disabled, cheap enabled": sites
guard every emission behind one ``sink is not None`` check, and the
online health monitors ride that same path.  This benchmark times the
fig03-quick convergence workload three ways — obs off, tracing on
(plain Observation), monitors on (MonitorSet wrapping one) — asserts
the results stay bit-identical in all three, and bounds the enabled
cost.  EXPERIMENTS.md records the measured ratios.
"""
# Benchmarks measure wall time by design; the D1 wall-clock rule is
# for simulation code, not for the harness timing it.
# blitzlint: disable-file=D1

import time

from repro.campaign.spec import canonical_json
from repro.core.config import preferred_embodiment
from repro.core.runner import run_trials
from repro.obs import MonitorSet, default_monitors, observing
from repro.obs.sink import Observation
from repro.perf import register

D = 6
TRIALS = 4
REPEATS = 3


@register(
    "obs.overhead_monitors",
    params={"d": D, "trials": TRIALS},
    suites=("full",),
    description="The fig03-quick workload under the full MonitorSet — "
    "the most expensive observability configuration. Installs its own "
    "sink, so no counters/profile.",
)
def run_monitored(d, trials):
    with observing(MonitorSet(default_monitors(), Observation("bench"))):
        results = run_trials(
            d, preferred_embodiment(), trials, base_seed=3, threshold=1.5
        )
    return {
        "converged": sum(1 for r in results if r.converged),
        "packets": sum(r.packets for r in results),
    }


def _workload():
    return run_trials(
        D, preferred_embodiment(), TRIALS, base_seed=3, threshold=1.5
    )


def _fingerprint(results):
    return canonical_json([vars(r) for r in results])


def _timed(make_sink):
    best = float("inf")
    fingerprint = None
    for _ in range(REPEATS):
        sink = make_sink()
        t0 = time.perf_counter()
        if sink is None:
            results = _workload()
        else:
            with observing(sink):
                results = _workload()
        best = min(best, time.perf_counter() - t0)
        fingerprint = _fingerprint(results)
    return best, fingerprint


def test_obs_overhead(report):
    _workload()  # warm imports and allocator before timing anything

    off_time, off_fp = _timed(lambda: None)
    obs_time, obs_fp = _timed(lambda: Observation("bench"))
    mon_time, mon_fp = _timed(
        lambda: MonitorSet(default_monitors(), Observation("bench"))
    )

    # The load-bearing property: enabling observation or monitors
    # changes wall time only, never a result bit.
    assert obs_fp == off_fp
    assert mon_fp == off_fp

    rows = [
        f"workload: fig03-quick  d={D} trials={TRIALS} "
        f"(best of {REPEATS})",
        f"obs off      {off_time * 1000:8.1f} ms   1.00x",
        f"obs on       {obs_time * 1000:8.1f} ms   "
        f"{obs_time / off_time:5.2f}x",
        f"monitors on  {mon_time * 1000:8.1f} ms   "
        f"{mon_time / off_time:5.2f}x",
        f"monitor cost over plain obs: "
        f"{(mon_time - obs_time) / off_time * 100:+5.1f}% of baseline",
    ]
    report("Observability overhead (obs off / on / monitors)", rows)

    # Loose bounds — CI boxes are noisy; the claim is "cheap", not a
    # precise constant.  Full tracing measures ~2.9x (it records every
    # exchange); monitors must stay within 1.5x of plain tracing,
    # because they reuse events tracing already pays for.
    assert obs_time < 5.0 * off_time
    assert mon_time < 1.5 * obs_time + 0.05


def test_scoped_lookup_overhead(report):
    """The scoped ``runtime.sink`` obs-off path vs the old global load.

    The scoped runtime keeps a real ``sink = None`` module attribute
    bound while no sink is installed anywhere, so the obs-off fast
    path is the *same* one-global-load the pre-scoped runtime did —
    that equivalence (≤1.1x) is the acceptance bound.  While any
    context observes, reads fall through to the ContextVar via module
    ``__getattr__``; ``_contextvar_only`` forces that path so its
    price is measured too (paid only while observability is actually
    on somewhere, i.e. when a run is being traced anyway).
    """
    from repro.obs.runtime import _contextvar_only

    _workload()  # warm imports and allocator before timing anything

    def timed_off():
        best = float("inf")
        fingerprint = None
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            results = _workload()
            best = min(best, time.perf_counter() - t0)
            fingerprint = _fingerprint(results)
        return best, fingerprint

    fast_time, fast_fp = timed_off()  # attr bound: the old global load
    with _contextvar_only():  # every read through the per-context slot
        scoped_time, scoped_fp = timed_off()

    # Scoping must not change a result bit, on either lookup path.
    assert scoped_fp == fast_fp

    report(
        "Scoped sink lookup (obs off: fast attr vs forced ContextVar)",
        [
            f"workload: fig03-quick  d={D} trials={TRIALS} "
            f"(best of {REPEATS})",
            f"fast path (= old global)  {fast_time * 1000:8.1f} ms   1.00x",
            f"contextvar (observing)    {scoped_time * 1000:8.1f} ms   "
            f"{scoped_time / fast_time:5.2f}x",
        ],
    )
    # Acceptance: the scoped runtime's obs-off path costs ≤1.1x the
    # old module-global load.  With no sink installed anywhere the
    # runtime binds a real ``sink = None`` attribute, so the obs-off
    # read IS the old one-global-load mechanism — assert that
    # structurally (a regression to always-ContextVar would unbind
    # it) and bound the forced-ContextVar path loosely; it is only
    # taken while a sink is installed somewhere, where full tracing
    # (~3x) dominates anyway.
    import repro.obs.runtime as _runtime

    assert "sink" in vars(_runtime), "obs-off fast-path attribute unbound"
    assert scoped_time < 1.6 * fast_time + 0.05


def main() -> int:
    from repro.perf import REGISTRY, run_benchmark

    result = run_benchmark(
        REGISTRY.get("obs.overhead_monitors"), reps=REPEATS, warmup=1
    )
    print(
        f"obs.overhead_monitors  best "
        f"{min(result.per_rep_s) * 1000:.1f} ms  metrics={result.metrics}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
