"""Section III-A extension: closed-loop hotspot governance.

Runs the 3x3 autonomous-vehicle workload under BlitzCoin with the RC
thermal model in the loop.  A temperature limit engages per-tile coin
caps (the paper's coin-rejection hotspot mechanism); the bench
quantifies the peak-temperature reduction and the throughput cost.
"""

from repro.soc.executor import WorkloadExecutor
from repro.soc.pm import BlitzCoinPM
from repro.soc.presets import soc_3x3
from repro.soc.soc import Soc
from repro.thermal.governor import ThermalGovernor
from repro.workloads.apps import autonomous_vehicle_parallel


def run_pair():
    out = {}
    for label, limit in (("uncapped", 500.0), ("governed", 52.0)):
        soc = Soc(soc_3x3())
        pm = BlitzCoinPM(soc, 120.0)
        # capped_coins must keep the tile above its leakage floor or a
        # throttled task can stall forever; the hysteresis band damps
        # cap/release oscillation (and its actuator-slew transients).
        governor = ThermalGovernor(
            soc,
            pm,
            limit_c=limit,
            hysteresis_c=5.0,
            sample_cycles=2_000,
            capped_coins=8,
        )
        executor = WorkloadExecutor(
            soc, autonomous_vehicle_parallel(), pm
        )
        governor.start()
        result = executor.run()
        out[label] = (result, governor)
    return out


def test_thermal_governor(benchmark, report):
    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    rows = []
    for label, (result, governor) in results.items():
        rows.append(
            f"{label:9s} makespan={result.makespan_us:8.1f} us  "
            f"peak_T={governor.peak_temperature_c:5.1f} C  "
            f"cap_events={governor.cap_events}"
        )
    report("Thermal governor ablation (limit 52 C)", rows)

    free_result, free_gov = results["uncapped"]
    gov_result, gov = results["governed"]
    # The governor engages and holds the peak temperature down.
    assert gov.cap_events > 0
    assert gov.peak_temperature_c < free_gov.peak_temperature_c - 1.0
    # Bounded throughput cost: holding an NVDLA-class tile under a
    # tight thermal limit legitimately costs severalfold runtime; the
    # assertion is that the run completes and degrades gracefully.
    assert gov_result.makespan_us < 8.0 * free_result.makespan_us
    # The budget cap still holds while thermally throttled.
    assert gov_result.peak_power_mw() <= 1.10 * 120.0
