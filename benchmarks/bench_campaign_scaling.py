"""Campaign scaling: parallel speedup and cache economics.

The campaign layer's pitch is twofold: fan seeded trials over worker
processes without changing a single bit of any result, and never run
the same (config, params, seed) unit twice.  This benchmark measures
both — wall-clock speedup of parallel vs. serial execution at 1/2/4/8
workers on a cold cache, then a warm-cache rerun that must execute
nothing at all.  EXPERIMENTS.md records the measured numbers.
"""
# Benchmarks measure wall time by design; the D1 wall-clock rule is
# for simulation code, not for the harness timing it.
# blitzlint: disable-file=D1

import json
import os
import tempfile
import time
from pathlib import Path

from repro.campaign import CampaignSpec, CampaignStore, run_campaign
from repro.campaign.spec import canonical_json, encode_config
from repro.core.config import plain_one_way
from repro.perf import register

WORKER_COUNTS = (1, 2, 4, 8)


def _spec():
    # Heavy enough per unit that process fan-out beats pool overhead:
    # 12 convergence trials across two techniques and two mesh sizes.
    return CampaignSpec(
        name="bench-scaling",
        kind="convergence",
        trials=3,
        base_seed=3,
        seed_stride=1000,
        axes=(("mode", ("1-way", "4-way")), ("d", (4, 6))),
        params={"threshold": 1.5},
        config=encode_config(plain_one_way()),
    )


def _results_fingerprint(run):
    return canonical_json([json.loads(canonical_json(r)) for r in run.results])


@register(
    "campaign.parallel",
    params={"workers": 4},
    suites=("full",),
    description="The scaling spec on a cold store with a 4-wide worker "
    "pool (results live in worker processes, so no counters).",
)
def run_parallel_campaign(workers):
    with tempfile.TemporaryDirectory(prefix="bench-campaign-") as scratch:
        run = run_campaign(
            _spec(), store=CampaignStore(Path(scratch)), workers=workers
        )
        return {"units_executed": run.executed, "units_total": run.total}


def test_campaign_scaling(benchmark, report, tmp_path):
    spec = _spec()

    # Serial reference, timed through the benchmark harness.
    serial_store = CampaignStore(tmp_path / "serial")
    t0 = time.perf_counter()
    serial = benchmark.pedantic(
        run_campaign,
        args=(spec,),
        kwargs={"store": serial_store, "workers": 1},
        rounds=1,
        iterations=1,
    )
    serial_time = time.perf_counter() - t0
    assert serial.executed == serial.total

    rows = [f"units={serial.total}  cores={os.cpu_count()}"]
    rows.append(f"serial          {serial_time:7.2f}s  speedup= 1.00x")

    times = {}
    for workers in WORKER_COUNTS:
        store = CampaignStore(tmp_path / f"w{workers}")
        t0 = time.perf_counter()
        run = run_campaign(spec, store=store, workers=workers)
        times[workers] = time.perf_counter() - t0
        # Bit-identity: the worker fan-out must not change any result.
        assert _results_fingerprint(run) == _results_fingerprint(serial)
        assert run.executed == run.total
        rows.append(
            f"workers={workers}  cold {times[workers]:7.2f}s  "
            f"speedup={serial_time / times[workers]:5.2f}x"
        )

    # Warm cache: the rerun must execute zero units, at any worker count.
    t0 = time.perf_counter()
    warm = run_campaign(spec, store=serial_store, workers=4)
    warm_time = time.perf_counter() - t0
    assert warm.executed == 0
    assert warm.cached == warm.total
    assert _results_fingerprint(warm) == _results_fingerprint(serial)
    rows.append(
        f"warm cache      {warm_time:7.2f}s  "
        f"speedup={serial_time / warm_time:5.2f}x  (0 units executed)"
    )

    report("Campaign scaling: parallel + cache", rows)

    # The speedup claim needs real cores behind the workers; on the
    # 4-core CI runner, 4 workers must at least halve the wall clock.
    cores = os.cpu_count() or 1
    if cores >= 4:
        assert serial_time / times[4] >= 2.0

    # The cache claim holds everywhere: a warm rerun is pure reads.
    assert warm_time < serial_time


def main() -> int:
    from repro.perf import REGISTRY, run_benchmark

    result = run_benchmark(
        REGISTRY.get("campaign.parallel"), reps=1, warmup=0
    )
    print(
        f"campaign.parallel  {min(result.per_rep_s):.2f} s  "
        f"metrics={result.metrics}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
