"""Fault-resilience degradation curves (Section II-B robustness claim).

BlitzCoin has no single point of failure: convergence degrades
gracefully as the fabric drops packets, and survives the death of any
tile (the dead tile's coins are reconciled and re-minted onto the
survivors).  A centralized controller on the same lossy fabric limps
through poll retries — and never converges again once the controller
tile itself dies.
"""

from repro.experiments import fault_sweep

RATES = (0.0, 0.05, 0.2)


def test_fault_resilience_curves(benchmark, report):
    result = benchmark.pedantic(
        fault_sweep.run,
        kwargs={"rates": RATES, "d": 6, "trials": 2, "base_seed": 7},
        rounds=1,
        iterations=1,
    )
    report("Fault sweep: degradation curves", fault_sweep.format_rows(result))

    bc = result.curve("blitzcoin")
    bc_killed = result.curve("blitzcoin_killed")
    cent = result.curve("centralized")
    cent_killed = result.curve("centralized_killed")

    # Shape 1: BlitzCoin converges at every swept loss rate, even with
    # a tile killed mid-transient.
    assert all(p.converged_fraction == 1.0 for p in bc)
    assert all(p.converged_fraction == 1.0 for p in bc_killed)

    # Shape 2: graceful degradation — losing packets costs cycles
    # monotonically in rate, it does not cost convergence.
    assert bc[0].mean_cycles < bc[-1].mean_cycles

    # Shape 3: the killed tile's coins are detected and re-minted.
    assert all(p.mean_reconciled != 0.0 for p in bc_killed)

    # Shape 4: the centralized scheme still works on a lossy fabric
    # (bounded retries) but falls off a cliff when its controller dies:
    # no trial at any rate ever converges.
    assert all(p.converged_fraction == 1.0 for p in cent)
    assert cent[0].mean_cycles < cent[-1].mean_cycles
    # ...and the limping is visible: drops hit its polls/settings,
    # which it survives by retrying (mean_timeouts counts poll retries).
    assert cent[-1].mean_discarded > 0
    assert cent[-1].mean_timeouts > 0
    assert all(p.converged_fraction == 0.0 for p in cent_killed)
    assert all(p.mean_cycles == float("inf") for p in cent_killed)
