"""Streaming extension: sustained frame rate over a pipelined workload.

Unrolls the autonomous-vehicle pipeline into several concurrent frames
(software pipelining) and measures amortized per-frame latency under
each scheme.  Every frame boundary is a burst of activity changes, so
power-management response compounds with the frame count.
"""

from repro.experiments import streaming


def test_streaming_frame_rate(benchmark, report):
    result = benchmark.pedantic(
        streaming.run, kwargs={"frames": 4}, rounds=1, iterations=1
    )
    report("Streaming: 4-frame pipelined mini-ERA", streaming.format_rows(result))

    # BC sustains a clearly higher frame rate than C-RR...
    assert result.frame_speedup(vs="C-RR") > 1.15
    # ...and stays within 10% of the centralized proportional scheme on
    # this 6-accelerator SoC (BC-C's O(N) loop is still cheap at N=6;
    # bench_large_soc shows the gap inverting at N~60).
    assert result.frame_speedup(vs="BC-C") > 0.90
    # Response advantage holds throughout the stream.
    bc = result.cells["BC"].mean_response_us
    assert bc < result.cells["BC-C"].mean_response_us
    assert bc < result.cells["C-RR"].mean_response_us
