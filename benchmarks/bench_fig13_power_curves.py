"""Fig. 13: accelerator power/frequency characterization."""

import pytest

from repro.experiments import fig13_power_curves
from repro.power.characterization import get_curve


def test_fig13_power_curves(benchmark, report):
    result = benchmark(fig13_power_curves.run)
    report("Fig. 13: P/V/F characterization", fig13_power_curves.format_rows(result))

    # Shape: the published ranges.  ASIC-measured tiles span 0.5-1.0 V
    # (0.6-1.0 V for NVDLA); Joules-characterized tiles span 0.6-0.9 V.
    assert result.curves["FFT"].samples[0][0] == pytest.approx(0.5)
    assert result.curves["NVDLA"].samples[0][0] == pytest.approx(0.6)
    assert result.curves["GEMM"].samples[-1][0] == pytest.approx(0.9)

    # Power ordering at the top point: NVDLA > GEMM > Conv2D > Vision >
    # FFT > Viterbi, with a large overall spread.
    peaks = {n: c.p_range_mw[1] for n, c in result.curves.items()}
    assert (
        peaks["NVDLA"]
        > peaks["GEMM"]
        > peaks["Conv2D"]
        > peaks["Vision"]
        > peaks["FFT"]
        > peaks["Viterbi"]
    )
    assert result.dynamic_range() > 4.0

    # Idle scaling below minimum voltage: ~7.5x additional power saving
    # (Section V-A).
    for name in ("FFT", "NVDLA"):
        c = get_curve(name)
        p_min_point = c.power_mw(c.spec.v_min, c.f_max_at(c.spec.v_min))
        assert p_min_point / c.p_idle_mw == pytest.approx(7.5)
