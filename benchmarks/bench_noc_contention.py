"""Multi-plane NoC validation: background traffic vs coin exchange.

Section IV-B: coin messages ride Plane 5 (registers/interrupts) while
coherence and DMA have their own planes; a coin request "can be delayed
and arrive at a time where the tile has already given its coins away".
This bench injects heavy background traffic on the cycle-level NoC and
checks both halves of that design argument:

* traffic on the DMA planes does not slow coin convergence at all;
* the same traffic on Plane 5 does contend, yet the exchange still
  converges correctly (conservation and residual unaffected).
"""

import dataclasses

from repro.core.config import preferred_embodiment
from repro.core.engine import CoinExchangeEngine
from repro.noc.packet import MessageType, Packet, Plane
from repro.noc.router import CycleNoc
from repro.noc.topology import MeshTopology
from repro.sim.kernel import Simulator
from repro.sim.rng import rng_for


def run_case(background_plane, d=4, load_period=3):
    """Convergence under periodic all-to-neighbor background traffic."""
    topo = MeshTopology(d, d)
    sim = Simulator()
    noc = CycleNoc(sim, topo)
    n = topo.n_tiles
    config = dataclasses.replace(
        preferred_embodiment(), convergence_threshold=1.0
    )
    initial = [0] * n
    initial[0] = 8 * n
    engine = CoinExchangeEngine(
        sim, noc, config, [8] * n, initial, rng=rng_for(17)
    )

    rng = rng_for(18, d)
    state = {"on": background_plane is not None}

    def inject() -> None:
        if not state["on"]:
            return
        src = int(rng.integers(0, n))
        dst = int(rng.integers(0, n))
        if src != dst:
            noc.send(
                Packet(
                    src=src,
                    dst=dst,
                    msg_type=MessageType.DMA,
                    plane=background_plane,
                    size_flits=4,
                )
            )
        sim.schedule(load_period, inject)

    if background_plane is not None:
        sim.schedule(1, inject)
    engine.start()
    converged = engine.run_until_converged(400_000)
    state["on"] = False
    engine.check_conservation()
    return {
        "converged": converged,
        "error": engine.tracker.error,
        "packets": engine.coin_packets,
    }


def test_noc_contention(benchmark, report):
    def scenario():
        return {
            "quiet": run_case(None),
            "dma-plane load": run_case(Plane.DMA_TO_MEM),
            "plane-5 load": run_case(Plane.MMIO_IRQ),
        }

    results = benchmark.pedantic(scenario, rounds=1, iterations=1)
    rows = [
        f"{name:15s} converged at {r['converged']} cycles  "
        f"final_err={r['error']:.2f}"
        for name, r in results.items()
    ]
    report("Multi-plane contention (cycle-level NoC)", rows)

    quiet = results["quiet"]["converged"]
    dma = results["dma-plane load"]["converged"]
    p5 = results["plane-5 load"]["converged"]
    assert quiet is not None and dma is not None and p5 is not None
    # Different planes do not contend: DMA load leaves convergence
    # essentially untouched.
    assert abs(dma - quiet) <= 0.15 * quiet + 50
    # Plane-5 load shares links with coin messages: it may delay
    # convergence, but correctness (conservation, residual) holds.
    assert results["plane-5 load"]["error"] < 1.0
