"""Fig. 7: worst-case residual error with and without random pairing."""

from repro.experiments import fig07_random_pairing

DIMS = (10, 20)  # N = 100 and N = 400, as in the paper
TRIALS = 6


def test_fig07_random_pairing(benchmark, report):
    result = benchmark.pedantic(
        fig07_random_pairing.run,
        kwargs={"dims": DIMS, "trials": TRIALS, "settle_cycles": 100_000},
        rounds=1,
        iterations=1,
    )
    report(
        "Fig. 7: residual error histograms",
        fig07_random_pairing.format_rows(result),
    )

    for d in DIMS:
        with_rp = result.get(d, True)
        without_rp = result.get(d, False)
        # With random pairing every run lands within the one-coin
        # quantization band (Fig. 7, red histograms).
        assert with_rp.stuck_fraction == 0.0
        assert with_rp.max_error <= 1.5
        # Without it some tiles fail to converge, visibly worse than
        # the paired runs.
        assert without_rp.max_error > with_rp.max_error
    # The unpaired deviation grows with SoC size (blue histograms).
    assert (
        result.get(20, False).max_error > result.get(10, False).max_error
    )
