"""Fig. 21: extrapolation to SoCs with hundreds of accelerators.

Fits the scaling constants from this repository's own measured response
times (as Section VI-D fits from the N=6/7/13 measurements) and checks
the N_max and PM-overhead orderings.
"""

from repro.experiments import fig17_3x3_eval, fig20_response, fig21_scaling


def _measured_responses():
    """(N, response_us) samples from the SoC experiments."""
    f17 = fig17_3x3_eval.run()
    f20 = fig20_response.run()
    out = {"BC": [], "BC-C": [], "C-RR": []}
    for scheme in out:
        r17 = f17.get(scheme, "WL-Par", 120.0).mean_response_us
        if r17 > 0:
            out[scheme].append((6, r17))
        r20 = f20.measurements[scheme].response_us
        if r20:
            out[scheme].append((7, r20))
    return out


def test_fig21_scaling(benchmark, report):
    measured = _measured_responses()
    result = benchmark.pedantic(
        fig21_scaling.run,
        kwargs={"measured_responses": measured},
        rounds=1,
        iterations=1,
    )
    report("Fig. 21: large-SoC extrapolation", fig21_scaling.format_rows(result))

    # N_max ordering at every T_w: BC > TS > BC-C > C-RR > (roughly) PT.
    for i, t_w in enumerate(result.t_w_values_us):
        assert result.n_max["BC"][i] > result.n_max["TS"][i]
        assert result.n_max["TS"][i] > result.n_max["BC-C"][i]
        assert result.n_max["BC-C"][i] > result.n_max["C-RR"][i]
        # Paper: BC supports 5.7-13.3x more than BC-C/C-RR and 3.2-5.0x
        # more than hardware-scaled PT; require >2x with fitted taus.
        assert result.n_max_advantage(t_w, "C-RR") > 2.0
        assert result.n_max_advantage(t_w, "PT") > 1.5

    # PM-overhead ordering at N=100, T_w=10 ms (the worked example:
    # C-RR 96%, BC-C 66%, BC 2%).
    idx = result.n_values.index(100) if 100 in result.n_values else -1
    assert idx >= 0
    assert (
        result.pm_fraction["BC"][idx]
        < result.pm_fraction["TS"][idx]
        < result.pm_fraction["BC-C"][idx]
        < result.pm_fraction["C-RR"][idx]
    )
    assert result.pm_fraction["BC"][idx] < 0.25
