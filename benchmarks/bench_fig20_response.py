"""Fig. 20: response time after the NVDLA task completes."""

from repro.experiments import fig20_response


def test_fig20_response(benchmark, report):
    result = benchmark.pedantic(fig20_response.run, rounds=1, iterations=1)
    report("Fig. 20: NVDLA-end response", fig20_response.format_rows(result))

    bc = result.measurements["BC"].response_us
    bcc = result.measurements["BC-C"].response_us
    crr = result.measurements["C-RR"].response_us
    assert bc is not None and bcc is not None and crr is not None

    # Paper: BC 0.68 us; BC-C 2.1x and C-RR 22.5x slower.  Shape check:
    # BC in the low-microsecond regime, both centralized schemes
    # substantially slower, C-RR the slowest.
    assert bc < 3.0
    assert result.ratio("BC-C") > 1.5
    assert result.ratio("C-RR") > 3.0
    # BC-C and C-RR are the same O(N) loop with different policies;
    # their responses are of the same order (Table I's 3.7-8.0 us band).
    assert 0.5 < crr / bcc < 3.0
