"""Fig. 9 ablation: UVFR vs a conventional dual-loop actuator.

The paper's motivation for UVFR: conventional separate voltage and
frequency loops need a droop guard-band (higher voltage for the same
frequency => more power) and a sequenced voltage-settle-then-relock
transition.  This bench quantifies both penalties across the frequency
range of every accelerator class.
"""

from repro.dvfs.actuator import ConventionalDualLoop, TileActuator
from repro.power.characterization import ACCELERATOR_CATALOG, get_curve
from repro.sim.kernel import Simulator


def sweep():
    rows = {}
    for name in sorted(ACCELERATOR_CATALOG):
        curve = get_curve(name)
        conv = ConventionalDualLoop(curve)
        sim = Simulator()
        uvfr = TileActuator(sim, curve)
        overheads = [
            conv.overhead_vs_uvfr(curve.spec.f_max_hz * frac)
            for frac in (0.4, 0.6, 0.8)
        ]
        rows[name] = {
            "mean_power_overhead": sum(overheads) / len(overheads),
            "uvfr_settle": uvfr.settle_cycles,
            "conventional_settle": conv.settle_cycles(),
        }
    return rows


def test_uvfr_vs_conventional(benchmark, report):
    rows = benchmark(sweep)
    lines = [
        f"{name:8s} guard-band power overhead: "
        f"{r['mean_power_overhead'] * 100:5.1f}%   settle: UVFR "
        f"{r['uvfr_settle']:4d} cy vs conventional "
        f"{r['conventional_settle']:4d} cy"
        for name, r in rows.items()
    ]
    report("Fig. 9 ablation: UVFR vs conventional actuation", lines)

    for name, r in rows.items():
        # The guard-band costs real power at mid-range operating points...
        assert r["mean_power_overhead"] > 0.03, name
        # ...and the sequenced transition is slower than UVFR's.
        assert r["conventional_settle"] > r["uvfr_settle"], name
