"""Fig. 16: power traces on the 3x3 SoC (WL-Par and WL-Dep)."""

from repro.experiments import fig16_power_traces


def test_fig16_power_traces(benchmark, report):
    result = benchmark.pedantic(
        fig16_power_traces.run, rounds=1, iterations=1
    )
    report("Fig. 16: 3x3 power traces", fig16_power_traces.format_rows(result))

    for (scheme, mode), trace in result.traces.items():
        # Every scheme enforces the power cap.
        assert trace.cap_respected, (scheme, mode)
        # The trace actually exercises the budget (not everyone idles).
        assert trace.power_mw.max() > 0.5 * trace.budget_mw

    # BlitzCoin and BC-C utilize the budget better than C-RR in WL-Par
    # (C-RR wastes headroom through its discrete max/min levels).
    for mode in ("WL-Par",):
        bc = result.get("BC", mode).result.average_power_mw()
        crr = result.get("C-RR", mode).result.average_power_mw()
        assert bc > crr

    # BlitzCoin's runtime is the shortest or tied in both dataflows
    # (WL-Dep's serial single-task phases are the centralized schemes'
    # best case — a one-shot reallocation moves the whole pool — so BC
    # is allowed parity there rather than a win).
    for mode in ("WL-Par", "WL-Dep"):
        bc = result.get("BC", mode).makespan_us
        for other in ("BC-C", "C-RR"):
            assert bc <= result.get(other, mode).makespan_us * 1.05
