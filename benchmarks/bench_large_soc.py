"""Mid-scale SoC simulation: the trend Fig. 21 extrapolates, simulated.

The paper simulates N = 6 and N = 13 and extrapolates to hundreds of
accelerators analytically.  Here we *simulate* a synthetic 8x8 SoC
(61 managed accelerators) end-to-end under BC, BC-C and C-RR and check
that the small-SoC trends hold — and strengthen — at 5x the evaluated
scale: BC's response advantage grows with N while its throughput lead
persists and the cap still holds.
"""

from repro.soc.executor import WorkloadExecutor
from repro.soc.pm import PMKind, build_pm
from repro.soc.soc import Soc
from repro.soc.synthetic import (
    suggested_budget_mw,
    synthetic_soc,
    synthetic_workload,
)

SCHEMES = (PMKind.BLITZCOIN, PMKind.BLITZCOIN_CENTRAL, PMKind.ROUND_ROBIN)


def run_all():
    config = synthetic_soc(8, seed=42)
    budget = suggested_budget_mw(config, 0.30)
    out = {"n": len(config.managed_accelerators()), "budget": budget}
    for kind in SCHEMES:
        soc = Soc(config)
        pm = build_pm(kind, soc, budget)
        graph = synthetic_workload(config, seed=42)
        out[kind.value] = WorkloadExecutor(soc, graph, pm).run()
    return out


def test_large_synthetic_soc(benchmark, report):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    n, budget = results["n"], results["budget"]
    rows = [f"synthetic 8x8 SoC: N={n} accelerators, budget={budget:.0f} mW"]
    for kind in SCHEMES:
        r = results[kind.value]
        rows.append(
            f"  {kind.value:5s} makespan={r.makespan_us:9.1f} us  "
            f"resp={r.mean_response_us:7.2f} us  "
            f"peak={r.peak_power_mw():7.1f} mW  "
            f"avg={r.average_power_mw():7.1f} mW"
        )
    report("Mid-scale SoC (N~60) end-to-end", rows)

    bc = results["BC"]
    bcc = results["BC-C"]
    crr = results["C-RR"]
    # Cap holds for everyone at this scale.
    for r in (bc, bcc, crr):
        assert r.peak_power_mw() <= 1.10 * budget
    # The centralized O(N) loop is now ~10x slower to respond; BC's
    # advantage *grows* with N, as the scaling model predicts.
    assert bc.mean_response_us < bcc.mean_response_us / 3
    assert bc.mean_response_us < crr.mean_response_us / 3
    # Throughput: BC at least matches BC-C and beats C-RR.
    assert bc.makespan_us <= bcc.makespan_us * 1.05
    assert bc.makespan_us < crr.makespan_us
