"""Fig. 4: BlitzCoin vs TokenSmart convergence-time distributions."""

from repro.experiments import fig04_tokensmart

DIMS = (4, 8, 12, 16)
TRIALS = 6


def test_fig04_bc_vs_tokensmart(benchmark, report):
    result = benchmark.pedantic(
        fig04_tokensmart.run,
        kwargs={"dims": DIMS, "trials": TRIALS},
        rounds=1,
        iterations=1,
    )
    report(
        "Fig. 4: BC vs TS convergence distribution",
        fig04_tokensmart.format_rows(result),
    )

    # BC wins at every size, and the advantage grows with N (the paper
    # reaches ~11x at N=400; we check a widening >2x trend by d=16).
    speedups = [result.speedup_at(d) for d in DIMS]
    assert all(s > 1.0 for s in speedups[1:])
    assert speedups[-1] > 2.0
    assert speedups[-1] > speedups[0]

    # TS's sequential ring gives it the heavier upper tail at scale.
    bc = next(p for p in result.points["BC"] if p.d == DIMS[-1])
    ts = next(p for p in result.points["TS"] if p.d == DIMS[-1])
    assert ts.p95 > bc.p95
