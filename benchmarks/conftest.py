"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures: it
runs the corresponding experiment driver (with reduced trial counts so
the suite stays minutes, not hours), prints the same rows/series the
paper reports, and asserts the expected *shape* — who wins, by roughly
what factor, where crossovers fall.  Absolute numbers differ from the
paper (behavioral simulator vs. 12 nm silicon); EXPERIMENTS.md records
the paper-vs-measured comparison.
"""

import pytest


def emit(title, rows):
    """Print a figure's rows under a banner (shown with `pytest -s`)."""
    print(f"\n=== {title} ===")
    for row in rows:
        print(row)


@pytest.fixture
def report():
    return emit
