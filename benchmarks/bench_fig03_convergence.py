"""Fig. 3: packets and cycles to convergence, 1-way vs 4-way."""

from repro.experiments import fig03_convergence

DIMS = (4, 8, 12, 16)
TRIALS = 5


def test_fig03_convergence(benchmark, report):
    result = benchmark.pedantic(
        fig03_convergence.run,
        kwargs={"dims": DIMS, "trials": TRIALS},
        rounds=1,
        iterations=1,
    )
    report(
        "Fig. 3: 1-way vs 4-way convergence",
        fig03_convergence.format_rows(result),
    )

    one = result.curve("1-way")
    four = result.curve("4-way")

    # Every point converged.
    for p in one + four:
        assert p.converged_fraction == 1.0

    # Time grows with SoC size for both techniques but sub-linearly in
    # N: growing N by 16x (d=4 -> 16) costs far less than 16x in time.
    for pts in (one, four):
        assert pts[-1].mean_cycles > pts[0].mean_cycles
        assert pts[-1].mean_cycles < 16 * pts[0].mean_cycles

    # 4-way needs fewer exchanges (it converges at least comparably
    # fast) but spends more messages per exchange; the paper's headline
    # is comparable convergence with higher 4-way message complexity.
    for p1, p4 in zip(one, four):
        assert p4.mean_cycles < 2.5 * p1.mean_cycles
