"""Fig. 3: packets and cycles to convergence, 1-way vs 4-way.

Runs under pytest-benchmark (``pytest benchmarks/``) and standalone
(``python benchmarks/bench_fig03_convergence.py``); the standalone
entrypoint goes through the :mod:`repro.perf` harness, so the same
declaration feeds the ``BENCH_*.json`` trajectory artifacts.
"""

from repro.experiments import fig03_convergence
from repro.perf import register

DIMS = (4, 8, 12, 16)
TRIALS = 5


@register(
    "fig03.full",
    params={"dims": DIMS, "trials": TRIALS},
    suites=("full",),
    counters=("engine.exchanges_initiated", "campaign.units_executed"),
    profile=True,
    description="The full Fig. 3 sweep (1-way vs 4-way, d up to 16).",
)
def run_fig03(dims, trials):
    result = fig03_convergence.run(tuple(dims), trials)
    metrics = {}
    for technique in ("1-way", "4-way"):
        pts = result.curve(technique)
        key = technique.replace("-", "")
        metrics[f"cycles_{key}"] = sum(p.mean_cycles for p in pts)
        metrics[f"packets_{key}"] = sum(p.mean_packets for p in pts)
    return metrics


def test_fig03_convergence(benchmark, report):
    result = benchmark.pedantic(
        fig03_convergence.run,
        kwargs={"dims": DIMS, "trials": TRIALS},
        rounds=1,
        iterations=1,
    )
    report(
        "Fig. 3: 1-way vs 4-way convergence",
        fig03_convergence.format_rows(result),
    )

    one = result.curve("1-way")
    four = result.curve("4-way")

    # Every point converged.
    for p in one + four:
        assert p.converged_fraction == 1.0

    # Time grows with SoC size for both techniques but sub-linearly in
    # N: growing N by 16x (d=4 -> 16) costs far less than 16x in time.
    for pts in (one, four):
        assert pts[-1].mean_cycles > pts[0].mean_cycles
        assert pts[-1].mean_cycles < 16 * pts[0].mean_cycles

    # 4-way needs fewer exchanges (it converges at least comparably
    # fast) but spends more messages per exchange; the paper's headline
    # is comparable convergence with higher 4-way message complexity.
    for p1, p4 in zip(one, four):
        assert p4.mean_cycles < 2.5 * p1.mean_cycles


def main() -> int:
    from repro.perf import REGISTRY, run_benchmark

    result = run_benchmark(REGISTRY.get("fig03.full"), reps=1, warmup=0)
    print(
        f"fig03.full  {min(result.per_rep_s) * 1000:.1f} ms  "
        f"metrics={result.metrics}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
