"""Section VI-A ablation: Relative vs Absolute Proportional allocation.

The paper reports a consistent 3.0-4.1% throughput gain for RP over AP
at 60-120 mW budgets, attributed to tiles running at more efficient
(V, F) points; the rest of the evaluation then uses RP.
"""

import statistics

from repro.experiments import fig17_3x3_eval

BUDGETS = (60.0, 90.0, 120.0)


def test_ap_vs_rp_allocation(benchmark, report):
    result = benchmark.pedantic(
        fig17_3x3_eval.run_ap_vs_rp,
        kwargs={"budgets": BUDGETS},
        rounds=1,
        iterations=1,
    )
    rows = [
        f"budget={b:5.0f} mW  AP={result.makespans_us[('AP', b)]:9.1f} us  "
        f"RP={result.makespans_us[('RP', b)]:9.1f} us  "
        f"RP gain={result.rp_gain_percent(b):+5.1f}%"
        for b in BUDGETS
    ]
    report("Sec VI-A: AP vs RP allocation", rows)

    # Shape: RP wins on average across budgets.  (The paper's 3-4% is
    # an average over steady workloads; individual budget points in the
    # behavioral model are noisier.)
    mean_gain = statistics.mean(result.rp_gain_percent(b) for b in BUDGETS)
    assert mean_gain > 0.0
