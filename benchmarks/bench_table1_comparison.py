"""Table I: implemented-strategy comparison rows."""

from repro.experiments import fig18_4x4_eval, table1


def test_table1_comparison(benchmark, report):
    f18 = fig18_4x4_eval.run()
    result = benchmark.pedantic(
        table1.run, args=(f18,), rounds=1, iterations=1
    )
    report("Table I: strategy comparison", table1.format_rows(result))

    rows = result.rows
    # Structure: 64 DVFS levels for the coin-based schemes (6-bit
    # counters), decentralized control only for BC and TS.
    assert rows["BC"].dvfs_levels == 64
    assert rows["BC"].control == "Decentralized"
    assert rows["BC-C"].control == "Centralized"
    assert rows["C-RR"].control == "Centralized"
    assert rows["TS"].control == "Decentralized"
    assert all(r.power_cap for r in rows.values())

    # Scaling classes match the paper's table.
    assert rows["BC"].scaling == "O(sqrt(N))"
    assert rows["BC-C"].scaling == "O(N)"
    assert rows["TS"].scaling == "O(N)"

    # Measured responses at N=13: BC fastest in the parallel regime
    # (the table's 0.39-0.77 us row vs 3.7-8.0 us for centralized).
    bc_par = f18.get("BC", "WL-Par", 450.0).mean_response_us
    for scheme in ("BC-C", "C-RR"):
        assert bc_par < f18.get(scheme, "WL-Par", 450.0).mean_response_us
