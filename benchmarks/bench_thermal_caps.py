"""Section III-A/III-B ablation: thermal (hotspot) coin caps.

BlitzCoin can bound any tile's allocation with a hard per-tile coin cap;
coins rejected by a capped tile stay with its neighbors, so the global
budget is preserved while the hotspot is held below its ceiling.
"""

import dataclasses

from repro.core.config import preferred_embodiment
from repro.core.engine import CoinExchangeEngine
from repro.noc.behavioral import BehavioralNoc
from repro.noc.topology import MeshTopology
from repro.sim.kernel import Simulator


def run_capped(cap: int, d: int = 4, horizon: int = 120_000):
    """One hungry center tile under a thermal cap; returns holdings."""
    topo = MeshTopology(d, d)
    sim = Simulator()
    noc = BehavioralNoc(sim, topo)
    n = topo.n_tiles
    center = topo.center_tile()
    max_vec = [4] * n
    max_vec[center] = 64  # the hotspot wants far more than its cap
    config = dataclasses.replace(
        preferred_embodiment(),
        thermal_caps={t: (cap if t == center else 63) for t in range(n)},
    )
    engine = CoinExchangeEngine(
        sim, noc, config, max_vec, [8] * n
    )
    engine.start()
    sim.run(until=horizon)
    engine.check_conservation()
    return engine, center


def test_thermal_caps(benchmark, report):
    def scenario():
        return {cap: run_capped(cap) for cap in (12, 24, 63)}

    results = benchmark.pedantic(scenario, rounds=1, iterations=1)
    rows = []
    for cap, (engine, center) in results.items():
        held = engine.coins(center).has
        rows.append(f"cap={cap:3d} coins  hotspot holds {held:3d}")
    report("Thermal-cap ablation (hotspot tile)", rows)

    # The hotspot is held at/below its cap, and tighter caps hold fewer
    # coins; the uncapped-equivalent (63) attracts the most.
    holdings = {
        cap: engine.coins(center).has
        for cap, (engine, center) in results.items()
    }
    for cap, held in holdings.items():
        assert held <= cap
    assert holdings[12] <= holdings[24] <= holdings[63]
    assert holdings[63] > 20  # the hungry tile does attract coins
