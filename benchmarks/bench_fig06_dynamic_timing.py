"""Fig. 6: dynamic timing vs plain 1-way exchange."""

from repro.experiments import fig06_dynamic_timing

DIMS = (4, 8, 12)
TRIALS = 4


def test_fig06_dynamic_timing(benchmark, report):
    result = benchmark.pedantic(
        fig06_dynamic_timing.run,
        kwargs={"dims": DIMS, "trials": TRIALS},
        rounds=1,
        iterations=1,
    )
    report(
        "Fig. 6: dynamic timing benefit",
        fig06_dynamic_timing.format_rows(result),
    )

    # Back-off suppresses the chatter of converged regions: clearly
    # fewer packets over a workload phase at every SoC size.
    for d in DIMS:
        assert result.packet_reduction_at(d) > 1.25

    # ...without giving up convergence speed beyond a modest factor.
    for d in DIMS:
        plain = next(p for p in result.points["plain"] if p.d == d)
        dyn = next(p for p in result.points["dynamic"] if p.d == d)
        assert dyn.mean_cycles <= plain.mean_cycles * 1.6
