#!/usr/bin/env python3
"""Regenerate the artifact-style CSV outputs for every experiment.

Mirrors the paper artifact's workflow ("CSV data with post-processing
scripts for figure generation"): runs each experiment driver and writes
one CSV per series plus a JSON manifest under ``results/``.

Run:  python scripts/export_results.py [--out results] [--quick]

``--quick`` shrinks trial counts so a full export finishes in a couple
of minutes; drop it for benchmark-fidelity data.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import (  # noqa: E402
    fig01_scalability,
    fig03_convergence,
    fig04_tokensmart,
    fig13_power_curves,
    fig16_power_traces,
    fig17_3x3_eval,
    fig21_scaling,
)
from repro.report.csv_export import (  # noqa: E402
    export_figure,
    export_rows,
    export_soc_run,
    fig03_series,
    fig04_series,
)


def export_fig01(out: Path) -> None:
    r = fig01_scalability.run()
    series = {
        name: [
            {"n": n, "response_us": t}
            for n, t in zip(r.n_values, r.response_us[name])
        ]
        for name in r.response_us
    }
    for t_w, values in r.interval_us.items():
        series[f"interval_Tw_{int(t_w)}us"] = [
            {"n": n, "interval_us": v}
            for n, v in zip(r.n_values, values)
        ]
    export_figure(out, "fig01", series, description="response-time scalability")


def export_fig03(out: Path, quick: bool) -> None:
    r = fig03_convergence.run(
        dims=(4, 8, 12) if quick else fig03_convergence.DEFAULT_DIMS,
        trials=3 if quick else 10,
    )
    export_figure(
        out, "fig03", fig03_series(r), description="1-way vs 4-way convergence"
    )


def export_fig04(out: Path, quick: bool) -> None:
    r = fig04_tokensmart.run(
        dims=(4, 8, 12) if quick else fig04_tokensmart.DEFAULT_DIMS,
        trials=3 if quick else 10,
    )
    export_figure(
        out, "fig04", fig04_series(r), description="BC vs TokenSmart"
    )


def export_fig13(out: Path) -> None:
    r = fig13_power_curves.run(n_points=21)
    series = {
        name: [
            {"v": v, "f_mhz": f / 1e6, "p_mw": p}
            for v, f, p in curve.samples
        ]
        for name, curve in r.curves.items()
    }
    export_figure(out, "fig13", series, description="P/V/F characterization")


def export_fig16(out: Path) -> None:
    r = fig16_power_traces.run()
    for (scheme, mode), trace in r.traces.items():
        export_soc_run(
            out / "fig16", trace.result, tag=f"{scheme}_{mode}".replace("-", "")
        )


def export_fig17(out: Path) -> None:
    r = fig17_3x3_eval.run()
    rows = [
        {
            "scheme": c.scheme,
            "mode": c.mode,
            "budget_mw": c.budget_mw,
            "makespan_us": c.makespan_us,
            "response_us": c.mean_response_us,
        }
        for c in r.cells.values()
    ]
    export_rows(out / "fig17_summary.csv", rows)


def export_fig21(out: Path) -> None:
    r = fig21_scaling.run()
    series = {
        scheme: [
            {"t_w_us": t_w, "n_max": r.n_max[scheme][i]}
            for i, t_w in enumerate(r.t_w_values_us)
        ]
        for scheme in r.n_max
    }
    series["PT"] = [
        {"t_w_us": t_w, "n_max": r.pt_n_max[i]}
        for i, t_w in enumerate(r.t_w_values_us)
    ]
    export_figure(out, "fig21", series, description="large-SoC extrapolation")


EXPORTERS = {
    "fig01": lambda out, quick: export_fig01(out),
    "fig03": export_fig03,
    "fig04": export_fig04,
    "fig13": lambda out, quick: export_fig13(out),
    "fig16": lambda out, quick: export_fig16(out),
    "fig17": lambda out, quick: export_fig17(out),
    "fig21": lambda out, quick: export_fig21(out),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="results", type=Path)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument(
        "--only",
        nargs="*",
        choices=sorted(EXPORTERS),
        help="export only these figures",
    )
    args = parser.parse_args(argv)
    targets = args.only or sorted(EXPORTERS)
    args.out.mkdir(parents=True, exist_ok=True)
    for name in targets:
        t0 = time.time()
        EXPORTERS[name](args.out, args.quick)
        print(f"exported {name} in {time.time() - t0:.1f}s -> {args.out}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
