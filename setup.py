"""Legacy setup shim.

The execution environment has no `wheel` package and no network access,
so PEP-517 editable installs (which require bdist_wheel) fail.  This
shim lets `pip install -e . --no-use-pep517 --no-build-isolation` use
the classic `setup.py develop` path.  All metadata lives in
pyproject.toml; values here mirror it for the legacy path only.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Behavioral reproduction of BlitzCoin: fully decentralized hardware "
        "power management for accelerator-rich SoCs (ISCA 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.20"],
    entry_points={
        "console_scripts": ["blitzcoin-repro = repro.cli:main"],
    },
)
