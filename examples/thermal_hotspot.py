#!/usr/bin/env python3
"""Hotspot governance demo: BlitzCoin + RC thermal model in the loop.

Runs the autonomous-vehicle workload twice — once unconstrained, once
with a thermal governor that writes per-tile coin caps when the RC
model predicts a tile crossing its temperature limit (the coin-
rejection hotspot mechanism of Section III-A) — and compares peak
temperature, throughput, and the cap event log.

Run:  python examples/thermal_hotspot.py
"""

from repro.soc import Soc, WorkloadExecutor, soc_3x3
from repro.soc.pm import BlitzCoinPM
from repro.thermal import ThermalGovernor, simulate_run_thermals
from repro.workloads import autonomous_vehicle_parallel


def run_case(limit_c: float):
    soc = Soc(soc_3x3())
    pm = BlitzCoinPM(soc, 120.0)
    governor = ThermalGovernor(
        soc,
        pm,
        limit_c=limit_c,
        hysteresis_c=5.0,
        sample_cycles=2_000,
        capped_coins=8,
    )
    executor = WorkloadExecutor(soc, autonomous_vehicle_parallel(), pm)
    governor.start()
    result = executor.run()
    return soc, result, governor


def main() -> None:
    print("Unconstrained run (thermal model observing only):")
    soc, free, gov_free = run_case(limit_c=500.0)
    analysis = simulate_run_thermals(free, soc.topology)
    hottest = int(analysis["peak_by_tile_c"].argmax())
    print(f"  makespan {free.makespan_us:8.1f} us")
    print(f"  peak temperature {gov_free.peak_temperature_c:5.1f} C "
          f"(hottest tile: {hottest}, "
          f"class {soc.config.class_of(hottest)})")

    print("\nGoverned run (limit 52 C, cap at 8 coins while hot):")
    soc2, governed, gov = run_case(limit_c=52.0)
    print(f"  makespan {governed.makespan_us:8.1f} us "
          f"({(governed.makespan_us / free.makespan_us - 1) * 100:+.1f}%)")
    print(f"  peak temperature {gov.peak_temperature_c:5.1f} C "
          f"({gov.peak_temperature_c - gov_free.peak_temperature_c:+.1f} C)")
    print(f"  cap events: {gov.cap_events}")
    print("\nGovernor event log:")
    for cycle, tile, action in gov.events[:12]:
        print(
            f"  t={cycle * 1.25e-3:8.1f} us  tile {tile} "
            f"({soc2.config.class_of(tile):7s}) {action}"
        )
    if len(gov.events) > 12:
        print(f"  ... and {len(gov.events) - 12} more")
    print("\nCoins rejected by a capped tile stay in circulation, so the")
    print("SoC budget cap holds throughout "
          f"(peak power {governed.peak_power_mw():.1f} mW of "
          f"{governed.budget_mw:.0f} mW).")


if __name__ == "__main__":
    main()
