#!/usr/bin/env python3
"""Regenerate every paper figure's rows in one run.

The one-stop reproduction driver: runs each experiment module (at
reduced trial counts with ``--quick``) and prints the rows the paper
reports, in order.  For CSV outputs use ``scripts/export_results.py``;
for the shape assertions run the benchmark harness.

Run:  python examples/paper_figures.py [--quick] [--only fig17 fig20 ...]
"""

import argparse
import sys
import time

import repro.experiments as E

CHEAP = {
    "fig01": lambda q: E.fig01_scalability.run(),
    "fig13": lambda q: E.fig13_power_curves.run(),
    "fig21": lambda q: E.fig21_scaling.run(),
}

MONTE_CARLO = {
    "fig03": lambda q: E.fig03_convergence.run(
        dims=(4, 8, 12) if q else E.fig03_convergence.DEFAULT_DIMS,
        trials=3 if q else 10,
    ),
    "fig04": lambda q: E.fig04_tokensmart.run(
        dims=(4, 8, 12) if q else E.fig04_tokensmart.DEFAULT_DIMS,
        trials=3 if q else 10,
    ),
    "fig06": lambda q: E.fig06_dynamic_timing.run(
        dims=(4, 8) if q else E.fig06_dynamic_timing.DEFAULT_DIMS,
        trials=3 if q else 5,
    ),
    "fig07": lambda q: E.fig07_random_pairing.run(
        dims=(10,) if q else (10, 20),
        trials=4 if q else 8,
        settle_cycles=80_000 if q else 150_000,
    ),
    "fig08": lambda q: E.fig08_heterogeneity.run(
        dims=(4, 8) if q else E.fig08_heterogeneity.DEFAULT_DIMS,
        trials=3 if q else 8,
    ),
}

SOC_LEVEL = {
    "fig16": lambda q: E.fig16_power_traces.run(),
    "fig17": lambda q: E.fig17_3x3_eval.run(),
    "fig18": lambda q: E.fig18_4x4_eval.run(),
    "fig19": lambda q: E.fig19_silicon.run(),
    "fig20": lambda q: E.fig20_response.run(),
    "streaming": lambda q: E.streaming.run(frames=3 if q else 4),
}

ALL = {**CHEAP, **MONTE_CARLO, **SOC_LEVEL}

FORMATTERS = {
    "fig01": E.fig01_scalability.format_rows,
    "fig03": E.fig03_convergence.format_rows,
    "fig04": E.fig04_tokensmart.format_rows,
    "fig06": E.fig06_dynamic_timing.format_rows,
    "fig07": E.fig07_random_pairing.format_rows,
    "fig08": E.fig08_heterogeneity.format_rows,
    "fig13": E.fig13_power_curves.format_rows,
    "fig16": E.fig16_power_traces.format_rows,
    "fig17": E.fig17_3x3_eval.format_rows,
    "fig18": E.fig18_4x4_eval.format_rows,
    "fig19": E.fig19_silicon.format_rows,
    "fig20": E.fig20_response.format_rows,
    "fig21": E.fig21_scaling.format_rows,
    "streaming": E.streaming.format_rows,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--only", nargs="*", choices=sorted(ALL))
    args = parser.parse_args(argv)
    targets = args.only or sorted(ALL)
    grand_start = time.time()
    for name in targets:
        t0 = time.time()
        result = ALL[name](args.quick)
        print(f"\n==== {name} ({time.time() - t0:.1f}s) ====")
        for row in FORMATTERS[name](result):
            print(row)
    print(f"\nTotal: {time.time() - grand_start:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
