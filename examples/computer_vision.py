#!/usr/bin/env python3
"""Computer-vision workload on the 4x4 SoC with a budget sweep.

The Section VI-B experiment extended into a small study: how the
makespan of the 13-accelerator vision pipeline scales with the power
budget under each management scheme, plus the AP-vs-RP allocation
comparison of Section VI-A on this SoC.

Run:  python examples/computer_vision.py
"""

from repro.power import AllocationStrategy
from repro.soc import PMKind, Soc, WorkloadExecutor, build_pm, soc_4x4
from repro.workloads import (
    computer_vision_dependent,
    computer_vision_parallel,
)

BUDGETS_MW = (300.0, 450.0, 675.0, 900.0)
SCHEMES = (PMKind.BLITZCOIN, PMKind.BLITZCOIN_CENTRAL, PMKind.ROUND_ROBIN)


def run_one(kind, budget, graph, strategy=None):
    soc = Soc(soc_4x4())
    if strategy is None:
        pm = build_pm(kind, soc, budget)
    else:
        pm = build_pm(kind, soc, budget, strategy=strategy)
    return WorkloadExecutor(soc, graph, pm).run()


def budget_sweep() -> None:
    print("Budget sweep, WL-Par (13 concurrent accelerators):\n")
    header = f"{'budget':>8s}" + "".join(f"{k.value:>12s}" for k in SCHEMES)
    print(header)
    for budget in BUDGETS_MW:
        cells = []
        for kind in SCHEMES:
            r = run_one(kind, budget, computer_vision_parallel())
            cells.append(f"{r.makespan_us:10.1f}us")
        print(f"{budget:6.0f}mW" + "".join(f"{c:>12s}" for c in cells))
    print()


def dependent_pipeline() -> None:
    print("WL-Dep (four camera streams through Vision->Conv2D->GEMM):\n")
    for kind in SCHEMES:
        r = run_one(kind, 450.0, computer_vision_dependent())
        print(
            f"  {kind.value:6s} makespan={r.makespan_us:9.1f} us  "
            f"response={r.mean_response_us:6.2f} us  "
            f"avg={r.average_power_mw():6.1f} mW"
        )
    print()


def ap_vs_rp() -> None:
    print("Allocation strategies under BlitzCoin (WL-Par @ 450 mW):\n")
    for name, strategy in (
        ("Absolute Proportional (AP)", AllocationStrategy.ABSOLUTE_PROPORTIONAL),
        ("Relative Proportional (RP)", AllocationStrategy.RELATIVE_PROPORTIONAL),
    ):
        r = run_one(
            PMKind.BLITZCOIN,
            450.0,
            computer_vision_parallel(),
            strategy=strategy,
        )
        print(f"  {name}: {r.makespan_us:9.1f} us")
    print()


def main() -> None:
    budget_sweep()
    dependent_pipeline()
    ap_vs_rp()


if __name__ == "__main__":
    main()
