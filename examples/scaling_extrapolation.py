#!/usr/bin/env python3
"""Extrapolate measured response times to SoCs with hundreds of tiles.

The Section V-E / VI-D workflow: measure response times on the small
SoCs, fit the tau scaling constants of Equations 5.1-5.3, and predict
N_max(T_w) and the PM time overhead for each management scheme —
including the TokenSmart and price-theory comparisons of Fig. 21.

Run:  python examples/scaling_extrapolation.py
"""

from repro.baselines.pricetheory import PriceTheoryModel
from repro.experiments.soc_runs import run_soc_workload
from repro.scaling import ResponseScalingModel, fit_tau_us
from repro.soc import PMKind, soc_3x3, soc_6x6_chip
from repro.workloads import autonomous_vehicle_parallel
from repro.workloads.apps import pm_cluster_workload


def measure() -> dict:
    """Response-time samples (N, us) from the simulated SoCs."""
    samples = {"BC": [], "BC-C": [], "C-RR": []}
    for kind in (PMKind.BLITZCOIN, PMKind.BLITZCOIN_CENTRAL, PMKind.ROUND_ROBIN):
        r = run_soc_workload(
            soc_3x3(), autonomous_vehicle_parallel(), kind, 120.0
        )
        if r.mean_response_us > 0:
            samples[kind.value].append((6, r.mean_response_us))
        r = run_soc_workload(
            soc_6x6_chip(), pm_cluster_workload(7), kind, 180.0
        )
        if r.mean_response_us > 0:
            samples[kind.value].append((7, r.mean_response_us))
    return samples


def main() -> None:
    print("Measuring response times on the 3x3 SoC and the 6x6 PM cluster...")
    samples = measure()
    exponents = {"BC": 0.5, "BC-C": 1.0, "C-RR": 1.0}
    models = {}
    print("\nFitted scaling constants (Equations 5.1-5.3):")
    for scheme, pts in samples.items():
        tau = fit_tau_us(pts, exponents[scheme])
        models[scheme] = ResponseScalingModel(scheme, tau, exponents[scheme])
        pts_str = ", ".join(f"N={n}: {t:.2f}us" for n, t in pts)
        print(f"  {scheme:5s} tau = {tau:6.3f} us  (from {pts_str})")
    models["TS"] = ResponseScalingModel.from_paper("TS")
    pt = PriceTheoryModel()

    print("\nMaximum supported SoC size N_max(T_w):")
    header = f"{'T_w':>9s}" + "".join(
        f"{s:>9s}" for s in ("BC", "BC-C", "C-RR", "TS", "PT")
    )
    print(header)
    for t_w_us in (200.0, 1_000.0, 7_000.0, 20_000.0):
        row = [f"{t_w_us / 1000:7.1f}ms"]
        for scheme in ("BC", "BC-C", "C-RR", "TS"):
            row.append(f"{models[scheme].n_max(t_w_us):9.0f}")
        row.append(f"{pt.n_max(t_w_us / 1e6):9.0f}")
        print("".join(row))

    print("\nTime spent in power management (T_w = 10 ms):")
    print(f"{'N':>6s}" + "".join(f"{s:>9s}" for s in ("BC", "BC-C", "C-RR")))
    for n in (10, 50, 100, 400, 1000):
        row = [f"{n:>6d}"]
        for scheme in ("BC", "BC-C", "C-RR"):
            frac = models[scheme].pm_time_fraction(n, 10_000.0)
            row.append(f"{frac * 100:8.1f}%")
        print("".join(row))
    print("\nValues above 100% mean the scheme cannot keep up (N > N_max).")


if __name__ == "__main__":
    main()
