#!/usr/bin/env python3
"""Connected-autonomous-vehicle workload: BC vs BC-C vs C-RR vs static.

Reproduces the Section VI-A experiment interactively: the mini-ERA
workload (radar FFTs, NVDLA object detection, Viterbi V2V decoding) on
the 3x3 SoC, in both dataflow modes, under four power managers — then
prints an ASCII power trace of the BlitzCoin run, showing the budget cap
and the reallocation edge when the NVDLA finishes.

Run:  python examples/autonomous_vehicle.py
"""

from repro.soc import PMKind, Soc, WorkloadExecutor, build_pm, soc_3x3
from repro.workloads import (
    autonomous_vehicle_dependent,
    autonomous_vehicle_parallel,
)

SCHEMES = (
    PMKind.BLITZCOIN,
    PMKind.BLITZCOIN_CENTRAL,
    PMKind.ROUND_ROBIN,
    PMKind.STATIC,
)
CASES = (
    ("WL-Par", autonomous_vehicle_parallel, 120.0),
    ("WL-Dep", autonomous_vehicle_dependent, 60.0),
)


def ascii_trace(result, width: int = 72, height: int = 12) -> str:
    """Render the total managed power trace as ASCII art."""
    times, power = result.power_series(width)
    top = max(result.budget_mw, power.max()) * 1.05
    rows = []
    for level in range(height, 0, -1):
        threshold = top * level / height
        line = "".join("#" if p >= threshold else " " for p in power)
        marker = "<cap" if abs(threshold - result.budget_mw) < top / height else ""
        rows.append(f"{threshold:7.1f} |{line}| {marker}")
    rows.append(" " * 8 + "-" * width)
    rows.append(
        f"{'mW':>7s}  0 us {' ' * (width - 18)} {times[-1]:7.1f} us"
    )
    return "\n".join(rows)


def main() -> None:
    print(f"{'scheme':8s} {'mode':7s} {'budget':>7s} {'makespan':>10s} "
          f"{'response':>9s} {'avg pwr':>8s} {'peak':>7s}")
    bc_run = None
    for mode, graph_builder, budget in CASES:
        for kind in SCHEMES:
            soc = Soc(soc_3x3())
            pm = build_pm(kind, soc, budget)
            result = WorkloadExecutor(soc, graph_builder(), pm).run()
            print(
                f"{kind.value:8s} {mode:7s} {budget:6.0f}mW "
                f"{result.makespan_us:8.1f}us "
                f"{result.mean_response_us:7.2f}us "
                f"{result.average_power_mw():6.1f}mW "
                f"{result.peak_power_mw():5.1f}mW"
            )
            if kind is PMKind.BLITZCOIN and mode == "WL-Par":
                bc_run = result
        print()

    print("BlitzCoin WL-Par power trace (note the power cap and the")
    print("redistribution when the NVDLA task completes mid-run):\n")
    print(ascii_trace(bc_run))
    dla_end = bc_run.task_finish_cycles["dla0"] * 1.25e-3
    print(f"\nNVDLA completed at {dla_end:.1f} us; the freed budget was")
    print("redistributed to the remaining FFT/Viterbi tiles within a")
    print(f"response time of {bc_run.mean_response_us:.2f} us (mean).")


if __name__ == "__main__":
    main()
