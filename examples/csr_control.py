#!/usr/bin/env python3
"""Runtime reconfiguration through the NoC-domain socket CSRs.

The CPU reads and writes power-management registers over NoC Plane 5
(Section IV-B): it inspects live coin counts, retargets a tile by
writing MAX_COINS, throttles it with THERMAL_CAP, and trims its ring
oscillator — exactly what the bare-metal driver in the paper's artifact
does through memory-mapped registers.

Run:  python examples/csr_control.py
"""

from repro.core.config import preferred_embodiment
from repro.core.engine import CoinExchangeEngine
from repro.dvfs.oscillator import RingOscillator
from repro.noc.behavioral import BehavioralNoc
from repro.noc.topology import MeshTopology
from repro.power.characterization import get_curve
from repro.sim.kernel import Simulator
from repro.soc.csr import (
    HAS_COINS,
    MAX_COINS,
    RO_TUNE,
    THERMAL_CAP,
    CsrMaster,
    attach_csrs,
)


def main() -> None:
    topo = MeshTopology(3, 3)
    sim = Simulator()
    noc = BehavioralNoc(sim, topo)
    managed = list(range(1, 9))  # tile 0 hosts the CPU master
    engine = CoinExchangeEngine(
        sim,
        noc,
        preferred_embodiment(),
        [0] + [8] * 8,
        [0] + [8] * 8,
        managed_tiles=managed,
    )
    oscillators = {t: RingOscillator(get_curve("FFT")) for t in managed}
    attach_csrs(engine, oscillators)
    master = CsrMaster(noc, cpu_tile=0)
    engine.start()
    sim.run_for(2_000)

    def show(label):
        counts = {t: engine.coins(t).has for t in managed}
        print(f"{label:38s} coins = {counts}")

    show("initial equilibrium (8 tiles @ max 8)")

    # 1. The CPU reads a live register over the NoC.
    print("\nCPU reads tile 4's HAS_COINS over Plane 5...")
    master.read(4, HAS_COINS, lambda v: print(f"  -> reply: {v} coins"))
    sim.run_for(100)

    # 2. Retarget tile 4 to 4x its entitlement via MAX_COINS.
    print("\nCPU writes MAX_COINS=32 to tile 4 (workload launch)...")
    master.write(4, MAX_COINS, 32)
    sim.run_for(40_000)
    show("after retarget (tile 4 attracts coins)")

    # 3. Throttle it with a thermal cap.
    print("\nCPU writes THERMAL_CAP=6 to tile 4 (hotspot!)...")
    master.write(4, THERMAL_CAP, 6)
    sim.run_for(60_000)
    show("after cap (tile 4 squeezed to <= 6)")

    # 4. Trim its ring oscillator.
    print("\nCPU writes RO_TUNE=2 to tile 4...")
    master.write(4, RO_TUNE, 2)
    sim.run_for(100)
    print(f"  -> oscillator tune code now {oscillators[4].tune_code}")

    engine.check_conservation()
    print("\nCoin conservation verified across all register operations.")


if __name__ == "__main__":
    main()
