#!/usr/bin/env python3
"""Quickstart: run BlitzCoin on the paper's 3x3 autonomous-vehicle SoC.

Builds the SoC of Fig. 12 (left), attaches the decentralized BlitzCoin
power manager with a 120 mW budget, runs the WL-Par workload, and prints
the throughput / response / power summary.

Run:  python examples/quickstart.py
"""

from repro.soc import PMKind, Soc, WorkloadExecutor, build_pm, soc_3x3
from repro.workloads import autonomous_vehicle_parallel


def main() -> None:
    # 1. Instantiate the SoC: 3 FFT + 2 Viterbi + 1 NVDLA tiles around a
    #    CVA6 CPU, a memory tile, and an I/O tile on a 3x3 mesh NoC.
    soc = Soc(soc_3x3())

    # 2. Attach BlitzCoin: a 120 mW budget (30% of the accelerators'
    #    combined maximum) minted into 63 coins, exchanged tile-to-tile.
    pm = build_pm(PMKind.BLITZCOIN, soc, budget_mw=120.0)

    # 3. Run the six-accelerator parallel workload.
    workload = autonomous_vehicle_parallel()
    result = WorkloadExecutor(soc, workload, pm).run()

    print(f"SoC:                {result.soc_name}")
    print(f"Workload:           {len(workload)} tasks (WL-Par)")
    print(f"Makespan:           {result.makespan_us:8.1f} us")
    print(f"Mean response time: {result.mean_response_us:8.2f} us")
    print(f"Peak power:         {result.peak_power_mw():8.1f} mW "
          f"(budget {result.budget_mw:.0f} mW)")
    print(f"Average power:      {result.average_power_mw():8.1f} mW")
    print(f"Budget utilization: {result.budget_utilization() * 100:8.1f} %")
    print()
    print("Per-task completion:")
    for name, cycles in sorted(
        result.task_finish_cycles.items(), key=lambda kv: kv[1]
    ):
        print(f"  {name:6s} finished at {cycles * 1.25e-3:8.1f} us")


if __name__ == "__main__":
    main()
