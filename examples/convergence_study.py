#!/usr/bin/env python3
"""Design-space exploration of the coin-exchange algorithm (Section III).

Sweeps SoC size for every algorithm variant — plain 1-way, plain 4-way,
1-way + dynamic timing, the full preferred embodiment — plus the
TokenSmart baseline, reporting convergence cycles and packet counts,
then shows the effect of heterogeneity (Fig. 8).

Run:  python examples/convergence_study.py [--quick]
"""

import statistics
import sys

from repro.baselines.tokensmart import run_tokensmart_trial
from repro.core import heterogeneous_scenario, run_convergence_trial
from repro.core.config import (
    BlitzCoinConfig,
    ExchangeMode,
    plain_four_way,
    plain_one_way,
    preferred_embodiment,
)

VARIANTS = {
    "1-way plain": plain_one_way(),
    "4-way plain": plain_four_way(),
    "1-way + dyn": BlitzCoinConfig(
        mode=ExchangeMode.ONE_WAY,
        dynamic_timing=True,
        wrap_around=False,
        random_pairing_every=0,
    ),
    "preferred": preferred_embodiment(),
}


def sweep(dims, trials) -> None:
    print(f"{'variant':14s}" + "".join(f"{f'd={d}':>12s}" for d in dims))
    for name, cfg in VARIANTS.items():
        cells = []
        for d in dims:
            cycles = [
                run_convergence_trial(d, cfg, seed=s, threshold=1.5).cycles
                for s in range(trials)
            ]
            cells.append(f"{statistics.mean(cycles):10.0f}cy")
        print(f"{name:14s}" + "".join(f"{c:>12s}" for c in cells))
    cells = []
    for d in dims:
        cycles = [
            run_tokensmart_trial(d, seed=s, threshold=1.5).cycles
            for s in range(trials)
        ]
        cells.append(f"{statistics.mean(cycles):10.0f}cy")
    print(f"{'TokenSmart':14s}" + "".join(f"{c:>12s}" for c in cells))
    print()


def heterogeneity(dims, trials) -> None:
    cfg = preferred_embodiment()
    print("Convergence vs heterogeneity (accType classes, Fig. 8):\n")
    print(f"{'accType':>8s}" + "".join(f"{f'd={d}':>12s}" for d in dims))
    for acc_types in (1, 2, 4, 8):
        cells = []
        for d in dims:
            cycles = []
            for s in range(trials):
                scenario = heterogeneous_scenario(d, acc_types, seed=s)
                r = run_convergence_trial(
                    d, cfg, seed=s, scenario=scenario, threshold=1.5
                )
                cycles.append(r.cycles)
            cells.append(f"{statistics.mean(cycles):10.0f}cy")
        print(f"{acc_types:>8d}" + "".join(f"{c:>12s}" for c in cells))
    print()


def main() -> None:
    quick = "--quick" in sys.argv
    dims = (4, 8, 12) if quick else (4, 8, 12, 16, 20)
    trials = 3 if quick else 8
    print(
        f"Coin-exchange design space ({trials} seeded trials per point, "
        "convergence at Err < 1.5):\n"
    )
    sweep(dims, trials)
    heterogeneity(dims[: len(dims) - 1], trials)
    print("Reading: time grows sub-linearly in N = d^2 for every")
    print("BlitzCoin variant (the paper's O(sqrt N)); TokenSmart's")
    print("sequential ring grows ~linearly in N and falls behind by an")
    print("order of magnitude on large SoCs.")


if __name__ == "__main__":
    main()
