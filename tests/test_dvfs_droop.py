"""Tests for the voltage-droop response model."""

import pytest

from repro.dvfs.droop import (
    ConventionalDroopResult,
    DroopEvent,
    DroopSimulator,
)
from repro.power.characterization import get_curve


@pytest.fixture
def sim():
    return DroopSimulator(get_curve("FFT"))


class TestDroopEvent:
    def test_valid(self):
        e = DroopEvent(100, 0.05, 200)
        assert e.depth_v == 0.05

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            DroopEvent(0, -0.1, 10)
        with pytest.raises(ValueError):
            DroopEvent(0, 0.1, 0)
        with pytest.raises(ValueError):
            DroopEvent(-1, 0.1, 10)


class TestUvfrResponse:
    def test_never_violates_timing(self, sim):
        events = [DroopEvent(0, 0.30, 500)]  # a brutal droop
        result = sim.uvfr_response(700e6, events)
        assert result.survives
        assert result.timing_violations == 0

    def test_clock_slows_during_droop(self, sim):
        events = [DroopEvent(0, 0.10, 200)]
        result = sim.uvfr_response(700e6, events)
        assert result.min_frequency_hz < 700e6
        assert result.lost_cycles > 0

    def test_deeper_droop_costs_more_cycles(self, sim):
        shallow = sim.uvfr_response(700e6, [DroopEvent(0, 0.05, 200)])
        deep = sim.uvfr_response(700e6, [DroopEvent(0, 0.15, 200)])
        assert deep.lost_cycles > shallow.lost_cycles

    def test_no_events_no_cost(self, sim):
        result = sim.uvfr_response(700e6, [])
        assert result.lost_cycles == 0.0

    def test_multiple_events_accumulate(self, sim):
        one = sim.uvfr_response(700e6, [DroopEvent(0, 0.1, 200)])
        two = sim.uvfr_response(
            700e6, [DroopEvent(0, 0.1, 200), DroopEvent(500, 0.1, 200)]
        )
        assert two.lost_cycles == pytest.approx(2 * one.lost_cycles)


class TestConventionalResponse:
    def test_droop_within_guardband_survives(self, sim):
        events = [DroopEvent(0, 0.04, 200)]
        result = sim.conventional_response(600e6, events, guardband_v=0.05)
        assert result.survives
        assert result.worst_margin_v >= 0

    def test_droop_beyond_guardband_violates(self, sim):
        events = [DroopEvent(0, 0.08, 200)]
        result = sim.conventional_response(600e6, events, guardband_v=0.05)
        assert not result.survives
        assert result.worst_margin_v < 0

    def test_guardband_costs_power(self, sim):
        result = sim.conventional_response(500e6, [], guardband_v=0.08)
        assert result.guardband_power_overhead > 0.05

    def test_zero_guardband_zero_overhead(self, sim):
        result = sim.conventional_response(500e6, [], guardband_v=0.0)
        assert result.guardband_power_overhead == pytest.approx(0.0, abs=1e-9)

    def test_guardband_clamped_at_vmax_may_still_fail(self, sim):
        # Near f_max there is no headroom for a guard-band: even a
        # requested margin cannot be realized, so a droop violates.
        curve = get_curve("FFT")
        events = [DroopEvent(0, 0.06, 100)]
        result = sim.conventional_response(
            curve.spec.f_max_hz, events, guardband_v=0.10
        )
        assert isinstance(result, ConventionalDroopResult)
        assert not result.survives

    def test_negative_guardband_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.conventional_response(500e6, [], guardband_v=-0.01)


class TestTradeoff:
    def test_required_guardband_is_worst_depth(self, sim):
        events = [DroopEvent(0, 0.03, 10), DroopEvent(50, 0.09, 10)]
        assert sim.required_guardband_v(events) == pytest.approx(0.09)

    def test_tradeoff_rows_monotone(self, sim):
        rows = sim.guardband_tradeoff(600e6, [0.02, 0.05, 0.10])
        depths = [r[0] for r in rows]
        uvfr_costs = [r[1] for r in rows]
        conv_costs = [r[2] for r in rows]
        assert depths == sorted(depths)
        assert uvfr_costs == sorted(uvfr_costs)
        assert conv_costs == sorted(conv_costs)

    def test_uvfr_transient_vs_conventional_permanent(self, sim):
        """The headline: for a 10% V droop, UVFR loses a fraction of
        cycles *during the droop only*, while the conventional design
        pays a double-digit power overhead *forever*."""
        rows = sim.guardband_tradeoff(600e6, [0.10])
        _, uvfr_fraction, conv_overhead = rows[0]
        assert 0.0 < uvfr_fraction < 1.0
        assert conv_overhead > 0.10
