"""Focused tests for the 4-way exchange protocol (Algorithm 1)."""

import dataclasses

import pytest

from repro.core.config import ExchangeMode, plain_four_way
from repro.noc.packet import MessageType
from tests.conftest import build_engine_rig


def build(d=3, initial=None, max_per_tile=8, **cfg_kwargs):
    config = plain_four_way()
    if cfg_kwargs:
        config = dataclasses.replace(config, **cfg_kwargs)
    return tuple(
        build_engine_rig(
            d,
            config=config,
            max_per_tile=max_per_tile,
            initial=initial,
            seed=11,
        )
    )


class TestMessageComplexity:
    def test_one_group_exchange_uses_twelve_messages(self):
        """Section III-B: request + status + update per neighbor = 12."""
        sim, noc, engine = build(
            d=3, initial=[72, 0, 0, 0, 0, 0, 0, 0, 0], wrap_around=True
        )
        engine.start()
        # Run just long enough for the first exchange round to complete.
        sim.run_for(40)
        per_exchange = noc.stats.coin_packets / max(
            1, engine.exchanges_started
        )
        # Aborted (NACKed) exchanges send fewer; successful ones send 12.
        assert 7.0 <= per_exchange <= 12.5

    def test_uses_request_messages(self):
        sim, noc, engine = build(d=3)
        engine.start()
        sim.run_for(200)
        assert noc.stats.by_type.get(MessageType.COIN_REQUEST.value, 0) > 0


class TestProtocolSafety:
    def test_locked_participants_are_released(self):
        """No tile is ever left *permanently* locked.

        A snapshot may catch one in-flight group exchange (a center and
        up to four locked neighbors); the same tiles must not still be
        locked a little later.
        """
        sim, noc, engine = build(d=4, initial=[128] + [0] * 15)
        engine.start()
        sim.run_for(20_000)
        persistent = None
        for _ in range(5):
            locked_now = {
                (t, fsm.lock_uid)
                for t, fsm in engine.fsm.items()
                if fsm.locked
            }
            if persistent is None:
                persistent = locked_now
            else:
                persistent &= locked_now
            sim.run_for(500)
        assert not persistent, f"permanently locked: {persistent}"

    def test_conservation_under_heavy_collision_load(self):
        sim, noc, engine = build(d=5, initial=[200] + [0] * 24)
        engine.start()
        for _ in range(20):
            sim.run_for(1_000)
            engine.check_conservation()

    def test_aborted_exchanges_count_as_nacked(self):
        sim, noc, engine = build(d=3)
        engine.start()
        sim.run_for(5_000)
        # With nine tiles requesting 4 neighbors each, collisions are
        # guaranteed; they must be accounted, not lost.
        assert engine.exchanges_nacked > 0
        assert (
            engine.exchanges_started
            >= engine.exchanges_nacked + engine.exchanges_zero
        )

    def test_stale_status_ignored(self):
        """A status with an outdated exchange uid must not corrupt a
        center's collection state."""
        sim, noc, engine = build(d=3)
        engine.start()
        sim.run_for(3_000)
        center = engine.fsm[4]
        # Inject a stale status by hand.
        from repro.core.engine import _StatusPayload
        from repro.noc.packet import Packet

        noc.send(
            Packet(
                src=1,
                dst=4,
                msg_type=MessageType.COIN_STATUS,
                payload=_StatusPayload(5, 8, exchange_uid=-999),
            )
        )
        sim.run_for(1_000)
        engine.check_conservation()


class TestFourWayConvergence:
    def test_group_equalization_on_plus_topology(self):
        """Center + 4 neighbors equalize in one engine run."""
        sim, noc, engine = build(
            d=3, initial=[0, 0, 0, 0, 45, 0, 0, 0, 0], wrap_around=False
        )
        engine.start()
        converged = engine.run_until_converged(100_000)
        assert converged is not None

    def test_four_way_with_wraparound(self):
        sim, noc, engine = build(
            d=4, initial=[128] + [0] * 15, wrap_around=True
        )
        engine.start()
        assert engine.run_until_converged(300_000) is not None
