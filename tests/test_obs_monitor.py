"""Online health monitors: detector logic and the bit-identity claim.

Two halves.  The unit tests drive each monitor directly through the
sink interface with synthetic event streams and assert exactly which
alerts fire.  The identity tests re-run real simulations with the
monitor battery installed and require *nothing* to change — final coin
vectors, TrialResults, and the committed golden Fig. 3/4 fixture
bodies, also under BLITZCOIN_SANITIZE-style config and a nonzero
FaultPlan — because monitors ride the same observe-only sink path as
every other instrument.
"""

import dataclasses
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import preferred_embodiment
from repro.core.runner import run_convergence_trial
from repro.faults.plan import FaultPlan, LinkFaultRates
from repro.obs import observing
from repro.obs.monitor import (
    Alert,
    BudgetOvershootMonitor,
    ConvergenceStallMonitor,
    MonitorSet,
    OscillationMonitor,
    ReconcileBacklogMonitor,
    StarvationMonitor,
    default_monitors,
    final_coin_levels,
)
from repro.obs.sink import Observation
from tests.conftest import build_engine_rig
from tests.test_golden_traces import CASES, GOLDEN_DIR


# --------------------------------------------------------------------- alerts
class TestAlert:
    def test_to_dict_shape(self):
        alert = Alert(
            monitor="m", severity="warn", cycle=7, message="x", tile=2,
            epoch="trial0", data={"k": 1},
        )
        assert alert.to_dict() == {
            "monitor": "m", "severity": "warn", "cycle": 7, "tile": 2,
            "epoch": "trial0", "message": "x", "data": {"k": 1},
        }

    def test_rejects_unknown_severity(self):
        with pytest.raises(ValueError, match="severity"):
            Alert(monitor="m", severity="fatal", cycle=0, message="x")


# ------------------------------------------------------------------- monitors
class TestBudgetOvershootMonitor:
    def _feed(self, monitor, samples):
        for time, tile, mw in samples:
            monitor.on_sample("soc.power_mw", time, mw, tile)

    def test_sustained_overshoot_alerts_with_attribution(self):
        monitor = BudgetOvershootMonitor(100.0, grace_cycles=50)
        self._feed(
            monitor,
            [(0, 0, 60.0), (10, 1, 70.0), (500, 1, 20.0)],
        )
        assert len(monitor.alerts) == 1
        alert = monitor.alerts[0]
        assert alert.severity == "error"
        assert alert.cycle == 10
        assert alert.tile == 1  # the hungriest tile at the peak
        assert alert.data["duration_cycles"] == 490

    def test_transient_within_grace_is_silent(self):
        monitor = BudgetOvershootMonitor(100.0, grace_cycles=50)
        self._feed(
            monitor, [(0, 0, 60.0), (10, 1, 70.0), (40, 1, 20.0)]
        )
        monitor.flush(1000)
        assert monitor.alerts == []

    def test_tolerance_band_is_not_an_overshoot(self):
        monitor = BudgetOvershootMonitor(100.0, grace_cycles=0)
        self._feed(monitor, [(0, 0, 109.0), (5000, 0, 10.0)])
        assert monitor.alerts == []

    def test_open_episode_closed_by_flush(self):
        monitor = BudgetOvershootMonitor(100.0, grace_cycles=50)
        self._feed(monitor, [(0, 0, 150.0)])
        assert monitor.alerts == []
        monitor.flush(400)
        assert len(monitor.alerts) == 1

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError, match="budget_mw"):
            BudgetOvershootMonitor(0.0)


def _apply(monitor, time, tile, delta, has):
    monitor.on_event(
        "apply", time, "engine", tile, {"delta": delta, "has": has}
    )


class TestStarvationMonitor:
    def test_active_zero_coin_tile_alerts(self):
        monitor = StarvationMonitor(window_cycles=100)
        monitor.on_event("tile_start", 0, "pm", 3, {})
        _apply(monitor, 10, 3, -2, 0)
        _apply(monitor, 300, 5, 1, 4)  # other tile proves liveness
        assert len(monitor.alerts) == 1
        alert = monitor.alerts[0]
        assert alert.tile == 3 and alert.severity == "error"
        assert alert.cycle == 10

    def test_idle_zero_coin_tile_is_normal(self):
        monitor = StarvationMonitor(window_cycles=100)
        _apply(monitor, 10, 3, -2, 0)  # zero coins, but never active
        _apply(monitor, 500, 5, 1, 4)
        monitor.flush(1000)
        assert monitor.alerts == []

    def test_refill_clears_the_clock(self):
        monitor = StarvationMonitor(window_cycles=100)
        monitor.on_event("tile_start", 0, "pm", 3, {})
        _apply(monitor, 10, 3, -2, 0)
        _apply(monitor, 50, 3, 1, 1)  # refilled inside the window
        _apply(monitor, 500, 5, 1, 4)
        monitor.flush(1000)
        assert monitor.alerts == []

    def test_alerts_once_per_episode(self):
        monitor = StarvationMonitor(window_cycles=100)
        monitor.on_event("tile_start", 0, "pm", 3, {})
        _apply(monitor, 10, 3, -2, 0)
        for t in (300, 400, 500):
            _apply(monitor, t, 5, 1, 4)
        assert len(monitor.alerts) == 1


class TestOscillationMonitor:
    def test_thrash_detected(self):
        monitor = OscillationMonitor(window_cycles=1000, max_flips=4)
        for i in range(10):
            _apply(monitor, i * 10, 2, 1 if i % 2 else -1, 5)
        assert len(monitor.alerts) >= 1
        assert monitor.alerts[0].tile == 2
        assert monitor.alerts[0].data["flips"] == 4

    def test_steady_flow_is_silent(self):
        monitor = OscillationMonitor(window_cycles=1000, max_flips=4)
        for i in range(20):
            _apply(monitor, i * 10, 2, 3, 5)
        assert monitor.alerts == []

    def test_slow_reversals_age_out_of_window(self):
        monitor = OscillationMonitor(window_cycles=100, max_flips=3)
        for i in range(12):
            _apply(monitor, i * 90, 2, 1 if i % 2 else -1, 5)
        assert monitor.alerts == []


class TestConvergenceStallMonitor:
    def test_gap_between_applies_alerts(self):
        monitor = ConvergenceStallMonitor(stall_cycles=1000)
        _apply(monitor, 10, 0, 1, 3)
        _apply(monitor, 5000, 1, 1, 3)
        assert len(monitor.alerts) == 1
        assert monitor.alerts[0].data["gap_cycles"] == 4990

    def test_trailing_gap_alerts_on_flush(self):
        monitor = ConvergenceStallMonitor(stall_cycles=1000)
        _apply(monitor, 10, 0, 1, 3)
        monitor.flush(9000)
        assert len(monitor.alerts) == 1

    def test_busy_run_is_silent(self):
        monitor = ConvergenceStallMonitor(stall_cycles=1000)
        for i in range(20):
            _apply(monitor, i * 500, 0, 1, 3)
        monitor.flush(20 * 500)
        assert monitor.alerts == []


class TestReconcileBacklogMonitor:
    def test_backlog_crossing_alerts_once(self):
        monitor = ReconcileBacklogMonitor(max_backlog=4)
        monitor.on_inc("engine.coins_lost", 100, 6, {})
        monitor.on_inc("engine.coins_lost", 200, 1, {})
        assert len(monitor.alerts) == 1
        assert monitor.alerts[0].data["backlog"] == 6

    def test_rearms_after_draining(self):
        monitor = ReconcileBacklogMonitor(max_backlog=4)
        monitor.on_inc("engine.coins_lost", 100, 6, {})
        monitor.on_inc("engine.coins_reminted", 200, 6, {})
        monitor.on_inc("engine.coins_lost", 300, 6, {})
        assert len(monitor.alerts) == 2

    def test_reconciled_backlog_is_silent(self):
        monitor = ReconcileBacklogMonitor(max_backlog=4)
        for t in range(10):
            monitor.on_inc("engine.coins_lost", t * 10, 1, {})
            monitor.on_inc("engine.coins_reminted", t * 10 + 5, 1, {})
        assert monitor.alerts == []


# ------------------------------------------------------------------ MonitorSet
class TestMonitorSet:
    def test_forwards_to_wrapped_observation(self):
        session = Observation("wrapped")
        monitors = MonitorSet(default_monitors(), session)
        monitors.inc("engine.coin_deltas", 5)
        monitors.event("apply", 5, cat="engine", track=0,
                       args={"delta": 1, "has": 2})
        monitors.sample("soc.power_mw", 6, 42.0, cat="soc", track=0)
        assert session.registry.value("engine.coin_deltas") == 1
        assert len(session.trace.events) == 1
        assert len(session.trace.samples) == 1

    def test_epoch_flushes_and_resets(self):
        stall = ConvergenceStallMonitor(stall_cycles=100)
        monitors = MonitorSet([stall])
        monitors.event("apply", 10, cat="engine", track=0,
                       args={"delta": 1, "has": 1})
        monitors.event("apply", 900, cat="engine", track=0,
                       args={"delta": 1, "has": 2})  # gap alert (epoch "")
        monitors.epoch("trial1")
        assert monitors.last_time == 0  # trials restart sim time
        monitors.event("apply", 5, cat="engine", track=0,
                       args={"delta": 1, "has": 1})
        monitors.finish()
        alerts = monitors.alerts()
        assert [a.epoch for a in alerts] == [""]

    def test_alert_counts_include_quiet_monitors(self):
        monitors = MonitorSet(default_monitors(budget_mw=100.0))
        assert monitors.alert_counts() == {
            "budget_overshoot": 0,
            "starvation": 0,
            "coin_oscillation": 0,
            "convergence_stall": 0,
            "reconcile_backlog": 0,
        }

    def test_default_monitors_budget_is_optional(self):
        names = [m.name for m in default_monitors()]
        assert "budget_overshoot" not in names
        names = [m.name for m in default_monitors(budget_mw=50.0)]
        assert names[0] == "budget_overshoot"

    def test_final_coin_levels_reads_last_epoch(self):
        session = Observation()
        monitors = MonitorSet([], session)
        monitors.event("apply", 5, cat="engine", track=0,
                       args={"delta": 1, "has": 9})
        monitors.epoch("trial1")
        monitors.event("apply", 5, cat="engine", track=0,
                       args={"delta": -1, "has": 3})
        monitors.event("apply", 8, cat="engine", track=1,
                       args={"delta": 1, "has": 6})
        assert final_coin_levels(session) == {0: 3, 1: 6}


# ------------------------------------------------------------- identity tests
def _monitored():
    return MonitorSet(default_monitors(budget_mw=120.0), Observation())


def _trial(seed, config=None):
    return run_convergence_trial(
        4, config or preferred_embodiment(), seed=seed, threshold=0.5
    )


class TestMonitorIdentity:
    """Monitors enabled must change no simulation result."""

    @pytest.mark.parametrize("seed", [0, 3])
    def test_trial_bit_identical(self, seed):
        base = _trial(seed)
        with observing(_monitored()):
            monitored = _trial(seed)
        assert monitored == base

    def test_trial_bit_identical_under_sanitizer(self):
        config = dataclasses.replace(preferred_embodiment(), sanitize=True)
        base = _trial(7, config)
        with observing(_monitored()):
            monitored = _trial(7, config)
        assert monitored == base

    def test_trial_bit_identical_under_faults(self):
        plan = FaultPlan(seed=11, link=LinkFaultRates(drop=0.05))
        config = dataclasses.replace(
            preferred_embodiment(), fault_plan=plan
        )
        base = _trial(11, config)
        assert base.packets_discarded > 0  # the plan actually bites
        with observing(_monitored()):
            monitored = _trial(11, config)
        assert monitored == base

    def test_final_coin_vector_bit_identical(self):
        def run():
            rig = build_engine_rig(
                d=3, initial=[24, 0, 0, 0, 0, 0, 0, 0, 0], seed=5,
                start=True,
            )
            rig.sim.run(until=50_000)
            return rig.engine.snapshot_has()

        base = run()
        monitors = _monitored()
        with observing(monitors):
            monitored = run()
        assert monitored == base
        # ...and the monitors actually watched the run.
        assert monitors.observation.registry.value("engine.coin_deltas") > 0

    @pytest.mark.parametrize(
        "name", ["fig03_1way_d3", "fig03_4way_d3", "fig04_d4"]
    )
    def test_golden_fixture_body_untouched(self, name):
        """Recomputing a committed golden case under monitors yields the
        committed bytes — the strongest no-perturbation check we have."""
        expected = json.loads(
            (Path(GOLDEN_DIR) / f"{name}.json").read_text()
        )
        with observing(_monitored()):
            actual = CASES[name]()
        assert actual == expected

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_property_any_seed_identical(self, seed):
        config = preferred_embodiment()
        base = run_convergence_trial(3, config, seed=seed, threshold=1.5)
        with observing(_monitored()):
            monitored = run_convergence_trial(
                3, config, seed=seed, threshold=1.5
            )
        assert monitored == base
