"""Smoke tests: the example scripts run end-to-end.

Only the fast ones run in CI; each is executed in-process (imported as a
module and driven through main) so coverage tools see them.
"""

import runpy
import sys

import pytest


def run_example(name, argv=()):
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(f"examples/{name}", run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart_runs(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "Makespan" in out
    assert "Budget utilization" in out


def test_convergence_study_quick_runs(capsys):
    run_example("convergence_study.py", argv=["--quick"])
    out = capsys.readouterr().out
    assert "TokenSmart" in out
    assert "accType" in out


@pytest.mark.slow
def test_autonomous_vehicle_runs(capsys):
    run_example("autonomous_vehicle.py")
    out = capsys.readouterr().out
    assert "power trace" in out
