"""Scenario schema: validation, canonical ordering, and round-trips.

The scenario bundle is the fuzzer's wire format — its hash is the
corpus address and its JSON is the repro-bundle payload — so the
properties here (round-trip identity, order-insensitive hashing,
strict validation) are what "replays bit-identically" rests on.
"""

import pytest
from hypothesis import given, settings

from repro.faults.plan import FaultPlan, TileFaultEvent
from repro.fuzz.scenario import (
    MANAGED_TILES,
    EngineSection,
    FuzzError,
    Scenario,
    ScenarioEvent,
    SocSection,
)
from repro.soc.presets import soc_3x3, soc_4x4
from tests.strategies import engine_scenarios


def engine_scenario(**overrides):
    base = dict(
        kind="engine",
        seed=1,
        max_cycles=10_000,
        engine=EngineSection(dim=3, max_by_tile=(8,) * 9, pool=48),
    )
    base.update(overrides)
    return Scenario(**base)


def soc_section(**overrides):
    base = dict(
        preset="3x3",
        budget_mw=120,
        tasks=(("a", "FFT", 10_000, (), None),),
    )
    base.update(overrides)
    return SocSection(**base)


class TestScenarioEventValidation:
    def test_budget_step_must_be_global(self):
        with pytest.raises(FuzzError, match="global"):
            ScenarioEvent(cycle=0, kind="budget_step", tile=3, value=50)

    def test_budget_step_percent_bounded(self):
        with pytest.raises(FuzzError, match="percent"):
            ScenarioEvent(cycle=0, kind="budget_step", tile=-1, value=500)

    def test_unknown_kind_rejected(self):
        with pytest.raises(FuzzError, match="unknown event kind"):
            ScenarioEvent(cycle=0, kind="explode", tile=0, value=1)

    def test_thermal_cap_minus_one_clears(self):
        ev = ScenarioEvent(cycle=5, kind="thermal_cap", tile=2, value=-1)
        assert ScenarioEvent.from_dict(ev.to_dict()) == ev

    def test_negative_set_max_rejected(self):
        with pytest.raises(FuzzError, match="set_max"):
            ScenarioEvent(cycle=0, kind="set_max", tile=0, value=-3)


class TestScenarioValidation:
    def test_kind_needs_matching_section(self):
        with pytest.raises(FuzzError, match="engine"):
            Scenario(kind="engine", seed=0, max_cycles=100)

    def test_exactly_one_section(self):
        with pytest.raises(FuzzError, match="exactly"):
            Scenario(
                kind="engine",
                seed=0,
                max_cycles=100,
                engine=EngineSection(dim=2, max_by_tile=(1,) * 4, pool=2),
                soc=soc_section(),
            )

    def test_event_beyond_horizon_rejected(self):
        with pytest.raises(FuzzError, match="beyond horizon"):
            engine_scenario(
                events=(
                    ScenarioEvent(
                        cycle=10_000, kind="set_max", tile=0, value=1
                    ),
                )
            )

    def test_event_tile_out_of_range_rejected(self):
        with pytest.raises(FuzzError, match="out of range"):
            engine_scenario(
                events=(
                    ScenarioEvent(cycle=0, kind="set_max", tile=9, value=1),
                )
            )

    def test_soc_rejects_engine_only_events(self):
        with pytest.raises(FuzzError, match="engine-only"):
            Scenario(
                kind="soc",
                seed=0,
                max_cycles=10_000,
                soc=soc_section(),
                events=(
                    ScenarioEvent(cycle=0, kind="set_max", tile=1, value=4),
                ),
            )

    def test_soc_thermal_cap_must_hit_managed_tile(self):
        with pytest.raises(FuzzError, match="managed accelerator"):
            Scenario(
                kind="soc",
                seed=0,
                max_cycles=10_000,
                soc=soc_section(),
                events=(
                    ScenarioEvent(
                        cycle=0, kind="thermal_cap", tile=0, value=4
                    ),
                ),
            )

    def test_engine_section_size_must_match_dim(self):
        with pytest.raises(FuzzError, match="entries"):
            EngineSection(dim=3, max_by_tile=(8,) * 4, pool=10)

    def test_soc_tasks_must_form_a_dag(self):
        with pytest.raises(FuzzError):
            soc_section(
                tasks=(
                    ("a", "FFT", 1_000, ("b",), None),
                    ("b", "FFT", 1_000, ("a",), None),
                )
            )

    def test_managed_tiles_match_presets(self):
        """The preset mirror in the scenario schema must track the
        actual SoC configs (drift would mis-validate thermal caps)."""
        for preset, builder in (("3x3", soc_3x3), ("4x4", soc_4x4)):
            config = builder()
            assert MANAGED_TILES[preset] == tuple(
                sorted(config.managed_accelerators())
            )


class TestRoundTrip:
    def test_json_round_trip_engine(self):
        s = engine_scenario(
            events=(
                ScenarioEvent(cycle=10, kind="set_max", tile=1, value=4),
                ScenarioEvent(cycle=5, kind="budget_step", tile=-1, value=80),
            ),
            fault_plan=FaultPlan(
                seed=3,
                tile_events=(
                    TileFaultEvent(cycle=100, tile=2, action="kill"),
                ),
            ),
        )
        back = Scenario.from_json(s.to_json())
        assert back == s
        assert back.scenario_hash == s.scenario_hash

    def test_event_order_is_canonical(self):
        a = ScenarioEvent(cycle=10, kind="set_max", tile=1, value=4)
        b = ScenarioEvent(cycle=5, kind="thermal_cap", tile=2, value=3)
        assert (
            engine_scenario(events=(a, b)).scenario_hash
            == engine_scenario(events=(b, a)).scenario_hash
        )

    def test_unknown_field_rejected(self):
        doc = engine_scenario().to_dict()
        doc["gremlins"] = True
        with pytest.raises(FuzzError, match="gremlins"):
            Scenario.from_dict(doc)

    def test_wrong_schema_rejected(self):
        doc = engine_scenario().to_dict()
        doc["schema"] = 99
        with pytest.raises(FuzzError, match="schema"):
            Scenario.from_dict(doc)

    def test_not_json_rejected(self):
        with pytest.raises(FuzzError, match="not valid JSON"):
            Scenario.from_json("{nope")

    def test_soc_round_trip_preserves_task_order(self):
        section = SocSection(
            preset="3x3",
            budget_mw=100,
            tasks=(
                ("a", "FFT", 1_000, (), None),
                ("b", "Viterbi", 2_000, ("a",), 3),
            ),
        )
        s = Scenario(kind="soc", seed=0, max_cycles=10_000, soc=section)
        assert Scenario.from_json(s.to_json()) == s

    @given(scenario=engine_scenarios())
    @settings(max_examples=60, deadline=None)
    def test_property_any_scenario_round_trips(self, scenario):
        back = Scenario.from_json(scenario.to_json())
        assert back == scenario
        assert back.scenario_hash == scenario.scenario_hash
        assert back.size == scenario.size
