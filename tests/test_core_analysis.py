"""Tests for the Section III-E convergence lemma and deadlock detection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import (
    ExchangeCase,
    build_deadlock_grid,
    classify_exchange,
    is_local_minimum,
    pair_error,
)
from repro.core.coins import TileCoins, pairwise_exchange
from repro.noc.topology import MeshTopology

active_tile = st.builds(
    TileCoins, has=st.integers(0, 100), max=st.integers(1, 32)
)


class TestClassification:
    def test_both_above_target(self):
        # alpha small: both tiles hold too many coins.
        case = classify_exchange(TileCoins(20, 8), TileCoins(12, 8), alpha=0.5)
        assert case is ExchangeCase.BOTH_ABOVE

    def test_both_below_target(self):
        case = classify_exchange(TileCoins(2, 8), TileCoins(1, 8), alpha=2.0)
        assert case is ExchangeCase.BOTH_BELOW

    def test_straddle(self):
        case = classify_exchange(TileCoins(16, 8), TileCoins(0, 8), alpha=1.0)
        assert case in (
            ExchangeCase.STRADDLE_HIGH,
            ExchangeCase.STRADDLE_LOW,
        )

    def test_inactive_tiles_rejected(self):
        with pytest.raises(ValueError):
            classify_exchange(TileCoins(1, 0), TileCoins(1, 1), alpha=1.0)

    @given(active_tile, active_tile, st.floats(0.1, 3.0))
    @settings(max_examples=300, deadline=None)
    def test_lemma_error_never_increases_beyond_rounding(self, i, j, alpha):
        """Section III-E: every exchange leaves E_i + E_j constant or
        smaller, up to one coin of quantization slack."""
        result = pairwise_exchange(i, j)
        before = pair_error(i, j, alpha)
        i2 = TileCoins(i.has + result.deltas[0], i.max)
        j2 = TileCoins(j.has + result.deltas[1], j.max)
        after = pair_error(i2, j2, alpha)
        assert after <= before + 1.0 + 1e-9

    @given(active_tile, active_tile)
    @settings(max_examples=300, deadline=None)
    def test_straddle_cases_strictly_reduce_pair_error(self, i, j):
        """When the pair's own alpha separates the two ratios, the
        exchange reduces the pair error to the quantization floor."""
        alpha = (i.has + j.has) / (i.max + j.max)
        hi, lo = (i, j) if i.ratio >= j.ratio else (j, i)
        if not (hi.ratio > alpha > lo.ratio):
            return
        result = pairwise_exchange(i, j)
        i2 = TileCoins(i.has + result.deltas[0], i.max)
        j2 = TileCoins(j.has + result.deltas[1], j.max)
        assert pair_error(i2, j2, alpha) <= 2.0 + 1e-9


class TestLocalMinimum:
    def test_fair_state_is_not_a_local_minimum(self):
        topo = MeshTopology(3, 3)
        assert not is_local_minimum([8] * 9, [8] * 9, topo)

    def test_detects_stuck_configuration(self):
        """Two active tiles separated by inactive ones, with all coins
        near one of them: neighbor exchanges cannot make progress."""
        topo = MeshTopology(3, 3)
        max_ = build_deadlock_grid(3)
        active = [t for t in range(9) if max_[t] > 0]
        rich, poor = active[0], active[1]
        has = [0] * 9
        has[rich] = 12
        # Neighbor exchanges from 'rich' only see inactive neighbors
        # (which cannot accept coins), so nothing can move even though
        # the allocation is unfair.
        stuck = is_local_minimum(has, max_, topo, wrap_around=False)
        assert stuck
        assert has[poor] == 0

    def test_imbalanced_but_connected_is_not_stuck(self):
        topo = MeshTopology(3, 3)
        has = [72] + [0] * 8
        assert not is_local_minimum(has, [8] * 9, topo)

    def test_vector_length_checked(self):
        topo = MeshTopology(3, 3)
        with pytest.raises(ValueError):
            is_local_minimum([1, 2], [1, 2], topo)

    def test_build_deadlock_grid_requires_3x3(self):
        with pytest.raises(ValueError):
            build_deadlock_grid(2)
