"""Tests for the content-addressed result store.

The store's one hard promise is crash safety: a unit artifact either
exists complete or not at all, so ``--resume`` can trust whatever it
finds on disk.  The atomic-write regression tests simulate the crash
windows directly (before and during the rename) and assert no
truncated JSON ever becomes visible at the destination path.
"""

import json
import os

import pytest

from repro.campaign import CampaignSpec, CampaignStore, StoreError
from repro.core.io import atomic_write_text


@pytest.fixture
def spec():
    return CampaignSpec(
        name="store-test",
        kind="convergence",
        trials=2,
        base_seed=3,
        axes=(("d", (3, 4)),),
        params={"threshold": 1.5},
    )


@pytest.fixture
def store(tmp_path):
    return CampaignStore(tmp_path / "store")


class TestUnitArtifacts:
    def test_roundtrip(self, store, spec):
        unit = spec.units()[0]
        store.save_unit(spec, unit, {"cycles": 123, "converged": True})
        assert store.load_unit(spec, unit) == {
            "cycles": 123,
            "converged": True,
        }

    def test_missing_unit_is_none_not_error(self, store, spec):
        assert store.load_unit(spec, spec.units()[0]) is None

    def test_artifact_path_is_content_addressed(self, store, spec):
        unit = spec.units()[0]
        path = store.save_unit(spec, unit, {"x": 1})
        assert path.name == f"{unit.unit_hash}.json"
        assert path.parent.name == "units"
        assert path.parent.parent.name == spec.spec_hash[:16]

    def test_truncated_artifact_raises_with_clean_hint(self, store, spec):
        unit = spec.units()[0]
        path = store.save_unit(spec, unit, {"cycles": 123})
        path.write_text(path.read_text()[:10])  # simulate torn write
        with pytest.raises(StoreError, match="campaign clean"):
            store.load_unit(spec, unit)

    def test_artifact_without_result_key_is_corrupt(self, store, spec):
        unit = spec.units()[0]
        path = store.save_unit(spec, unit, {"cycles": 123})
        path.write_text('{"schema": 1}\n')
        with pytest.raises(StoreError, match="missing 'result'"):
            store.load_unit(spec, unit)


class TestAtomicWrites:
    """Regression tests: a crash mid-write must never surface a
    truncated artifact (which would poison every later --resume)."""

    def test_crash_before_rename_leaves_old_content(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "unit.json"
        atomic_write_text(target, '{"result": "old"}\n')

        def crash(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(os, "replace", crash)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_text(target, '{"result": "new"}\n')
        # Old content intact, temp file cleaned up, nothing truncated.
        assert json.loads(target.read_text()) == {"result": "old"}
        assert list(tmp_path.iterdir()) == [target]

    def test_crash_during_write_never_touches_target(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "unit.json"
        atomic_write_text(target, '{"result": "old"}\n')

        def crash(fd):
            raise OSError("simulated crash at fsync")

        monkeypatch.setattr(os, "fsync", crash)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_text(target, '{"result": "new"}\n')
        assert json.loads(target.read_text()) == {"result": "old"}
        assert list(tmp_path.iterdir()) == [target]

    def test_save_unit_is_atomic(self, store, spec, monkeypatch):
        # The store must route unit artifacts through the atomic path.
        unit = spec.units()[0]
        store.save_unit(spec, unit, {"cycles": 1})
        monkeypatch.setattr(
            os, "replace", lambda s, d: (_ for _ in ()).throw(OSError("boom"))
        )
        with pytest.raises(OSError):
            store.save_unit(spec, unit, {"cycles": 2})
        assert store.load_unit(spec, unit) == {"cycles": 1}


class TestManifest:
    def test_roundtrip(self, store, spec):
        store.write_manifest(
            spec, total=4, cached=1, executed=3, complete=True
        )
        doc = store.load_manifest(spec)
        assert doc["spec_hash"] == spec.spec_hash
        assert doc["total"] == 4
        assert doc["complete"] is True

    def test_missing_manifest_is_none(self, store, spec):
        assert store.load_manifest(spec) is None

    def test_foreign_manifest_rejected(self, store, spec):
        store.write_manifest(
            spec, total=4, cached=0, executed=4, complete=True
        )
        path = store.manifest_path(spec)
        doc = json.loads(path.read_text())
        doc["spec_hash"] = "0" * 64
        path.write_text(json.dumps(doc))
        with pytest.raises(StoreError, match="different spec"):
            store.load_manifest(spec)


class TestScanAndClean:
    def test_scan_counts_done_missing_corrupt(self, store, spec):
        units = spec.units()
        store.save_unit(spec, units[0], {"x": 1})
        store.save_unit(spec, units[1], {"x": 2})
        store.unit_path(spec, units[2]).write_text("{torn")
        status = store.scan(spec)
        assert status.total == 4
        assert status.done == 2
        assert status.missing == 1
        assert len(status.corrupt) == 1
        assert not status.complete

    def test_scan_complete(self, store, spec):
        for unit in spec.units():
            store.save_unit(spec, unit, {"x": unit.index})
        assert store.scan(spec).complete

    def test_clean_removes_only_that_spec(self, store, spec):
        other = CampaignSpec(
            name="other", kind="convergence", trials=1, params={"d": 3}
        )
        store.save_unit(spec, spec.units()[0], {"x": 1})
        store.save_unit(other, other.units()[0], {"x": 2})
        assert store.clean(spec) is True
        assert store.clean(spec) is False  # already gone
        assert store.load_unit(other, other.units()[0]) == {"x": 2}

    def test_clean_all_removes_root(self, store, spec):
        store.save_unit(spec, spec.units()[0], {"x": 1})
        assert store.clean_all() is True
        assert not store.root.exists()
        assert store.clean_all() is False
