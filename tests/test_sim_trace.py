"""Tests for step-function trace recording."""

import numpy as np
import pytest

from repro.sim.trace import StateTrace, TraceRecorder


class TestStateTrace:
    def test_value_holds_until_next_sample(self):
        t = StateTrace("p")
        t.record(10, 5.0)
        t.record(20, 7.0)
        assert t.value_at(10) == 5.0
        assert t.value_at(15) == 5.0
        assert t.value_at(20) == 7.0
        assert t.value_at(1000) == 7.0

    def test_value_before_first_sample_is_zero(self):
        t = StateTrace("p")
        t.record(10, 5.0)
        assert t.value_at(0) == 0.0

    def test_same_time_record_overwrites(self):
        t = StateTrace("p")
        t.record(10, 5.0)
        t.record(10, 9.0)
        assert t.value_at(10) == 9.0
        assert len(t) == 1

    def test_redundant_samples_skipped(self):
        t = StateTrace("p")
        t.record(10, 5.0)
        t.record(20, 5.0)
        assert len(t) == 1

    def test_time_going_backwards_rejected(self):
        t = StateTrace("p")
        t.record(10, 5.0)
        with pytest.raises(ValueError):
            t.record(5, 1.0)

    def test_integral_over_step_function(self):
        t = StateTrace("p")
        t.record(0, 2.0)
        t.record(10, 4.0)
        # [0,10): 2*10 = 20 ; [10,20): 4*10 = 40
        assert t.integral(0, 20) == pytest.approx(60.0)

    def test_integral_partial_segment(self):
        t = StateTrace("p")
        t.record(0, 2.0)
        t.record(10, 4.0)
        assert t.integral(5, 15) == pytest.approx(2.0 * 5 + 4.0 * 5)

    def test_integral_before_first_sample_counts_zero(self):
        t = StateTrace("p")
        t.record(10, 3.0)
        assert t.integral(0, 20) == pytest.approx(30.0)

    def test_integral_empty_interval(self):
        t = StateTrace("p")
        t.record(0, 2.0)
        assert t.integral(10, 10) == 0.0

    def test_integral_window_is_half_open(self):
        # A sample recorded exactly at t1 contributes nothing: it only
        # takes effect from t1, which is outside [t0, t1).
        t = StateTrace("p")
        t.record(0, 2.0)
        t.record(10, 100.0)
        assert t.integral(0, 10) == pytest.approx(20.0)
        # ...while the value prevailing at t0 is charged from t0 on.
        assert t.integral(10, 12) == pytest.approx(200.0)

    def test_integral_adjacent_windows_tile_exactly(self):
        t = StateTrace("p")
        t.record(0, 2.0)
        t.record(7, 4.0)
        t.record(13, 1.0)
        assert t.integral(0, 7) + t.integral(7, 20) == pytest.approx(
            t.integral(0, 20)
        )
        assert t.integral(3, 13) + t.integral(13, 16) == pytest.approx(
            t.integral(3, 16)
        )

    def test_final_value(self):
        t = StateTrace("p")
        assert t.final_value == 0.0
        t.record(0, 2.0)
        t.record(10, 4.0)
        assert t.final_value == 4.0
        assert t.final_value == t.value_at(10_000)

    def test_as_arrays_round_trip(self):
        t = StateTrace("p")
        t.record(0, 1.0)
        t.record(10, 2.5)
        times, values = t.as_arrays()
        assert times.dtype == np.int64
        assert values.dtype == np.float64
        assert list(times) == [0, 10]
        assert list(values) == [1.0, 2.5]

    def test_as_arrays_are_copies(self):
        t = StateTrace("p")
        t.record(0, 1.0)
        times, values = t.as_arrays()
        times[0] = 99
        values[0] = 99.0
        assert t.times == [0]
        assert t.values == [1.0]

    def test_as_arrays_empty(self):
        times, values = StateTrace("p").as_arrays()
        assert len(times) == 0
        assert len(values) == 0

    def test_mean(self):
        t = StateTrace("p")
        t.record(0, 2.0)
        t.record(10, 4.0)
        assert t.mean(0, 20) == pytest.approx(3.0)

    def test_max_value(self):
        t = StateTrace("p")
        assert t.max_value() == 0.0
        t.record(0, 2.0)
        t.record(5, 9.0)
        t.record(10, 1.0)
        assert t.max_value() == 9.0

    def test_resample(self):
        t = StateTrace("p")
        t.record(0, 1.0)
        t.record(10, 2.0)
        out = t.resample(np.array([0, 5, 10, 15]))
        assert list(out) == [1.0, 1.0, 2.0, 2.0]

    def test_iteration_yields_samples(self):
        t = StateTrace("p")
        t.record(0, 1.0)
        t.record(10, 2.0)
        assert list(t) == [(0, 1.0), (10, 2.0)]


class TestTraceRecorder:
    def test_record_and_lookup(self):
        r = TraceRecorder()
        r.record("power/1", 0, 5.0)
        assert "power/1" in r
        assert r["power/1"].value_at(0) == 5.0

    def test_get_missing_returns_none(self):
        r = TraceRecorder()
        assert r.get("nope") is None

    def test_sum_at_with_prefix(self):
        r = TraceRecorder()
        r.record("power/1", 0, 5.0)
        r.record("power/2", 0, 7.0)
        r.record("freq/1", 0, 100.0)
        assert r.sum_at(0, prefix="power/") == pytest.approx(12.0)

    def test_aggregate_prefix_series(self):
        r = TraceRecorder()
        r.record("power/1", 0, 1.0)
        r.record("power/2", 10, 2.0)
        out = r.aggregate("power/", np.array([0, 10]))
        assert list(out) == [1.0, 3.0]

    def test_names_sorted(self):
        r = TraceRecorder()
        r.record("b", 0, 1.0)
        r.record("a", 0, 1.0)
        assert r.names() == ["a", "b"]
