"""Tests for campaign execution: determinism, caching, and resume.

The load-bearing property is bit-identity — fanning units over worker
processes must produce byte-for-byte the results of a serial run,
including under injected faults and with the runtime sanitizer armed.
The cache/resume tests pin the transparency contract: a warm store
means zero re-executed units, a partial store means exactly the
missing ones, and a lying executor is caught by the verification pass.
"""

import dataclasses
from concurrent.futures import Executor, ProcessPoolExecutor

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.campaign import (
    CampaignError,
    CampaignSpec,
    CampaignStore,
    canonical_json,
    run_campaign,
)
from repro.campaign.executor import execute_unit
from repro.campaign.spec import encode_config
from repro.core.config import plain_one_way, preferred_embodiment
from repro.core.runner import run_trials, trial_seeds
from repro.obs.runtime import observing


def convergence_spec(**overrides):
    kwargs = dict(
        name="exec-test",
        kind="convergence",
        trials=2,
        base_seed=3,
        axes=(("mode", ("1-way", "4-way")),),
        params={"d": 3, "threshold": 1.5},
        config=encode_config(plain_one_way()),
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def fingerprint(run):
    return canonical_json(run.results)


class TestBitIdentity:
    def test_parallel_matches_serial(self, tmp_path):
        spec = convergence_spec()
        serial = run_campaign(spec, workers=1)
        parallel = run_campaign(spec, workers=4)
        assert fingerprint(parallel) == fingerprint(serial)
        assert parallel.verified >= 1

    def test_parallel_matches_serial_with_fault_plan(self):
        # Fault injection draws from a seeded decision stream; worker
        # fan-out must reproduce it exactly (drop + mid-run tile kill).
        spec = CampaignSpec(
            name="exec-faults",
            kind="convergence",
            trials=2,
            base_seed=7,
            axes=(("rate", (0.0, 0.05)),),
            params={
                "d": 4,
                "threshold": 1.5,
                "max_cycles": 500_000,
                "kill_tile": 8,
                "kill_at": 100,
            },
            config=encode_config(preferred_embodiment()),
        )
        serial = run_campaign(spec, workers=1)
        parallel = run_campaign(spec, workers=2)
        assert fingerprint(parallel) == fingerprint(serial)
        # The kill actually happened: coins were reconciled somewhere.
        assert any(r["coins_reconciled"] > 0 for r in serial.results)

    def test_parallel_matches_serial_under_sanitizer(self, monkeypatch):
        # The invariant sanitizer must neither fire nor perturb results
        # when armed inside worker processes.
        spec = convergence_spec(trials=1)
        serial = run_campaign(spec, workers=1)
        monkeypatch.setenv("BLITZCOIN_SANITIZE", "1")
        sanitized = run_campaign(spec, workers=2)
        assert fingerprint(sanitized) == fingerprint(serial)

    def test_centralized_kind_parallel_matches_serial(self):
        spec = CampaignSpec(
            name="exec-centralized",
            kind="centralized",
            trials=2,
            base_seed=7,
            axes=(("rate", (0.0, 0.05)),),
            params={"d": 4, "max_cycles": 200_000},
        )
        serial = run_campaign(spec, workers=1)
        parallel = run_campaign(spec, workers=2)
        assert fingerprint(parallel) == fingerprint(serial)

    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        d=st.sampled_from((2, 3)),
        trials=st.integers(min_value=1, max_value=2),
        base_seed=st.integers(min_value=0, max_value=50),
        seed_rule=st.sampled_from(("stride", "spawn")),
    )
    def test_property_parallel_is_serial(self, d, trials, base_seed, seed_rule):
        spec = convergence_spec(
            trials=trials,
            base_seed=base_seed,
            seed_rule=seed_rule,
            params={"d": d, "threshold": 1.5},
        )
        serial = run_campaign(spec, workers=1)
        with ProcessPoolExecutor(max_workers=2) as pool:
            parallel = run_campaign(spec, executor=pool)
        assert fingerprint(parallel) == fingerprint(serial)


class TestCacheAndResume:
    def test_second_run_is_pure_cache_hit(self, tmp_path):
        spec = convergence_spec()
        store = CampaignStore(tmp_path)
        first = run_campaign(spec, store=store)
        assert (first.cached, first.executed) == (0, first.total)
        second = run_campaign(spec, store=store)
        assert (second.cached, second.executed) == (second.total, 0)
        assert fingerprint(second) == fingerprint(first)

    def test_resume_executes_only_missing_units(self, tmp_path):
        spec = convergence_spec()
        store = CampaignStore(tmp_path)
        full = run_campaign(spec, store=store)
        # Simulate an interrupted campaign: two artifacts never landed.
        victims = spec.units()[1:3]
        for unit in victims:
            store.unit_path(spec, unit).unlink()
        resumed = run_campaign(spec, store=store)
        assert resumed.executed == len(victims)
        assert resumed.cached == full.total - len(victims)
        assert fingerprint(resumed) == fingerprint(full)
        assert store.scan(spec).complete

    def test_fresh_discards_cache(self, tmp_path):
        spec = convergence_spec()
        store = CampaignStore(tmp_path)
        run_campaign(spec, store=store)
        rerun = run_campaign(spec, store=store, fresh=True)
        assert rerun.cached == 0
        assert rerun.executed == rerun.total

    def test_corrupted_artifact_fails_loudly(self, tmp_path):
        from repro.campaign import StoreError

        spec = convergence_spec()
        store = CampaignStore(tmp_path)
        run_campaign(spec, store=store)
        store.unit_path(spec, spec.units()[0]).write_text("{torn")
        with pytest.raises(StoreError, match="campaign clean"):
            run_campaign(spec, store=store)

    def test_manifest_records_completion(self, tmp_path):
        spec = convergence_spec()
        store = CampaignStore(tmp_path)
        run_campaign(spec, store=store)
        doc = store.load_manifest(spec)
        assert doc["complete"] is True
        assert doc["executed"] == 4
        assert store.results_path(spec).exists()

    def test_progress_callback_sees_every_unit(self, tmp_path):
        spec = convergence_spec()
        store = CampaignStore(tmp_path)
        run_campaign(spec, store=store)
        seen = []
        run_campaign(
            spec,
            store=store,
            progress=lambda done, total, unit, cached: seen.append(
                (done, total, cached)
            ),
        )
        assert len(seen) == 4
        assert all(cached for _, _, cached in seen)


class _LyingExecutor(Executor):
    """An executor that corrupts every result it returns."""

    def map(self, fn, *iterables, **kwargs):
        for args in zip(*iterables):
            result = fn(*args)
            result["cycles"] = -1  # bit-flip the payload
            yield result

    def submit(self, fn, *args, **kwargs):  # pragma: no cover - unused
        raise NotImplementedError

    def shutdown(self, wait=True, **kwargs):
        pass


class TestVerification:
    def test_lying_executor_is_caught(self):
        spec = convergence_spec(trials=1)
        with pytest.raises(CampaignError, match="determinism violation"):
            run_campaign(spec, executor=_LyingExecutor(), verify_units=1)

    def test_verification_can_be_disabled(self):
        spec = convergence_spec(trials=1)
        run = run_campaign(spec, executor=_LyingExecutor(), verify_units=0)
        assert run.verified == 0
        assert all(r["cycles"] == -1 for r in run.results)


class TestObsIntegration:
    def test_counters_account_for_every_unit(self, tmp_path):
        spec = convergence_spec()
        store = CampaignStore(tmp_path)
        with observing() as session:
            run_campaign(spec, store=store)
        reg = session.registry
        assert reg.value("campaign.units_total", campaign=spec.name) == 4
        assert reg.value("campaign.units_executed", campaign=spec.name) == 4
        assert reg.value("campaign.units_remaining", campaign=spec.name) == 0
        with observing() as session:
            run_campaign(spec, store=store)
        assert (
            session.registry.value(
                "campaign.units_cached", campaign=spec.name
            )
            == 4
        )


class TestGrouping:
    def test_grouped_results_follow_sweep_order(self):
        spec = convergence_spec()
        run = run_campaign(spec)
        groups = run.grouped()
        assert len(groups) == 2
        assert all(len(g) == spec.trials for g in groups)
        assert groups[0] == run.point_results(0)
        # Group contents line up with direct in-process execution.
        unit = run.units[0]
        assert canonical_json(groups[0][0]) == canonical_json(
            execute_unit(spec, unit)
        )


class TestRunTrialsExecutor:
    """The injectable-executor seam under the legacy run_trials API."""

    def test_trial_seeds_ladder(self):
        assert trial_seeds(3, base_seed=3, stride=1000) == [3000, 3001, 3002]

    def test_run_trials_parallel_matches_serial(self):
        config = plain_one_way()
        serial = run_trials(3, config, 2, base_seed=3, threshold=1.5)
        with ProcessPoolExecutor(max_workers=2) as pool:
            parallel = run_trials(
                3, config, 2, base_seed=3, threshold=1.5, executor=pool
            )
        assert [canonical_json(dataclasses.asdict(r)) for r in parallel] == [
            canonical_json(dataclasses.asdict(r)) for r in serial
        ]
