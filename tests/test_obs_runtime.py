"""Tests for the obs runtime fast flag and the kernel profiling hook."""

import pytest

from repro.obs import (
    NullSink,
    ObsError,
    Observation,
    install,
    runtime,
    uninstall,
)
from repro.obs.profile import KernelProfile, callback_site
from repro.obs.runtime import enabled, observing
from repro.sim.kernel import Simulator


class TestInstall:
    def test_default_is_disabled(self):
        assert runtime.sink is None
        assert not enabled()

    def test_install_uninstall_round_trip(self):
        sink = NullSink()
        assert install(sink) is sink
        assert enabled()
        assert uninstall() is sink
        assert not enabled()

    def test_double_install_rejected(self):
        install(NullSink())
        try:
            with pytest.raises(ObsError):
                install(NullSink())
        finally:
            uninstall()

    def test_uninstall_when_empty_returns_none(self):
        assert uninstall() is None


class TestObserving:
    def test_scopes_sink_to_with_block(self):
        with observing() as session:
            assert runtime.sink is session
        assert runtime.sink is None

    def test_uninstalls_on_exception(self):
        with pytest.raises(RuntimeError):
            with observing():
                raise RuntimeError("boom")
        assert runtime.sink is None

    def test_accepts_prebuilt_session(self):
        session = Observation(label="mine")
        with observing(session) as active:
            assert active is session


class TestKernelProfiling:
    def test_kernel_reports_events_when_enabled(self):
        sim = Simulator()

        def tick() -> None:
            pass

        with observing() as session:
            sim.schedule(5, tick)
            sim.schedule(9, tick)
            sim.run()
        assert session.profile.events_total == 2
        (site, count), = session.profile.top()
        assert count == 2
        assert site.endswith("tick")

    def test_kernel_silent_when_disabled(self):
        sim = Simulator()
        sim.schedule(1, lambda: None)
        sim.run()  # nothing installed: must not raise or record anywhere
        assert runtime.sink is None


class TestCallbackSite:
    def test_module_and_qualname(self):
        def cb() -> None:
            pass

        site = callback_site(cb)
        assert site == f"{__name__}:TestCallbackSite.test_module_and_qualname.<locals>.cb"

    def test_object_without_qualname(self):
        class Callable0:
            def __call__(self) -> None:
                pass

        assert callback_site(Callable0()).endswith(":Callable0")


class TestProfileTable:
    def test_table_is_ranked_and_shares_sum(self):
        profile = KernelProfile()
        for _ in range(3):
            profile.on_event(0, callback_site)  # any callable works
        lines = profile.table(5)
        assert "100.0%" in lines[1]

    def test_empty_table(self):
        assert KernelProfile().table() == ["(no events profiled)"]
