"""Generator determinism, oracle verdicts, and coverage tokens.

These tests pin the fuzzer's core contracts: ``generate_scenario`` is
a pure function of ``(seed, index)``, the oracle battery is silent on
healthy runs and bit-stable across repeats, fault-free scenarios hold
the differential identities, and coverage tokenization is sorted and
deterministic.
"""

import pytest

from repro.fuzz.coverage import coverage_tokens, log2_bucket, new_tokens
from repro.fuzz.generate import generate_scenario
from repro.fuzz.oracles import (
    Failure,
    FuzzOutcome,
    execute_scenario,
    run_oracles,
)
from repro.fuzz.scenario import (
    EngineSection,
    FuzzError,
    Scenario,
    ScenarioEvent,
    SocSection,
)

SMALL = Scenario(
    kind="engine",
    seed=5,
    max_cycles=8_000,
    engine=EngineSection(dim=3, max_by_tile=(8,) * 9, pool=48),
)


class TestGenerator:
    def test_same_inputs_same_scenario(self):
        for i in range(6):
            assert (
                generate_scenario(9, i).scenario_hash
                == generate_scenario(9, i).scenario_hash
            )

    def test_different_indices_differ(self):
        hashes = {generate_scenario(9, i).scenario_hash for i in range(8)}
        assert len(hashes) == 8

    def test_kind_pinning(self):
        assert generate_scenario(1, 0, kind="engine").kind == "engine"
        assert generate_scenario(1, 0, kind="soc").kind == "soc"
        with pytest.raises(ValueError, match="unknown scenario kind"):
            generate_scenario(1, 0, kind="quantum")

    def test_generated_scenarios_validate_and_round_trip(self):
        for i in range(10):
            s = generate_scenario(3, i)
            assert Scenario.from_json(s.to_json()) == s


class TestExecution:
    def test_execution_is_bit_stable(self):
        a = execute_scenario(SMALL)
        b = execute_scenario(SMALL)
        assert a.fingerprint == b.fingerprint
        assert a.counters == b.counters

    def test_events_change_the_fingerprint(self):
        stepped = SMALL.with_events(
            (ScenarioEvent(cycle=1_000, kind="set_max", tile=4, value=32),)
        )
        assert (
            execute_scenario(stepped).fingerprint
            != execute_scenario(SMALL).fingerprint
        )

    def test_healthy_run_passes_all_oracles(self):
        outcome = run_oracles(SMALL)
        assert outcome.ok
        assert outcome.failures == ()

    def test_differential_identities_hold_on_null_plan(self):
        # observed, unobserved, and uninjected runs all agree
        observed = execute_scenario(SMALL, observed=True, inject=True)
        silent = execute_scenario(SMALL, observed=False, inject=True)
        bare = execute_scenario(SMALL, observed=False, inject=False)
        assert observed.fingerprint == silent.fingerprint == bare.fingerprint

    def test_hang_detected_as_failure(self):
        impossible = Scenario(
            kind="soc",
            seed=2,
            max_cycles=5_000,
            soc=SocSection(
                preset="3x3",
                budget_mw=120,
                tasks=(("a", "FFT", 10_000_000, (), None),),
            ),
        )
        outcome = run_oracles(impossible)
        assert "hang:workload" in outcome.failure_keys

    def test_soc_run_produces_pm_coverage(self):
        s = generate_scenario(11, 2)  # known soc-kind from the smoke seed
        assert s.kind == "soc"
        outcome = run_oracles(s)
        assert any(t.startswith("ctr:") for t in outcome.coverage)
        assert f"kind:soc:{s.variant}" in outcome.coverage


class TestFailureRecords:
    def test_round_trip(self):
        f = Failure(oracle="monitor", key="monitor:starvation", detail="x")
        assert Failure.from_dict(f.to_dict()) == f

    def test_missing_field_rejected(self):
        with pytest.raises(FuzzError, match="malformed failure"):
            Failure.from_dict({"oracle": "monitor"})


class TestCoverage:
    def test_log2_buckets(self):
        assert [log2_bucket(n) for n in (0, 1, 2, 3, 4, 8, 1000)] == [
            0, 1, 2, 2, 3, 4, 10,
        ]

    def test_tokens_sorted_and_deterministic(self):
        execution = execute_scenario(SMALL)
        tokens = coverage_tokens(SMALL, execution)
        assert tokens == tuple(sorted(tokens))
        assert tokens == coverage_tokens(SMALL, execution)
        assert f"kind:engine:{SMALL.variant}" in tokens

    def test_new_tokens_does_not_mutate_seen(self):
        seen = {"a"}
        fresh = new_tokens(seen, ("a", "b", "c"))
        assert fresh == ["b", "c"]
        assert seen == {"a"}

    def test_outcome_failure_keys(self):
        outcome = FuzzOutcome(
            fingerprint="f",
            failures=(
                Failure(oracle="hang", key="hang:workload", detail=""),
            ),
            coverage=(),
            counters={},
        )
        assert not outcome.ok
        assert outcome.failure_keys == ("hang:workload",)
