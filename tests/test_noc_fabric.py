"""Tests for packets and the two NoC fidelities."""

import pytest

from repro.noc.behavioral import BehavioralNoc
from repro.noc.packet import MessageType, Packet, PacketStats, Plane
from repro.noc.router import CycleNoc
from repro.noc.topology import MeshTopology
from repro.sim.kernel import Simulator


class TestPacket:
    def test_coin_message_classification(self):
        assert MessageType.COIN_STATUS.is_coin_message
        assert MessageType.COIN_UPDATE.is_coin_message
        assert MessageType.COIN_REQUEST.is_coin_message
        assert not MessageType.PM_POLL.is_coin_message

    def test_default_plane_is_mmio(self):
        p = Packet(src=0, dst=1, msg_type=MessageType.COIN_STATUS)
        assert p.plane is Plane.MMIO_IRQ

    def test_invalid_flits_rejected(self):
        with pytest.raises(ValueError):
            Packet(src=0, dst=1, msg_type=MessageType.DMA, size_flits=0)

    def test_latency_requires_delivery(self):
        p = Packet(src=0, dst=1, msg_type=MessageType.DMA)
        assert p.latency is None
        p.injected_at = 5
        p.delivered_at = 9
        assert p.latency == 4

    def test_uids_are_unique(self):
        a = Packet(src=0, dst=1, msg_type=MessageType.DMA)
        b = Packet(src=0, dst=1, msg_type=MessageType.DMA)
        assert a.uid != b.uid


class TestPacketStats:
    def test_counting_by_type(self):
        stats = PacketStats()
        for _ in range(3):
            stats.on_inject(Packet(src=0, dst=1, msg_type=MessageType.COIN_STATUS))
        stats.on_inject(Packet(src=0, dst=1, msg_type=MessageType.PM_POLL))
        assert stats.injected == 4
        assert stats.coin_packets == 3


class TestBehavioralNoc:
    def test_delivery_invokes_handler(self, sim, mesh_3x3):
        noc = BehavioralNoc(sim, mesh_3x3)
        got = []
        noc.attach(8, got.append)
        noc.send(Packet(src=0, dst=8, msg_type=MessageType.COIN_STATUS))
        sim.run()
        assert len(got) == 1
        assert got[0].dst == 8

    def test_latency_is_hops_plus_router_delay(self, sim, mesh_3x3):
        noc = BehavioralNoc(sim, mesh_3x3)
        assert noc.latency(0, 8) == 1 + 4  # router_delay + 4 hops
        assert noc.latency(0, 0) == 1

    def test_multi_flit_serialization(self, sim, mesh_3x3):
        noc = BehavioralNoc(sim, mesh_3x3)
        assert noc.latency(0, 1, size_flits=4) == noc.latency(0, 1) + 3

    def test_delivery_time_matches_latency(self, sim, mesh_3x3):
        noc = BehavioralNoc(sim, mesh_3x3)
        got = []
        noc.attach(8, lambda p: got.append(sim.now))
        noc.send(Packet(src=0, dst=8, msg_type=MessageType.DMA))
        sim.run()
        assert got == [noc.latency(0, 8)]

    def test_unattached_destination_drops_silently(self, sim, mesh_3x3):
        noc = BehavioralNoc(sim, mesh_3x3)
        noc.send(Packet(src=0, dst=5, msg_type=MessageType.DMA))
        sim.run()
        assert noc.stats.delivered == 1  # counted, handler absent

    def test_stats_latency_accounting(self, sim, mesh_3x3):
        noc = BehavioralNoc(sim, mesh_3x3)
        noc.attach(2, lambda p: None)
        noc.send(Packet(src=0, dst=2, msg_type=MessageType.DMA))
        sim.run()
        assert noc.stats.mean_latency == noc.latency(0, 2)

    def test_invalid_parameters_rejected(self, sim, mesh_3x3):
        with pytest.raises(ValueError):
            BehavioralNoc(sim, mesh_3x3, hop_cycles=0)
        with pytest.raises(ValueError):
            BehavioralNoc(sim, mesh_3x3, router_delay=-1)


class TestCycleNoc:
    def _make(self):
        sim = Simulator()
        topo = MeshTopology(4, 4)
        return sim, CycleNoc(sim, topo)

    def test_uncontended_delivery_roughly_one_cycle_per_hop(self):
        sim, noc = self._make()
        got = []
        noc.attach(15, lambda p: got.append(sim.now))
        noc.send(Packet(src=0, dst=15, msg_type=MessageType.DMA))
        sim.run()
        hops = noc.topology.hop_distance(0, 15)
        assert got, "packet was not delivered"
        assert hops <= got[0] <= hops + 3

    def test_contention_serializes_packets(self):
        sim, noc = self._make()
        times = []
        noc.attach(3, lambda p: times.append(sim.now))
        # Two packets sharing the full 0->3 route, injected together.
        noc.send(Packet(src=0, dst=3, msg_type=MessageType.DMA))
        noc.send(Packet(src=0, dst=3, msg_type=MessageType.DMA))
        sim.run()
        assert len(times) == 2
        assert times[1] > times[0]

    def test_distinct_planes_do_not_contend(self):
        sim, noc = self._make()
        times = []
        noc.attach(3, lambda p: times.append(sim.now))
        noc.send(Packet(src=0, dst=3, msg_type=MessageType.DMA, plane=Plane.DMA_TO_MEM))
        noc.send(
            Packet(
                src=0,
                dst=3,
                msg_type=MessageType.REGISTER_ACCESS,
                plane=Plane.MMIO_IRQ,
            )
        )
        sim.run()
        assert len(times) == 2
        assert times[0] == times[1]

    def test_all_packets_eventually_delivered_under_load(self):
        sim, noc = self._make()
        delivered = []
        for t in range(16):
            noc.attach(t, lambda p: delivered.append(p.uid))
        for src in range(16):
            for dst in range(16):
                if src != dst:
                    noc.send(Packet(src=src, dst=dst, msg_type=MessageType.DMA))
        sim.run()
        assert len(delivered) == 16 * 15

    def test_link_utilization_reported(self):
        sim, noc = self._make()
        noc.attach(3, lambda p: None)
        noc.send(Packet(src=0, dst=3, msg_type=MessageType.DMA))
        sim.run()
        assert 0.0 < noc.link_utilization(sim.now) <= 1.0
