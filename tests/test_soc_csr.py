"""Tests for the NoC-domain socket CSR interface (Section IV-B)."""

import pytest

from repro.core.config import preferred_embodiment
from repro.core.engine import CoinExchangeEngine
from repro.dvfs.oscillator import RingOscillator
from repro.noc.behavioral import BehavioralNoc
from repro.noc.topology import MeshTopology
from repro.power.characterization import get_curve
from repro.sim.kernel import Simulator
from repro.soc.csr import (
    EXCHANGES,
    HAS_COINS,
    INTERVAL,
    MAX_COINS,
    RO_TUNE,
    STATUS,
    THERMAL_CAP,
    CAP_CLEAR_SENTINEL,
    CsrError,
    CsrMaster,
    CsrSlave,
    attach_csrs,
)


@pytest.fixture
def system():
    """A 3x3 engine with CSRs attached and a CPU-side master at tile 0.

    Tile 0 is left unmanaged so the CPU master owns its NoC port.
    """
    topo = MeshTopology(3, 3)
    sim = Simulator()
    noc = BehavioralNoc(sim, topo)
    managed = list(range(1, 9))
    max_vec = [0] + [8] * 8
    initial = [0] + [8] * 8
    engine = CoinExchangeEngine(
        sim,
        noc,
        preferred_embodiment(),
        max_vec,
        initial,
        managed_tiles=managed,
    )
    oscillators = {t: RingOscillator(get_curve("FFT")) for t in managed}
    slaves = attach_csrs(engine, oscillators)
    master = CsrMaster(noc, cpu_tile=0)
    engine.start()
    return sim, engine, slaves, master, oscillators


class TestCsrSlave:
    def test_reads_live_state(self, system):
        sim, engine, slaves, master, _ = system
        slave = slaves[4]
        assert slave.read(HAS_COINS) == engine.coins(4).has
        assert slave.read(MAX_COINS) == 8
        assert slave.read(INTERVAL) == engine.fsm[4].interval
        assert slave.read(EXCHANGES) == engine.fsm[4].exchange_count

    def test_status_bits(self, system):
        sim, engine, slaves, master, _ = system
        status = slaves[4].read(STATUS)
        assert status in (0, 1, 2, 3)

    def test_write_max_retargets_tile(self, system):
        sim, engine, slaves, master, _ = system
        slaves[4].write(MAX_COINS, 32)
        assert engine.coins(4).max == 32

    def test_write_thermal_cap_and_clear(self, system):
        sim, engine, slaves, master, _ = system
        slaves[4].write(THERMAL_CAP, 10)
        assert engine.cap_overrides[4] == 10
        assert slaves[4].read(THERMAL_CAP) == 10
        slaves[4].write(THERMAL_CAP, CAP_CLEAR_SENTINEL)
        assert 4 not in engine.cap_overrides

    def test_write_ro_tune(self, system):
        sim, engine, slaves, master, oscillators = system
        slaves[4].write(RO_TUNE, 3)
        assert oscillators[4].tune_code == 3

    def test_read_only_register_rejects_write(self, system):
        sim, engine, slaves, master, _ = system
        with pytest.raises(CsrError):
            slaves[4].write(HAS_COINS, 99)

    def test_unmapped_offset_rejected(self, system):
        sim, engine, slaves, master, _ = system
        with pytest.raises(CsrError):
            slaves[4].read(0x1000)
        with pytest.raises(CsrError):
            slaves[4].write(0x1000, 1)

    def test_unmanaged_tile_rejected(self, system):
        sim, engine, slaves, master, _ = system
        with pytest.raises(CsrError):
            CsrSlave(engine, 0)


class TestCsrOverNoc:
    def test_remote_read(self, system):
        sim, engine, slaves, master, _ = system
        got = []
        master.read(4, MAX_COINS, got.append)
        sim.run_for(100)
        assert got == [8]

    def test_remote_write_takes_effect(self, system):
        sim, engine, slaves, master, _ = system
        acks = []
        master.write(4, MAX_COINS, 24, acks.append)
        sim.run_for(100)
        assert engine.coins(4).max == 24
        assert acks == [24]

    def test_remote_cap_write_changes_exchange_behaviour(self, system):
        sim, engine, slaves, master, _ = system
        master.write(4, THERMAL_CAP, 4)
        sim.run_for(50_000)
        # Capped at 4: the tile cannot accumulate beyond its cap even
        # though its fair share is ~8.
        assert engine.coins(4).has <= 4

    def test_coin_exchange_still_works_with_csrs_attached(self, system):
        """The dispatcher must not starve the BlitzCoin FSM."""
        sim, engine, slaves, master, _ = system
        engine.set_max(4, 0)
        sim.run_for(60_000)
        engine.check_conservation()
        assert engine.coins(4).has <= 1

    def test_concurrent_reads_resolve_by_req_id(self, system):
        sim, engine, slaves, master, _ = system
        got = {}
        master.read(4, MAX_COINS, lambda v: got.__setitem__("a", v))
        master.read(5, MAX_COINS, lambda v: got.__setitem__("b", v))
        sim.run_for(200)
        assert got == {"a": 8, "b": 8}
