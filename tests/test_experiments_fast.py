"""Tests for the cheap (analytic) experiment drivers: Figs. 1, 13, 21,
Table I structure, and the formatting helpers."""

import pytest

from repro.experiments import (
    fig01_scalability,
    fig13_power_curves,
    fig21_scaling,
    table1,
)


class TestFig01:
    def test_curves_cover_strategies_and_tws(self):
        r = fig01_scalability.run()
        assert set(r.response_us) == {
            "SW-centralized",
            "HW-centralized",
            "Decentralized",
        }
        assert set(r.interval_us) == set(fig01_scalability.T_W_VALUES_US)

    def test_decentralized_supports_most_accelerators(self):
        r = fig01_scalability.run()
        for t_w in fig01_scalability.T_W_VALUES_US:
            dec = r.n_max[("Decentralized", t_w)]
            hw = r.n_max[("HW-centralized", t_w)]
            sw = r.n_max[("SW-centralized", t_w)]
            assert dec > hw > sw

    def test_sw_centralized_cannot_reach_10_tiles_at_20ms(self):
        # The Fig. 1 anchor: the red curve fails before N = 10-15 for
        # T_w <= 20 ms.
        r = fig01_scalability.run()
        assert r.n_max[("SW-centralized", 20_000.0)] < 16

    def test_decentralized_handles_100_tiles_at_millisecond_tw(self):
        r = fig01_scalability.run()
        assert r.n_max[("Decentralized", 2_000.0)] > 100

    def test_format_rows(self):
        rows = fig01_scalability.format_rows(fig01_scalability.run())
        assert len(rows) == 9


class TestFig13:
    def test_all_six_curves_present(self):
        r = fig13_power_curves.run()
        assert len(r.curves) == 6

    def test_power_spread_is_large(self):
        # The heterogeneity motivation: multi-x spread in peak power.
        r = fig13_power_curves.run()
        assert r.dynamic_range() > 4.0

    def test_monotone_power_in_voltage(self):
        r = fig13_power_curves.run()
        for c in r.curves.values():
            powers = [p for _, _, p in c.samples]
            assert powers == sorted(powers)

    def test_format_rows(self):
        rows = fig13_power_curves.format_rows(fig13_power_curves.run())
        assert len(rows) == 7


class TestFig21:
    def test_paper_constants_reproduce_headlines(self):
        r = fig21_scaling.run()
        # BC supports 5.7-13.3x more accelerators than BC-C / C-RR and
        # 3.2-6.2x more than TS (Section VI-D).
        for t_w in r.t_w_values_us:
            assert 3.0 < r.n_max_advantage(t_w, "BC-C") < 20.0
            assert 3.0 < r.n_max_advantage(t_w, "C-RR") < 20.0
            assert 2.0 < r.n_max_advantage(t_w, "TS") < 10.0

    def test_pt_comparison_present(self):
        r = fig21_scaling.run()
        assert len(r.pt_n_max) == len(r.t_w_values_us)
        for t_w in r.t_w_values_us:
            assert r.n_max_advantage(t_w, "PT") > 1.0

    def test_measured_taus_override_paper(self):
        r = fig21_scaling.run(
            measured_responses={"BC": [(6, 0.6), (13, 1.0)]}
        )
        assert r.models["BC"].tau_us != fig21_scaling.run().models["BC"].tau_us

    def test_pm_fraction_monotone_in_n(self):
        r = fig21_scaling.run()
        for scheme, series in r.pm_fraction.items():
            assert series == sorted(series)

    def test_format_rows_nonempty(self):
        rows = fig21_scaling.format_rows(fig21_scaling.run())
        assert len(rows) >= 8


class TestTable1Structure:
    def test_rows_without_rerunning_fig18(self):
        # Inject a lightweight stand-in for the Fig. 18 result.
        class FakeFig18:
            def mean_response_us(self, scheme):
                return {"BC": 0.7, "BC-C": 6.0, "C-RR": 8.0}[scheme]

        r = table1.run(FakeFig18())
        ordered = r.ordered()
        assert [row.strategy for row in ordered][:3] == [
            "BlitzCoin",
            "BlitzCoin-Centralized",
            "Round robin",
        ]
        assert ordered[0].dvfs_levels == 64
        assert ordered[0].scaling == "O(sqrt(N))"
        rows = table1.format_rows(r)
        assert len(rows) == 6
