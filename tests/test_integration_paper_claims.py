"""Integration tests asserting the paper's headline result shapes.

These run small but complete end-to-end experiments (reduced trial
counts / grid sizes) and check *who wins and by roughly what factor* —
the reproduction contract of the benchmark harness, enforced in CI.
"""

import statistics

import pytest

from repro.baselines.tokensmart import run_tokensmart_trial
from repro.core.config import preferred_embodiment
from repro.core.runner import run_convergence_trial
from repro.experiments.soc_runs import run_soc_workload
from repro.soc.pm import PMKind
from repro.soc.presets import soc_3x3, soc_6x6_chip
from repro.workloads.apps import (
    autonomous_vehicle_parallel,
    pm_cluster_workload,
)


def mean_cycles(results):
    xs = [r.cycles for r in results if r.converged]
    assert xs, "no converged trials"
    return statistics.mean(xs)


class TestConvergenceScaling:
    def test_blitzcoin_scales_sublinearly_in_n(self):
        """Section III-B: convergence time ~ sqrt(N), so growing N by 9x
        should grow time far less than 9x."""
        cfg = preferred_embodiment()
        small = mean_cycles(
            [run_convergence_trial(4, cfg, seed=s, threshold=1.5) for s in range(4)]
        )
        large = mean_cycles(
            [run_convergence_trial(12, cfg, seed=s, threshold=1.5) for s in range(4)]
        )
        assert large / small < 9.0

    def test_blitzcoin_beats_tokensmart_at_scale(self):
        """Fig. 4: BC converges much faster than TS on larger SoCs."""
        d = 12
        bc = mean_cycles(
            [
                run_convergence_trial(
                    d, preferred_embodiment(), seed=s, threshold=1.5
                )
                for s in range(4)
            ]
        )
        ts = mean_cycles(
            [run_tokensmart_trial(d, seed=s, threshold=1.5) for s in range(4)]
        )
        assert ts / bc > 2.0


class TestSocHeadlines:
    @pytest.fixture(scope="class")
    def runs_3x3(self):
        out = {}
        for kind in (
            PMKind.BLITZCOIN,
            PMKind.BLITZCOIN_CENTRAL,
            PMKind.ROUND_ROBIN,
        ):
            out[kind.value] = run_soc_workload(
                soc_3x3(), autonomous_vehicle_parallel(), kind, 120.0
            )
        return out

    def test_every_scheme_enforces_the_cap(self, runs_3x3):
        for name, result in runs_3x3.items():
            assert result.peak_power_mw() <= 1.10 * 120.0, name

    def test_bc_throughput_beats_crr(self, runs_3x3):
        speedup = (
            runs_3x3["C-RR"].makespan_us / runs_3x3["BC"].makespan_us
        )
        assert speedup > 1.10  # paper: 25-34%

    def test_bc_not_slower_than_bcc(self, runs_3x3):
        ratio = runs_3x3["BC-C"].makespan_us / runs_3x3["BC"].makespan_us
        assert ratio > 0.97

    def test_bc_response_much_faster_than_centralized(self, runs_3x3):
        bc = runs_3x3["BC"].mean_response_us
        assert bc < runs_3x3["BC-C"].mean_response_us / 1.5
        assert bc < runs_3x3["C-RR"].mean_response_us / 1.5

    def test_bc_and_bcc_utilize_budget_better_than_crr(self, runs_3x3):
        assert (
            runs_3x3["BC"].average_power_mw()
            > runs_3x3["C-RR"].average_power_mw()
        )


class TestSiliconHeadlines:
    def test_pm_cluster_budget_enforced_with_high_utilization(self):
        result = run_soc_workload(
            soc_6x6_chip(), pm_cluster_workload(7), PMKind.BLITZCOIN, 180.0
        )
        assert result.peak_power_mw() <= 1.05 * 180.0
        assert result.budget_utilization() > 0.75  # paper: 97%

    def test_bc_beats_static_allocation(self):
        bc = run_soc_workload(
            soc_6x6_chip(), pm_cluster_workload(7), PMKind.BLITZCOIN, 180.0
        )
        static = run_soc_workload(
            soc_6x6_chip(), pm_cluster_workload(7), PMKind.STATIC, 180.0
        )
        assert static.makespan_us / bc.makespan_us > 1.05

    def test_sub_microsecond_scale_response_on_pm_cluster(self):
        result = run_soc_workload(
            soc_6x6_chip(), pm_cluster_workload(7), PMKind.BLITZCOIN, 180.0
        )
        finite = [r for r in result.response_times_cycles]
        assert finite
        # Paper: 0.68 us measured; allow a few us in the behavioral model.
        assert min(finite) * 1.25e-3 < 3.0  # cycles -> us at 800 MHz
