"""Tests for error metrics and incremental tracking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import ErrorTracker, global_error, worst_tile_error


class TestGlobalError:
    def test_perfect_allocation_has_zero_error(self):
        assert global_error([6, 6, 6], [8, 8, 8]) == 0.0

    def test_proportional_allocation_has_zero_error(self):
        # alpha = 12/24 = 0.5 ; targets 4, 8 exactly met.
        assert global_error([4, 8], [8, 16]) == 0.0

    def test_known_imbalance(self):
        # alpha = 1.0 over equal tiles; errors |2-1| = |0-1| = 1.
        assert global_error([2, 0], [1, 1]) == pytest.approx(1.0)

    def test_zero_max_counts_held_coins_as_error(self):
        assert global_error([4, 0], [0, 0]) == pytest.approx(2.0)

    def test_empty_vectors(self):
        assert global_error([], []) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            global_error([1], [1, 2])


class TestWorstTileError:
    def test_worst_error_is_max(self):
        # alpha = 6/12 = 0.5 -> targets 2, 4 ; errors 2 and 2.
        assert worst_tile_error([4, 2], [4, 8]) == pytest.approx(2.0)

    def test_zero_for_fair_state(self):
        assert worst_tile_error([2, 4], [4, 8]) == 0.0


class TestErrorTracker:
    def test_matches_batch_computation(self):
        has = [5, 0, 7, 0]
        max_ = [8, 8, 8, 8]
        tracker = ErrorTracker(has, max_, pool=sum(has), threshold=0.1)
        assert tracker.error == pytest.approx(global_error(has, max_))

    def test_incremental_update_matches_batch(self):
        has = [5, 0, 7, 0]
        max_ = [8, 8, 8, 8]
        tracker = ErrorTracker(has, max_, pool=12, threshold=0.1)
        tracker.update_has(0, 3, now=10)
        tracker.update_has(1, 2, now=11)
        assert tracker.error == pytest.approx(
            global_error([3, 2, 7, 0], max_)
        )

    def test_convergence_stamped_at_crossing_time(self):
        tracker = ErrorTracker([12, 0], [8, 8], pool=12, threshold=1.0)
        assert not tracker.is_converged
        tracker.update_has(0, 6, now=50)
        tracker.update_has(1, 6, now=55)
        assert tracker.is_converged
        assert tracker.converged_at == 55

    def test_already_converged_at_init(self):
        tracker = ErrorTracker([6, 6], [8, 8], pool=12, threshold=1.0)
        assert tracker.is_converged
        assert tracker.converged_at == 0

    def test_max_change_restarts_convergence(self):
        tracker = ErrorTracker([6, 6], [8, 8], pool=12, threshold=1.0)
        assert tracker.is_converged
        tracker.update_max(1, 0, now=100)  # tile 1 goes idle
        assert not tracker.is_converged
        tracker.update_has(0, 12, now=140)
        tracker.update_has(1, 0, now=141)
        assert tracker.converged_at == 141

    def test_alpha_uses_fixed_pool(self):
        tracker = ErrorTracker([12, 0], [8, 8], pool=12, threshold=0.5)
        assert tracker.alpha == pytest.approx(12 / 16)
        # Coins in flight do not change alpha.
        tracker.update_has(0, 10, now=5)
        assert tracker.alpha == pytest.approx(12 / 16)

    def test_per_tile_error_snapshot(self):
        tracker = ErrorTracker([12, 0], [8, 8], pool=12, threshold=0.5)
        per = tracker.per_tile_error()
        assert per[0] == pytest.approx(12 - 6)
        assert per[1] == pytest.approx(6)

    def test_target_for(self):
        tracker = ErrorTracker([12, 0], [8, 8], pool=12, threshold=0.5)
        assert tracker.target_for(0) == pytest.approx(6.0)

    def test_worst_error(self):
        tracker = ErrorTracker([12, 0], [8, 8], pool=12, threshold=0.5)
        assert tracker.worst_error() == pytest.approx(6.0)

    @given(
        st.lists(st.integers(0, 50), min_size=2, max_size=8),
        st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_incremental_equals_batch_property(self, has, data):
        max_ = data.draw(
            st.lists(
                st.integers(1, 32), min_size=len(has), max_size=len(has)
            )
        )
        pool = sum(has)
        tracker = ErrorTracker(has, max_, pool=pool, threshold=0.01)
        current = list(has)
        for _ in range(5):
            tid = data.draw(st.integers(0, len(has) - 1))
            val = data.draw(st.integers(-5, 60))
            current[tid] = val
            tracker.update_has(tid, val, now=1)
        # The tracker's alpha uses the fixed pool, not the (possibly
        # drifted) sum of the current vector.
        alpha = pool / sum(max_)
        expected = sum(
            abs(h - alpha * m) for h, m in zip(current, max_)
        ) / len(has)
        assert tracker.error == pytest.approx(expected, abs=1e-9)
