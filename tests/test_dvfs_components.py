"""Tests for the individual DVFS blocks: LDO, RO, TDC, PID, LUT."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dvfs.ldo import DigitalLdo, LdoError
from repro.dvfs.lut import CoinLut
from repro.dvfs.oscillator import RingOscillator
from repro.dvfs.pid import PidController
from repro.dvfs.tdc import CounterTdc
from repro.power.characterization import get_curve


class TestDigitalLdo:
    def test_code_voltage_mapping_endpoints(self):
        ldo = DigitalLdo(v_out_min=0.5, v_out_max=0.98, n_codes=64)
        assert ldo.v_for_code(0) == pytest.approx(0.5)
        assert ldo.v_for_code(63) == pytest.approx(0.98)

    def test_code_for_v_roundtrip(self):
        ldo = DigitalLdo()
        for code in (0, 17, 42, 63):
            assert ldo.code_for_v(ldo.v_for_code(code)) == code

    def test_code_out_of_range_rejected(self):
        ldo = DigitalLdo(n_codes=64)
        with pytest.raises(LdoError):
            ldo.v_for_code(64)

    def test_exponential_settle_toward_target(self):
        ldo = DigitalLdo(tau_cycles=80.0)
        ldo.set_code(63, now=0)
        v1 = ldo.v_out(40)
        v2 = ldo.v_out(400)
        assert v1 < v2 <= ldo.v_target + 1e-9

    def test_settled_after_settle_cycles(self):
        ldo = DigitalLdo()
        ldo.set_code(63, now=0)
        t = ldo.settle_cycles(tolerance_v=0.005)
        assert abs(ldo.v_out(t) - ldo.v_target) <= 0.005 + 1e-9

    def test_retarget_mid_settle_starts_from_current_voltage(self):
        ldo = DigitalLdo()
        ldo.set_code(63, now=0)
        v_mid = ldo.v_out(40)
        ldo.set_code(0, now=40)
        assert ldo.v_out(40) == pytest.approx(v_mid)

    def test_time_backwards_rejected(self):
        ldo = DigitalLdo()
        ldo.set_code(10, now=100)
        with pytest.raises(LdoError):
            ldo.v_out(50)

    def test_linear_regulator_efficiency(self):
        ldo = DigitalLdo(v_in=1.0)
        ldo.set_code(0, now=0)
        v = ldo.v_out(10_000)
        assert ldo.efficiency(10_000) == pytest.approx(v / 1.0)
        assert ldo.input_power_mw(10.0, 10_000) == pytest.approx(10.0 / v)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(LdoError):
            DigitalLdo(v_out_min=0.9, v_out_max=0.8)
        with pytest.raises(LdoError):
            DigitalLdo(n_codes=1)


class TestRingOscillator:
    def test_frequency_tracks_voltage(self):
        osc = RingOscillator(get_curve("FFT"))
        assert osc.frequency_hz(0.9) > osc.frequency_hz(0.6)

    def test_replica_runs_below_critical_path(self):
        osc = RingOscillator(get_curve("FFT"), tracking_margin=0.97)
        curve = get_curve("FFT")
        for v in (0.5, 0.7, 1.0):
            assert osc.frequency_hz(v) <= curve.f_max_at(v)

    def test_tune_code_trims_frequency(self):
        osc = RingOscillator(get_curve("FFT"))
        osc.set_tune_code(0)
        lo = osc.frequency_hz(0.8)
        osc.set_tune_code(osc.tune_steps - 1)
        hi = osc.frequency_hz(0.8)
        assert hi > lo

    def test_tune_code_clamped(self):
        osc = RingOscillator(get_curve("FFT"))
        osc.set_tune_code(999)
        assert osc.tune_code == osc.tune_steps - 1

    def test_v_for_frequency_inverts(self):
        osc = RingOscillator(get_curve("FFT"))
        f = osc.frequency_hz(0.75)
        assert osc.v_for_frequency(f) == pytest.approx(0.75, abs=1e-6)

    def test_v_for_frequency_clamps_at_rails(self):
        osc = RingOscillator(get_curve("FFT"))
        assert osc.v_for_frequency(0.0) == osc.curve.spec.v_min
        assert osc.v_for_frequency(1e12) == osc.curve.spec.v_max

    def test_invalid_margin_rejected(self):
        with pytest.raises(ValueError):
            RingOscillator(get_curve("FFT"), tracking_margin=0.4)


class TestCounterTdc:
    def test_resolution(self):
        tdc = CounterTdc(f_ref_hz=800e6, window_ref_cycles=64)
        assert tdc.resolution_hz == pytest.approx(12.5e6)

    def test_count_quantizes_down(self):
        tdc = CounterTdc(f_ref_hz=800e6, window_ref_cycles=64)
        assert tdc.count(100e6) == 8
        assert tdc.count(99e6) == 7

    def test_roundtrip_within_one_lsb(self):
        tdc = CounterTdc()
        f = 443.7e6
        assert abs(tdc.quantized(f) - f) < tdc.resolution_hz

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            CounterTdc(window_ref_cycles=0)
        tdc = CounterTdc()
        with pytest.raises(ValueError):
            tdc.count(-1.0)

    @given(st.floats(0, 1e9))
    @settings(max_examples=100, deadline=None)
    def test_quantization_error_bounded_property(self, f):
        tdc = CounterTdc()
        assert 0 <= f - tdc.quantized(f) < tdc.resolution_hz


class TestPidController:
    def test_proportional_response(self):
        pid = PidController(kp=1.0, ki=0.0, kd=0.0)
        assert pid.step(5.0) == pytest.approx(5.0)

    def test_integral_accumulates(self):
        pid = PidController(kp=0.0, ki=1.0, kd=0.0)
        pid.step(2.0)
        assert pid.step(2.0) == pytest.approx(4.0)

    def test_derivative_sees_error_change(self):
        pid = PidController(kp=0.0, ki=0.0, kd=1.0)
        pid.step(1.0)
        assert pid.step(3.0) == pytest.approx(2.0)

    def test_output_clamped(self):
        pid = PidController(kp=10.0, out_min=0.0, out_max=5.0)
        assert pid.step(100.0) == 5.0

    def test_anti_windup_releases_quickly(self):
        pid = PidController(kp=0.0, ki=1.0, out_min=-5.0, out_max=5.0)
        for _ in range(50):
            pid.step(10.0)  # saturating high
        # One negative error should immediately pull the output down.
        out = pid.step(-10.0)
        assert out < 5.0

    def test_reset_clears_history(self):
        pid = PidController(kp=0.0, ki=1.0)
        pid.step(3.0)
        pid.reset()
        assert pid.step(1.0) == pytest.approx(1.0)

    def test_bias_feedforward(self):
        pid = PidController(kp=1.0, ki=0.0, kd=0.0)
        assert pid.step(1.0, bias=10.0) == pytest.approx(11.0)

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            PidController(out_min=5.0, out_max=1.0)


class TestCoinLut:
    def test_monotonic(self):
        lut = CoinLut(get_curve("FFT"), coin_value_mw=1.0)
        assert lut.verify_monotonic()

    def test_entry_power_budget_respected(self):
        curve = get_curve("FFT")
        lut = CoinLut(curve, coin_value_mw=1.0)
        for coins in (5, 20, 40, 63):
            f = lut.frequency_for(coins)
            if f > 0:
                assert curve.power_at_f(f) <= coins * 1.0 + 1e-6

    def test_negative_coins_map_to_zero(self):
        lut = CoinLut(get_curve("FFT"), coin_value_mw=1.0)
        assert lut.frequency_for(-5) == lut.frequency_for(0)

    def test_overflow_coins_clamp_to_top_entry(self):
        lut = CoinLut(get_curve("FFT"), coin_value_mw=1.0)
        assert lut.frequency_for(200) == lut.frequency_for(63)

    def test_full_entitlement_reaches_f_max(self):
        curve = get_curve("FFT")
        lut = CoinLut(curve, coin_value_mw=curve.p_max_mw / 40)
        assert lut.frequency_for(63) == pytest.approx(curve.spec.f_max_hz)

    def test_power_budget_for(self):
        lut = CoinLut(get_curve("FFT"), coin_value_mw=2.0)
        assert lut.power_budget_for(10) == pytest.approx(20.0)
        assert lut.power_budget_for(-3) == 0.0

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            CoinLut(get_curve("FFT"), coin_value_mw=0.0)
        with pytest.raises(ValueError):
            CoinLut(get_curve("FFT"), coin_value_mw=1.0, n_entries=1)
