"""Tests for the centralized controller (C-RR / BC-C)."""

import pytest

from repro.baselines.centralized import (
    CentralizedScheme,
    ControllerTiming,
    ProportionalPolicy,
    RoundRobinPolicy,
)
from repro.noc.behavioral import BehavioralNoc
from repro.noc.topology import MeshTopology
from repro.sim.kernel import Simulator


class TestRoundRobinPolicy:
    def test_grants_rotate(self):
        policy = RoundRobinPolicy({1: 1.0, 2: 1.0, 3: 1.0})
        p_max = {1: 50.0, 2: 50.0, 3: 50.0}
        first = policy.allocate(p_max, 55.0)
        second = policy.allocate(p_max, 55.0)
        granted_first = {t for t, p in first.items() if p > 40}
        granted_second = {t for t, p in second.items() if p > 40}
        assert granted_first != granted_second

    def test_budget_respected(self):
        policy = RoundRobinPolicy({1: 1.0, 2: 1.0, 3: 1.0})
        targets = policy.allocate({1: 50.0, 2: 50.0, 3: 50.0}, 80.0)
        assert sum(targets.values()) <= 80.0 + 1e-9

    def test_floor_above_budget_degrades_proportionally(self):
        policy = RoundRobinPolicy({1: 30.0, 2: 40.0})
        targets = policy.allocate({1: 100.0, 2: 100.0}, 35.0)
        assert sum(targets.values()) == pytest.approx(35.0)

    def test_clamped_grant_when_headroom_substantial(self):
        # One big tile alone: it gets the headroom, not nothing.
        policy = RoundRobinPolicy({1: 2.0})
        targets = policy.allocate({1: 176.0}, 60.0)
        assert targets[1] == pytest.approx(60.0)

    def test_tiny_grants_skipped(self):
        # Headroom below 25% of p_max buys almost no progress: skip.
        policy = RoundRobinPolicy({1: 2.0, 2: 2.0})
        targets = policy.allocate({1: 50.0, 2: 400.0}, 56.0)
        assert targets[1] == pytest.approx(50.0)
        assert targets[2] == pytest.approx(2.0)

    def test_empty_allocation(self):
        policy = RoundRobinPolicy({})
        assert policy.allocate({}, 100.0) == {}


class TestProportionalPolicy:
    def test_same_fraction(self):
        policy = ProportionalPolicy()
        targets = policy.allocate({1: 100.0, 2: 50.0}, 75.0)
        assert targets[1] == pytest.approx(50.0)
        assert targets[2] == pytest.approx(25.0)

    def test_clamped_at_max(self):
        policy = ProportionalPolicy()
        targets = policy.allocate({1: 10.0}, 100.0)
        assert targets[1] == pytest.approx(10.0)


class TestControllerTiming:
    def test_defaults_valid(self):
        t = ControllerTiming()
        assert t.poll_overhead > 0

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            ControllerTiming(poll_overhead=-1)
        with pytest.raises(ValueError):
            ControllerTiming(idle_period=0)


class TestCentralizedScheme:
    def _build(self, policy=None):
        sim = Simulator()
        topo = MeshTopology(3, 3)
        noc = BehavioralNoc(sim, topo)
        applied = {}
        capability = lambda tid: 50.0
        scheme = CentralizedScheme(
            sim,
            noc,
            controller_tile=0,
            managed_tiles=[1, 2, 4],
            policy=policy or ProportionalPolicy(),
            budget_mw=90.0,
            capability=capability,
            apply_target=lambda tid, p: applied.__setitem__(tid, p),
        )
        return sim, scheme, applied

    def test_periodic_loop_applies_targets(self):
        sim, scheme, applied = self._build()
        scheme.start()
        sim.run(until=20_000)
        assert set(applied) == {1, 2, 4}

    def test_activity_change_triggers_loop_and_response(self):
        sim, scheme, applied = self._build()
        scheme.start()
        sim.run(until=10_000)
        n_before = len(scheme.response_times)
        scheme.on_activity_change(4)
        sim.run(until=sim.now + 30_000)
        assert len(scheme.response_times) > n_before

    def test_response_time_scales_with_managed_count(self):
        """The O(N) loop: doubling tiles roughly doubles the response."""

        def measure(n_tiles):
            sim = Simulator()
            topo = MeshTopology(5, 5)
            noc = BehavioralNoc(sim, topo)
            scheme = CentralizedScheme(
                sim,
                noc,
                0,
                list(range(1, 1 + n_tiles)),
                ProportionalPolicy(),
                100.0,
                capability=lambda tid: 10.0,
                apply_target=lambda tid, p: None,
            )
            scheme.start()
            sim.run(until=5_000)
            scheme.on_activity_change(1)
            sim.run(until=sim.now + 200_000)
            return scheme.response_times[-1]

        r6 = measure(6)
        r12 = measure(12)
        assert 1.5 < r12 / r6 < 3.0

    def test_double_start_rejected(self):
        sim, scheme, _ = self._build()
        scheme.start()
        with pytest.raises(RuntimeError):
            scheme.start()

    def test_decreases_applied_before_increases(self):
        """Cap safety: the set sequence ramps tiles down first."""
        sim = Simulator()
        topo = MeshTopology(3, 3)
        noc = BehavioralNoc(sim, topo)
        order = []
        state = {"phase": 0}

        def capability(tid):
            if state["phase"] == 0:
                return 50.0 if tid == 1 else 0.0
            return 50.0 if tid == 2 else 0.0

        scheme = CentralizedScheme(
            sim,
            noc,
            0,
            [1, 2],
            ProportionalPolicy(),
            50.0,
            capability=capability,
            apply_target=lambda tid, p: order.append((tid, p)),
        )
        scheme.start()
        sim.run(until=10_000)
        state["phase"] = 1
        scheme.on_activity_change(1)
        start = len(order)
        sim.run(until=sim.now + 20_000)
        new = order[start:]
        # Find the loop where tile 1 drops and tile 2 rises.
        drop_idx = next(
            i for i, (tid, p) in enumerate(new) if tid == 1 and p == 0.0
        )
        rise_idx = next(
            i for i, (tid, p) in enumerate(new) if tid == 2 and p > 0.0
        )
        assert drop_idx < rise_idx
