"""Tests for the fault injector and the NoC injection hooks.

Covers the determinism contract (counter-hash decisions, stream
position independent of outcomes), the runtime fast flag, and the
fabric-level semantics of each fault kind: drop, duplicate (sequence
filtered, never loss-notified), corrupt (CRC discard at the NI), and
delay.
"""

import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    LinkFaultRates,
    injecting,
    maybe_injecting,
)
from repro.faults import runtime as fault_runtime
from repro.noc.behavioral import BehavioralNoc
from repro.noc.packet import MessageType, Packet
from repro.noc.topology import MeshTopology
from repro.sim.kernel import Simulator


def make_packet(src=0, dst=1, msg_type=MessageType.COIN_REQUEST):
    return Packet(src=src, dst=dst, msg_type=msg_type)


def make_noc(d=3):
    sim = Simulator()
    noc = BehavioralNoc(sim, MeshTopology(d, d))
    return sim, noc


class TestInjectorDeterminism:
    def test_same_plan_same_stream(self):
        plan = FaultPlan.uniform(drop=0.3, delay=0.3, seed=7)
        a, b = FaultInjector(plan), FaultInjector(plan)
        verdicts_a = [a.decide(make_packet()) for _ in range(200)]
        verdicts_b = [b.decide(make_packet()) for _ in range(200)]
        assert verdicts_a == verdicts_b

    def test_reset_rewinds_the_stream(self):
        inj = FaultInjector(FaultPlan.uniform(drop=0.3, seed=7))
        first = [inj.decide(make_packet()) for _ in range(50)]
        inj.reset()
        again = [inj.decide(make_packet()) for _ in range(50)]
        assert first == again

    def test_different_seeds_differ(self):
        a = FaultInjector(FaultPlan.uniform(drop=0.3, seed=1))
        b = FaultInjector(FaultPlan.uniform(drop=0.3, seed=2))
        va = [a.decide(make_packet()) for _ in range(100)]
        vb = [b.decide(make_packet()) for _ in range(100)]
        assert va != vb

    def test_two_draws_per_consulted_packet(self):
        """Stream position must not depend on which faults fire."""
        inj = FaultInjector(FaultPlan.uniform(drop=0.5, seed=3))
        for k in range(1, 20):
            inj.decide(make_packet())
            assert inj.decisions == 2 * k

    def test_null_rates_consume_no_draws(self):
        inj = FaultInjector(FaultPlan())
        assert inj.decide(make_packet()) is None
        assert inj.decisions == 0

    def test_rates_are_honored_statistically(self):
        inj = FaultInjector(FaultPlan.uniform(drop=0.2, seed=11))
        n = 5000
        for _ in range(n):
            inj.decide(make_packet())
        assert inj.drops == pytest.approx(n * 0.2, rel=0.15)

    def test_link_override_scopes_faults(self):
        plan = FaultPlan(
            seed=5,
            link_overrides=((0, 1, LinkFaultRates(drop=1.0)),),
        )
        inj = FaultInjector(plan)
        assert inj.decide(make_packet(0, 1)) == ("drop", 0)
        assert inj.decide(make_packet(1, 0)) is None

    def test_delay_verdict_bounded(self):
        plan = FaultPlan.uniform(delay=1.0, max_delay_cycles=4, seed=9)
        inj = FaultInjector(plan)
        for _ in range(100):
            kind, extra = inj.decide(make_packet())
            assert kind == "delay"
            assert 1 <= extra <= 4


class TestRuntimeFlag:
    def test_install_uninstall(self):
        inj = FaultInjector(FaultPlan.uniform(drop=0.1))
        assert not fault_runtime.enabled()
        fault_runtime.install(inj)
        try:
            assert fault_runtime.enabled()
            assert fault_runtime.injector is inj
            with pytest.raises(FaultPlanError):
                fault_runtime.install(inj)  # double install
        finally:
            fault_runtime.uninstall()
        assert not fault_runtime.enabled()

    def test_injecting_context(self):
        with injecting(FaultPlan.uniform(drop=0.1)) as inj:
            assert fault_runtime.injector is inj
        assert fault_runtime.injector is None

    def test_maybe_injecting_none_is_a_no_op(self):
        with maybe_injecting(None) as inj:
            assert inj is None
            assert fault_runtime.injector is None


class TestFabricInjection:
    def attach_counter(self, noc, tid):
        received = []
        noc.attach(tid, received.append)
        return received

    def test_drop_discards_and_notifies(self):
        sim, noc = make_noc()
        received = self.attach_counter(noc, 1)
        losses = []
        noc.add_loss_listener(lambda p, reason: losses.append(reason))
        with injecting(FaultPlan.uniform(drop=1.0)):
            noc.send(make_packet(0, 1))
            sim.run_for(100)
        assert received == []
        assert noc.stats.discards_by_reason == {"drop": 1}
        assert losses == ["drop"]
        assert noc.stats.injected == 1
        assert noc.stats.delivered == 0

    def test_corrupt_discarded_at_destination(self):
        sim, noc = make_noc()
        received = self.attach_counter(noc, 1)
        losses = []
        noc.add_loss_listener(lambda p, reason: losses.append(reason))
        with injecting(FaultPlan.uniform(corrupt=1.0)):
            noc.send(make_packet(0, 1))
            sim.run_for(100)
        assert received == []
        assert noc.stats.discards_by_reason == {"corrupt": 1}
        assert losses == ["corrupt"]

    def test_duplicate_filtered_without_loss_notify(self):
        """The copy is discarded by the NI sequence filter and must NOT
        look like a loss — otherwise reconciliation would mint phantom
        coins."""
        sim, noc = make_noc()
        received = self.attach_counter(noc, 1)
        losses = []
        noc.add_loss_listener(lambda p, reason: losses.append(reason))
        with injecting(FaultPlan.uniform(duplicate=1.0)):
            noc.send(make_packet(0, 1))
            sim.run_for(100)
        assert len(received) == 1  # original delivered once
        assert noc.stats.injected == 2  # copy fully accounted
        assert noc.stats.discards_by_reason == {"duplicate": 1}
        assert losses == []

    def test_delay_postpones_delivery(self):
        sim, noc = make_noc()
        with injecting(FaultPlan.uniform(delay=1.0, max_delay_cycles=8)):
            received = self.attach_counter(noc, 1)
            noc.send(make_packet(0, 1))
            sim.run_for(200)
            delayed_at = noc.stats.delivered and sim.now
        assert delayed_at
        sim2, noc2 = make_noc()
        received2 = self.attach_counter(noc2, 1)
        noc2.send(make_packet(0, 1))
        sim2.run_for(200)
        assert len(received) == len(received2) == 1
        assert received[0].delivered_at > received2[0].delivered_at

    def test_dead_tile_discard_vs_never_attached(self):
        """Packets to a mark_dead tile are terminal losses; packets to
        a tile that never attached keep the legacy delivered-to-nobody
        accounting (centralized PM decorative traffic)."""
        sim, noc = make_noc()
        losses = []
        noc.add_loss_listener(lambda p, reason: losses.append(reason))
        noc.send(make_packet(0, 1))  # never attached
        sim.run_for(50)
        assert noc.stats.delivered == 1
        assert losses == []
        noc.mark_dead(2)
        noc.send(make_packet(0, 2))
        sim.run_for(50)
        assert noc.stats.delivered == 1
        assert noc.stats.discards_by_reason == {"dead-tile": 1}
        assert losses == ["dead-tile"]

    def test_mark_alive_restores_legacy_accounting(self):
        sim, noc = make_noc()
        noc.mark_dead(2)
        noc.mark_alive(2)
        noc.send(make_packet(0, 2))
        sim.run_for(50)
        assert noc.stats.delivered == 1
        assert noc.stats.discarded == 0

    def test_no_injector_means_no_faults(self):
        sim, noc = make_noc()
        received = self.attach_counter(noc, 1)
        for _ in range(20):
            noc.send(make_packet(0, 1))
        sim.run_for(200)
        assert len(received) == 20
        assert noc.stats.discarded == 0
