# blitzlint: scope=repro.core.coins
"""Fixture: violates rule C1 (coin integrality)."""


def fair_share(total, weight, sum_weights):
    share = total * weight / sum_weights
    if share == 0.0:
        return 0
    return share
