# blitzlint: scope=repro.noc.fixture_u1
"""Fixture: violates rule U1 (units)."""


def delivery_latency(src, dst):
    """Latency between two tiles."""
    return abs(src - dst)
