# blitzlint: scope=repro.sim.fixture_d2
"""Fixture: violates rule D2 (rng-taint) without tripping D1's sinks.

The entropy draw itself is D1-visible, but the *flows* are D2's job:
a wall-clock-derived value laundered through arithmetic into a
scheduling delay, and a hash-order-derived value used as a seed.
"""

import time


def schedule_jittered(sim, handler, tiles):
    stamp = time.time()
    jitter = int(stamp * 1000) % 17
    delay = jitter + 1
    sim.schedule(delay, handler)
    first = [t for t in {tid for tid in tiles}][0]
    rng = spawn_rng(first, 4)
    return rng
