# blitzlint: scope=repro.power.fixture_u2
"""Fixture: violates rule U2 (units-flow).

Adds milliwatts to joules, and returns joules from a function whose
docstring declares milliwatts.
"""


def budget_mw(static_mw, burst_j):
    """Total budget in mW."""
    mixed = static_mw + burst_j
    return burst_j
