# blitzlint: scope=repro.core.fixture_d1
"""Fixture: violates rule D1 (determinism) in several ways."""

import random

import numpy as np


def pick_partner(candidates):
    draw = np.random.random()
    choice = random.choice(list(candidates))
    for tid in set(candidates):  # unordered iteration in scheduling code
        if tid > draw:
            return tid
    return choice
