# blitzlint: scope=repro.campaign.fixture_p1
"""Fixture: violates rule P1 (parallel-safety).

A module-level results list mutated by the worker, a lambda submitted
to the pool (unpicklable under spawn), and a direct write to the
scoped observability runtime flag.
"""

from repro.obs import runtime as _obs

_RESULTS = []


def run_unit(unit):
    _RESULTS.append(unit)
    return len(_RESULTS)


def drive(pool, units):
    return list(pool.map(lambda u: run_unit(u), units))


def hijack_sink(sink):
    _obs.sink = sink  # bypasses install(): process-visible, unscoped
