# blitzlint: scope=repro.campaign.fixture_p1
"""Fixture: violates rule P1 (parallel-safety).

A module-level results list mutated by the worker, and a lambda
submitted to the pool (unpicklable under spawn).
"""

_RESULTS = []


def run_unit(unit):
    _RESULTS.append(unit)
    return len(_RESULTS)


def drive(pool, units):
    return list(pool.map(lambda u: run_unit(u), units))
