# blitzlint: scope=repro.core.fixture_c2
"""Fixture: violates rule C2 (coin-flow).

One path applies only the initiator's half of an exchange; the
partner's delta is dropped, so coins leak from the conserved sum.
"""


class LeakyEngine:
    def apply_exchange(self, result, src, dst):
        delta_src, delta_dst = result.deltas
        self._apply_delta(src, delta_src)
        if delta_dst > 0:
            self._apply_delta(dst, delta_dst)
        # negative partner deltas silently dropped: unbalanced path
