# blitzlint: scope=repro.core.fixture_s1
"""Fixture: violates rule S1 (state discipline)."""


class Handler:
    def __init__(self, fsm):
        self.fsm = fsm

    def on_status(self, packet):
        # Mutating a coin register straight from a packet handler,
        # bypassing the engine's _apply_delta mutation point.
        self.fsm.coins.has += packet.payload.delta
