"""BENCH_*.json artifact: schema, canonical bytes, threshold compare."""

import json

import pytest

from repro.campaign.spec import canonical_json
from repro.perf.artifact import (
    BENCH_SCHEMA,
    bench_artifact,
    bench_thresholds,
    compare_bench_artifacts,
    env_fingerprint,
    flat_bench_metrics,
    load_bench_artifact,
    strip_timing,
    validate_bench_artifact,
    write_bench_artifact,
)
from repro.perf.harness import BenchResult
from repro.perf.registry import PerfError


def _result(name="demo", per_rep=(0.01, 0.02, 0.03), **overrides):
    base = dict(
        name=name,
        units="seconds",
        params={"n": 4},
        reps=len(per_rep),
        warmup=1,
        metrics={"value": 8.0},
        counters={"engine.exchanges_initiated": 42},
        per_rep_s=list(per_rep),
        peak_rss_kb=1000,
        phases={"engine": 0.008, "harness": 0.002},
        profile_total_s=0.01,
    )
    base.update(overrides)
    return BenchResult(**base)


def _doc(**kw):
    return bench_artifact("core", [_result()], **kw)


class TestArtifact:
    def test_round_trip(self, tmp_path):
        doc = _doc()
        path = tmp_path / "BENCH_core.json"
        write_bench_artifact(doc, path)
        loaded = load_bench_artifact(path)
        assert loaded == json.loads(canonical_json(doc))
        assert loaded["schema"] == BENCH_SCHEMA
        assert loaded["benchmarks"][0]["timing"]["wall_s"]["min"] == 0.01

    def test_canonical_bytes_are_stable(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_bench_artifact(_doc(), a)
        write_bench_artifact(_doc(), b)
        assert a.read_bytes() == b.read_bytes()

    def test_identity_stable_across_runs_with_different_timing(self):
        # Same benchmark, different wall times: strip_timing must agree
        # byte-for-byte — the CI determinism check.
        run1 = bench_artifact("core", [_result(per_rep=(0.01, 0.02))])
        run2 = bench_artifact(
            "core",
            [_result(per_rep=(0.5, 0.9), peak_rss_kb=9999,
                     phases={"noc": 1.0}, profile_total_s=1.0)],
        )
        assert canonical_json(strip_timing(run1)) == canonical_json(
            strip_timing(run2)
        )
        # ...while the full artifacts of course differ.
        assert canonical_json(run1) != canonical_json(run2)

    def test_no_timestamps_anywhere(self):
        text = canonical_json(_doc())
        for needle in ("timestamp", "date", "created"):
            assert needle not in text

    def test_env_fingerprint_fields(self):
        env = env_fingerprint()
        assert set(env) >= {"python", "platform", "cpu_count", "git_sha"}
        assert env_fingerprint() == env  # stable within a process

    def test_empty_suite_rejected(self):
        with pytest.raises(PerfError, match="no benchmark results"):
            bench_artifact("core", [])

    def test_non_finite_metric_rejected(self):
        with pytest.raises(PerfError, match="non-finite"):
            bench_artifact(
                "core", [_result(metrics={"bad": float("inf")})]
            )


class TestValidation:
    def test_valid_doc_has_no_problems(self):
        assert validate_bench_artifact(_doc()) == []

    @pytest.mark.parametrize(
        "mutate, needle",
        [
            (lambda d: d.update(schema=99), "unsupported schema"),
            (lambda d: d.update(kind="report"), "kind"),
            (lambda d: d.update(suite=""), "suite"),
            (lambda d: d.update(env=None), "env"),
            (lambda d: d.update(benchmarks=[]), "benchmarks"),
            (
                lambda d: d["benchmarks"][0].pop("timing"),
                "timing",
            ),
            (
                lambda d: d["benchmarks"][0]["timing"].pop("wall_s"),
                "wall_s",
            ),
        ],
    )
    def test_defects_reported(self, mutate, needle):
        doc = _doc()
        mutate(doc)
        problems = validate_bench_artifact(doc)
        assert problems and needle in problems[0]

    def test_duplicate_benchmark_names_rejected(self):
        doc = bench_artifact("core", [_result(), _result()])
        assert any(
            "duplicate" in p for p in validate_bench_artifact(doc)
        )

    def test_load_rejects_corrupt_and_missing(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(PerfError, match="corrupt"):
            load_bench_artifact(bad)
        with pytest.raises(PerfError, match="not found"):
            load_bench_artifact(tmp_path / "absent.json")
        wrong = tmp_path / "wrong.json"
        wrong.write_text('{"schema": 1, "kind": "report"}')
        with pytest.raises(PerfError, match="invalid"):
            load_bench_artifact(wrong)

    def test_write_refuses_invalid(self, tmp_path):
        with pytest.raises(PerfError, match="refusing"):
            write_bench_artifact({"schema": 99}, tmp_path / "x.json")


class TestCompare:
    def test_flat_metrics_shape(self):
        flat = flat_bench_metrics(_doc())
        assert flat["demo.wall_s.min"] == 0.01
        assert flat["demo.peak_rss_kb"] == 1000.0
        assert flat["demo.metrics.value"] == 8.0
        assert flat["demo.counters.engine.exchanges_initiated"] == 42.0
        assert flat["demo.phase_s.engine"] == 0.008
        assert flat["demo.reps"] == 3.0

    def test_self_compare_is_clean(self):
        doc = _doc()
        assert not compare_bench_artifacts(doc, doc).regressed

    def test_two_x_slowdown_regresses(self):
        base = _doc()
        slow = bench_artifact(
            "core", [_result(per_rep=(0.02, 0.04, 0.06))]
        )
        diff = compare_bench_artifacts(base, slow)
        regressed = {r.metric for r in diff.regressions}
        assert "demo.wall_s.median" in regressed
        # Identity metrics did not move, so they stay ok.
        assert "demo.metrics.value" not in regressed

    def test_timing_jitter_within_tolerance_is_ok(self):
        base = _doc()
        jitter = bench_artifact(
            "core", [_result(per_rep=(0.012, 0.024, 0.036))]  # +20%
        )
        assert not compare_bench_artifacts(base, jitter).regressed

    def test_identity_drift_regresses_exactly(self):
        base = _doc()
        drift = bench_artifact(
            "core",
            [_result(metrics={"value": 9.0},
                     counters={"engine.exchanges_initiated": 43})],
        )
        diff = compare_bench_artifacts(base, drift)
        regressed = {r.metric for r in diff.regressions}
        assert "demo.metrics.value" in regressed
        assert "demo.counters.engine.exchanges_initiated" in regressed

    def test_faster_is_improvement_not_regression(self):
        base = _doc()
        fast = bench_artifact(
            "core", [_result(per_rep=(0.002, 0.004, 0.006))]
        )
        diff = compare_bench_artifacts(base, fast)
        assert not diff.regressed
        assert any(
            r.metric.startswith("demo.wall_s") for r in diff.improvements
        )

    def test_suite_mismatch_rejected(self):
        a = bench_artifact("core", [_result()])
        b = bench_artifact("other", [_result()])
        with pytest.raises(PerfError, match="cannot compare"):
            compare_bench_artifacts(a, b)

    def test_thresholds_split_timing_from_identity(self):
        policy = bench_thresholds(
            ["x.wall_s.min", "x.phase_s.engine", "x.peak_rss_kb",
             "x.metrics.value", "x.counters.n"],
            wall_rel=0.5,
        )
        assert policy.rule_for("x.wall_s.min").rel == 0.5
        assert policy.rule_for("x.phase_s.engine").rel == 0.5
        assert policy.rule_for("x.peak_rss_kb").rel == 0.5
        assert policy.rule_for("x.metrics.value").rel == 0.0
        assert policy.rule_for("x.counters.n").rel == 0.0
