"""Tests for the Monte-Carlo experiment drivers at reduced scale.

These exercise the full driver plumbing (aggregation, formatting,
result accessors) with tiny dims/trials so they stay fast; the full
shape assertions live in the benchmark harness.
"""

import math

from repro.experiments import (
    fig03_convergence,
    fig04_tokensmart,
    fig06_dynamic_timing,
    fig07_random_pairing,
    fig08_heterogeneity,
)


class TestFig03Driver:
    def test_runs_and_aggregates(self):
        r = fig03_convergence.run(dims=(3, 5), trials=2)
        for technique in ("1-way", "4-way"):
            pts = r.curve(technique)
            assert [p.d for p in pts] == [3, 5]
            for p in pts:
                assert p.converged_fraction == 1.0
                assert p.mean_packets > 0
                assert math.isfinite(p.mean_cycles)

    def test_scaling_exponent_fit(self):
        r = fig03_convergence.run(dims=(4, 8, 12), trials=3)
        b = fig03_convergence.scaling_exponent(r.curve("1-way"))
        assert 0.2 < b < 3.0

    def test_format_rows_cover_all_points(self):
        r = fig03_convergence.run(dims=(3,), trials=1)
        assert len(fig03_convergence.format_rows(r)) == 2


class TestFig04Driver:
    def test_distribution_statistics(self):
        r = fig04_tokensmart.run(dims=(4,), trials=3)
        bc = r.points["BC"][0]
        ts = r.points["TS"][0]
        assert bc.median <= bc.p95
        assert ts.converged_fraction == 1.0
        assert r.speedup_at(4) > 0

    def test_format_rows(self):
        r = fig04_tokensmart.run(dims=(4,), trials=2)
        rows = fig04_tokensmart.format_rows(r)
        assert any("speedup" in row for row in rows)


class TestFig06Driver:
    def test_phase_packets_and_reduction(self):
        r = fig06_dynamic_timing.run(dims=(4,), trials=2)
        plain = r.points["plain"][0]
        dyn = r.points["dynamic"][0]
        assert plain.phase_cycles == dyn.phase_cycles
        assert r.packet_reduction_at(4) > 0.8

    def test_dynamic_config_isolates_the_variable(self):
        cfg = fig06_dynamic_timing.dynamic_config()
        assert cfg.dynamic_timing
        assert not cfg.wrap_around
        assert cfg.random_pairing_every == 0


class TestFig07Driver:
    def test_histograms_and_accessors(self):
        r = fig07_random_pairing.run(
            dims=(6,), trials=2, settle_cycles=40_000
        )
        with_rp = r.get(6, True)
        without = r.get(6, False)
        assert len(with_rp.worst_errors) == 2
        counts, edges = with_rp.histogram(bins=5)
        assert counts.sum() == 2
        assert 0.0 <= without.stuck_fraction <= 1.0

    def test_format_rows(self):
        r = fig07_random_pairing.run(dims=(6,), trials=1, settle_cycles=20_000)
        assert len(fig07_random_pairing.format_rows(r)) == 2


class TestFig08Driver:
    def test_grid_of_points(self):
        r = fig08_heterogeneity.run(
            dims=(4, 6), acc_types_values=(1, 4), trials=2
        )
        assert set(r.points) == {(4, 1), (4, 4), (6, 1), (6, 4)}
        series = r.series_for_acc_types(4)
        assert [p.d for p in series] == [4, 6]

    def test_heterogeneity_raises_start_error(self):
        r = fig08_heterogeneity.run(
            dims=(6,), acc_types_values=(1, 8), trials=3
        )
        errors = dict(r.start_error_by_acc_types(6))
        assert errors[8] > errors[1]
