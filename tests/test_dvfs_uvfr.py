"""Tests for the closed UVFR loop and the actuator wrappers."""

import pytest

from repro.dvfs.actuator import ConventionalDualLoop, TileActuator, build_uvfr_loop
from repro.power.characterization import get_curve
from repro.sim.kernel import Simulator


class TestUvfrLoop:
    def test_transition_reaches_target_within_tdc_lsb(self):
        loop = build_uvfr_loop(get_curve("FFT"))
        result = loop.transition(600e6)
        assert result.settled
        assert abs(result.final_frequency_hz - 600e6) < 2 * loop.tdc.resolution_hz

    def test_transition_latency_is_sub_two_microseconds(self):
        # Fig. 19 (bottom right): a UVFR clock step settles in ~1 us.
        loop = build_uvfr_loop(get_curve("FFT"))
        result = loop.transition(650e6)
        assert result.settled
        assert result.cycles < 1600  # < 2 us at 800 MHz

    def test_downward_transition(self):
        loop = build_uvfr_loop(get_curve("FFT"))
        loop.transition(700e6)
        result = loop.transition(400e6)
        assert result.settled
        assert result.final_frequency_hz < 450e6

    def test_voltage_tracks_frequency_target(self):
        loop = build_uvfr_loop(get_curve("FFT"))
        low = loop.transition(350e6).final_voltage
        high = loop.transition(750e6).final_voltage
        assert high > low

    def test_trajectory_is_recorded(self):
        loop = build_uvfr_loop(get_curve("FFT"))
        result = loop.transition(500e6)
        assert len(result.trajectory) == result.steps
        times = [s[0] for s in result.trajectory]
        assert times == sorted(times)

    def test_target_clamped_to_oscillator_range(self):
        loop = build_uvfr_loop(get_curve("FFT"))
        loop.set_target(10e9)
        assert loop.f_target_hz <= loop.oscillator.f_max_hz

    def test_negative_target_rejected(self):
        loop = build_uvfr_loop(get_curve("FFT"))
        with pytest.raises(ValueError):
            loop.set_target(-1.0)


class TestTileActuator:
    def test_frequency_lands_after_settle(self):
        sim = Simulator()
        act = TileActuator(sim, get_curve("FFT"), settle_cycles=100)
        act.set_frequency_target(500e6)
        assert act.f_current_hz == 0.0
        sim.run(until=99)
        assert act.f_current_hz == 0.0
        sim.run(until=101)
        assert act.f_current_hz == pytest.approx(500e6)

    def test_retarget_supersedes_pending_transition(self):
        sim = Simulator()
        act = TileActuator(sim, get_curve("FFT"), settle_cycles=100)
        act.set_frequency_target(500e6)
        sim.run(until=50)
        act.set_frequency_target(300e6)
        sim.run(until=200)
        assert act.f_current_hz == pytest.approx(300e6)

    def test_same_target_does_not_restart_settle(self):
        """Repeated identical targets must not postpone landing (the
        TokenSmart visit-storm bug)."""
        sim = Simulator()
        act = TileActuator(sim, get_curve("FFT"), settle_cycles=100)
        act.set_frequency_target(500e6)
        for t in (30, 60, 90):
            sim.run(until=t)
            act.set_frequency_target(500e6)
        sim.run(until=105)
        assert act.f_current_hz == pytest.approx(500e6)

    def test_change_callback_invoked(self):
        sim = Simulator()
        seen = []
        act = TileActuator(
            sim,
            get_curve("FFT"),
            settle_cycles=10,
            on_frequency_change=seen.append,
        )
        act.set_frequency_target(400e6)
        sim.run(until=20)
        assert seen == [pytest.approx(400e6)]

    def test_target_clamped_to_curve_max(self):
        sim = Simulator()
        act = TileActuator(sim, get_curve("FFT"), settle_cycles=1)
        act.set_frequency_target(5e9)
        sim.run(until=5)
        assert act.f_current_hz == pytest.approx(get_curve("FFT").spec.f_max_hz)

    def test_power_readout(self):
        sim = Simulator()
        act = TileActuator(sim, get_curve("FFT"), settle_cycles=1)
        act.set_frequency_target(get_curve("FFT").spec.f_max_hz)
        sim.run(until=5)
        assert act.power_mw(True) == pytest.approx(56.0, rel=1e-6)
        assert act.power_mw(False) == pytest.approx(
            get_curve("FFT").p_idle_mw
        )

    def test_default_settle_from_loop_physics(self):
        sim = Simulator()
        act = TileActuator(sim, get_curve("FFT"))
        # LDO settle plus a few TDC windows: hundreds of cycles, not
        # zero, not tens of thousands.
        assert 100 < act.settle_cycles < 3000


class TestConventionalDualLoop:
    def test_guardband_costs_power(self):
        conv = ConventionalDualLoop(get_curve("FFT"), guardband_v=0.05)
        overhead = conv.overhead_vs_uvfr(500e6)
        assert overhead > 0.03  # at least a few percent

    def test_no_guardband_no_overhead(self):
        conv = ConventionalDualLoop(get_curve("FFT"), guardband_v=0.0)
        assert conv.overhead_vs_uvfr(500e6) == pytest.approx(0.0, abs=1e-9)

    def test_voltage_clamped_at_vmax(self):
        curve = get_curve("FFT")
        conv = ConventionalDualLoop(curve, guardband_v=0.2)
        assert conv.voltage_for(curve.spec.f_max_hz) <= curve.spec.v_max

    def test_slower_than_uvfr_actuation(self):
        curve = get_curve("FFT")
        conv = ConventionalDualLoop(curve)
        sim = Simulator()
        uvfr_act = TileActuator(sim, curve)
        assert conv.settle_cycles() > uvfr_act.settle_cycles

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ConventionalDualLoop(get_curve("FFT"), guardband_v=-0.1)
