"""Production-shaped workload synthesis: diurnal multi-tenant arrivals,
bursty phase traces, and load-correlated fault plans.

Every generator here is a pure function of its arguments — the fuzzer
replays these traces, so determinism (same args, byte-identical trace)
is itself a tested contract, alongside the statistical shapes the
module exists to produce (diurnality, burstiness, peak-clustered
faults).
"""

import pytest

from repro.workloads.production import (
    Arrival,
    ArrivalTrace,
    ProductionError,
    bursty_phase_trace,
    correlated_fault_plan,
    diurnal_arrival_trace,
)


def trace_of(arrivals, horizon=100_000, n_tenants=3):
    return ArrivalTrace(
        arrivals=tuple(arrivals),
        horizon_cycles=horizon,
        n_tenants=n_tenants,
    )


def req(cycle, tenant=0, acc="FFT", work=10_000):
    return Arrival(
        cycle=cycle, tenant=tenant, acc_class=acc, work_cycles=work
    )


class TestArrivalValidation:
    def test_negative_cycle_rejected(self):
        with pytest.raises(ProductionError, match="cycle"):
            req(-1)

    def test_zero_work_rejected(self):
        with pytest.raises(ProductionError, match="work_cycles"):
            req(0, work=0)

    def test_empty_class_rejected(self):
        with pytest.raises(ProductionError, match="acc_class"):
            req(0, acc="")

    def test_arrival_beyond_horizon_rejected(self):
        with pytest.raises(ProductionError, match="beyond horizon"):
            trace_of([req(100_000)])

    def test_unknown_tenant_rejected(self):
        with pytest.raises(ProductionError, match="tenant"):
            trace_of([req(0, tenant=3)], n_tenants=3)

    def test_arrivals_are_canonically_sorted(self):
        a, b = req(500, tenant=1), req(20, tenant=0)
        assert trace_of([a, b]).arrivals == (b, a)
        assert trace_of([a, b]) == trace_of([b, a])


class TestArrivalTraceStatistics:
    def test_requests_per_tenant_includes_idle_tenants(self):
        trace = trace_of([req(0, tenant=1), req(10, tenant=1)])
        assert trace.requests_per_tenant() == {0: 0, 1: 2, 2: 0}

    def test_window_counts_partition_the_horizon(self):
        trace = trace_of([req(0), req(49_999), req(50_000), req(99_999)])
        assert trace.window_counts(2) == [2, 2]
        assert sum(trace.window_counts(7)) == 4

    def test_peak_to_mean_of_uniform_load_is_one(self):
        trace = trace_of([req(c, tenant=0) for c in range(0, 100_000, 25_000)])
        assert trace.peak_to_mean(4) == 1.0

    def test_peak_to_mean_of_empty_trace_is_zero(self):
        assert trace_of([]).peak_to_mean() == 0.0


class TestToTaskGraph:
    def test_dependent_mode_chains_each_tenant(self):
        trace = trace_of(
            [req(0, tenant=0), req(10, tenant=1), req(20, tenant=0)]
        )
        graph = trace.to_taskgraph(dependent=True)
        names = graph.topological_order()
        assert len(names) == 3
        # tenant 0's second request depends on its first; tenant 1's
        # lone request is a root (tenants are independent).
        deps = {n: graph[n].deps for n in names}
        roots = [n for n, d in deps.items() if not d]
        assert len(roots) == 2
        (chained,) = [n for n, d in deps.items() if d]
        assert deps[chained] == ("q0r0",)

    def test_independent_mode_has_no_edges(self):
        trace = trace_of([req(0), req(10), req(20)])
        graph = trace.to_taskgraph(dependent=False)
        assert all(not graph[n].deps for n in graph.topological_order())

    def test_empty_trace_cannot_build_a_graph(self):
        with pytest.raises(ProductionError, match="0 arrivals"):
            trace_of([]).to_taskgraph()


class TestDiurnalArrivalTrace:
    def test_deterministic(self):
        a = diurnal_arrival_trace(3, 200_000, seed=7)
        b = diurnal_arrival_trace(3, 200_000, seed=7)
        assert a == b

    def test_seed_changes_the_trace(self):
        a = diurnal_arrival_trace(3, 200_000, seed=7)
        b = diurnal_arrival_trace(3, 200_000, seed=8)
        assert a != b

    def test_respects_bounds(self):
        trace = diurnal_arrival_trace(
            4, 150_000, seed=3, mean_arrivals=80,
            work_range=(5_000, 9_000),
        )
        assert trace.n_tenants == 4
        for a in trace.arrivals:
            assert 0 <= a.cycle < 150_000
            assert 0 <= a.tenant < 4
            assert 5_000 <= a.work_cycles <= 9_000
            assert a.acc_class in ("FFT", "Viterbi", "NVDLA")

    def test_mean_arrivals_is_roughly_hit(self):
        trace = diurnal_arrival_trace(
            4, 400_000, seed=1, mean_arrivals=200
        )
        assert 120 <= len(trace.arrivals) <= 300

    def test_deep_trough_is_diurnal(self):
        """A near-zero trough must show clear peak-to-mean contrast."""
        trace = diurnal_arrival_trace(
            1, 600_000, seed=5, mean_arrivals=400, trough_ratio=0.05
        )
        assert trace.peak_to_mean(12) > 1.3

    def test_zero_mean_arrivals_is_an_empty_trace(self):
        trace = diurnal_arrival_trace(2, 10_000, seed=0, mean_arrivals=0)
        assert trace.arrivals == ()

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(n_tenants=0), "tenant"),
            (dict(horizon_cycles=0), "horizon"),
            (dict(mean_arrivals=-1), "mean_arrivals"),
            (dict(acc_classes=()), "accelerator class"),
            (dict(trough_ratio=0.0), "trough_ratio"),
            (dict(work_range=(0, 5)), "work range"),
            (dict(period_cycles=0), "period"),
        ],
    )
    def test_bad_parameters_rejected(self, kwargs, match):
        base = dict(n_tenants=2, horizon_cycles=10_000, seed=0)
        base.update(kwargs)
        n_tenants = base.pop("n_tenants")
        horizon = base.pop("horizon_cycles")
        with pytest.raises(ProductionError, match=match):
            diurnal_arrival_trace(n_tenants, horizon, **base)


class TestBurstyPhaseTrace:
    def test_deterministic_and_valid(self):
        a = bursty_phase_trace(6, 400_000, seed=2)
        b = bursty_phase_trace(6, 400_000, seed=2)
        assert a == b
        assert a.n_tiles == 6
        for when, tile, active in a.events:
            assert 0 <= when < 400_000
            assert 0 <= tile < 6
            assert isinstance(active, bool)

    def test_events_are_sorted(self):
        trace = bursty_phase_trace(4, 600_000, seed=9)
        assert list(trace.events) == sorted(trace.events)

    def test_bursts_are_denser_than_the_mean(self):
        """Activity flapping clusters: per-tile inter-event gaps are
        heavy-tailed (median flap-sized, mean dominated by the long
        silences) — the shape that stresses exchange back-off."""
        trace = bursty_phase_trace(
            8, 2_000_000, seed=4,
            burst_cycles=30_000.0, gap_cycles=400_000.0,
            flap_cycles=2_000.0,
        )
        gaps = []
        last = {}
        for when, tile, _active in trace.events:
            if tile in last:
                gaps.append(when - last[tile])
            last[tile] = when
        assert len(gaps) > 20
        gaps.sort()
        median = gaps[len(gaps) // 2]
        mean = sum(gaps) / len(gaps)
        assert mean > 4 * median

    def test_bad_parameters_rejected(self):
        with pytest.raises(ProductionError, match="n_tiles"):
            bursty_phase_trace(0, 1_000, seed=0)
        with pytest.raises(ProductionError, match="gap_cycles"):
            bursty_phase_trace(1, 1_000, seed=0, gap_cycles=0.0)


class TestCorrelatedFaultPlan:
    def busy_trace(self):
        # all load in the first eighth of the horizon
        return trace_of(
            [req(c, tenant=0) for c in range(0, 12_000, 400)],
            horizon=96_000, n_tenants=1,
        )

    def test_deterministic(self):
        t = self.busy_trace()
        a = correlated_fault_plan(t, 9, seed=3)
        assert a == correlated_fault_plan(t, 9, seed=3)

    def test_null_trace_yields_null_plan(self):
        plan = correlated_fault_plan(
            trace_of([], horizon=50_000), 9, seed=3
        )
        assert plan.is_null

    def test_kills_are_paired_with_revives(self):
        plan = correlated_fault_plan(
            self.busy_trace(), 9, seed=1,
            kill_fraction=1.0, outage_cycles=5_000,
        )
        kills = [e for e in plan.tile_events if e.action == "kill"]
        revives = [e for e in plan.tile_events if e.action == "revive"]
        assert kills, "fraction 1.0 over a busy window must kill"
        assert len(kills) == len(revives)
        for k in kills:
            assert any(
                r.tile == k.tile and r.cycle == k.cycle + 5_000
                for r in revives
            )

    def test_faults_cluster_at_the_peak(self):
        """With load confined to the first window, every fault lands
        there — correlation, not uniform scatter."""
        plan = correlated_fault_plan(
            self.busy_trace(), 9, seed=2,
            kill_fraction=1.0, coin_loss_fraction=1.0, n_windows=8,
        )
        window_span = 96_000 // 8
        originating = [
            e.cycle for e in plan.tile_events if e.action == "kill"
        ] + [e.cycle for e in plan.coin_loss_events]
        assert originating
        assert all(c < window_span for c in originating)

    def test_bad_parameters_rejected(self):
        t = self.busy_trace()
        with pytest.raises(ProductionError, match="kill_fraction"):
            correlated_fault_plan(t, 9, seed=0, kill_fraction=1.5)
        with pytest.raises(ProductionError, match="outage_cycles"):
            correlated_fault_plan(t, 9, seed=0, outage_cycles=0)
        with pytest.raises(ProductionError, match="n_tiles"):
            correlated_fault_plan(t, 0, seed=0)
