"""Tests for campaign specs: validation, hashing, and enumeration.

A CampaignSpec is the cache key of everything downstream — these tests
pin the properties the result store depends on: the canonical hash is
stable across JSON round-trips and dict ordering, unit hashes cover
exactly the inputs that determine a result (and *not* the campaign
name), and malformed specs fail loudly at construction time.
"""

import dataclasses
import json

import pytest

from repro.campaign import (
    CampaignSpec,
    SpecError,
    canonical_json,
    decode_config,
    encode_config,
    load_campaign_spec,
)
from repro.core.config import preferred_embodiment
from repro.faults.plan import FaultPlan


def small_spec(**overrides):
    kwargs = dict(
        name="unit-test",
        kind="convergence",
        trials=2,
        base_seed=3,
        axes=(("d", (3, 4)),),
        params={"threshold": 1.5},
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestValidation:
    def test_bad_name_rejected(self):
        with pytest.raises(SpecError, match="name"):
            small_spec(name="no spaces allowed")
        with pytest.raises(SpecError, match="name"):
            small_spec(name="")

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecError, match="kind"):
            small_spec(kind="quantum")

    def test_nonpositive_trials_rejected(self):
        with pytest.raises(SpecError, match="trials"):
            small_spec(trials=0)

    def test_unknown_seed_rule_rejected(self):
        with pytest.raises(SpecError, match="seed rule"):
            small_spec(seed_rule="dice")

    def test_unknown_axis_rejected(self):
        with pytest.raises(SpecError, match="sweepable"):
            small_spec(axes=(("d", (3,)), ("flux_capacitor", (1, 2))))

    def test_centralized_kind_has_narrower_knobs(self):
        # threshold is a BlitzCoin knob, meaningless for the baseline.
        with pytest.raises(SpecError, match="threshold"):
            CampaignSpec(
                name="c",
                kind="centralized",
                trials=1,
                params={"d": 4, "threshold": 1.5},
            )

    def test_duplicate_axis_values_rejected(self):
        # Duplicate values would collapse two points onto one unit hash.
        with pytest.raises(SpecError, match="duplicate"):
            small_spec(axes=(("d", (3, 3)),))

    def test_duplicate_axis_name_rejected(self):
        with pytest.raises(SpecError, match="duplicate axis"):
            small_spec(axes=(("d", (3,)), ("d", (4,))))

    def test_empty_axis_rejected(self):
        with pytest.raises(SpecError, match="no values"):
            small_spec(axes=(("d", ()),))

    def test_d_is_mandatory(self):
        with pytest.raises(SpecError, match="'d'"):
            small_spec(axes=(), params={"threshold": 1.5})

    def test_non_scalar_axis_value_rejected(self):
        with pytest.raises(SpecError, match="JSON scalar"):
            small_spec(axes=(("d", ((3, 4),)),))

    def test_scenario_descriptor_validated(self):
        with pytest.raises(SpecError, match="scenario"):
            small_spec(params={"threshold": 1.5, "scenario": {"kind": "odd"}})
        with pytest.raises(SpecError, match="seed"):
            small_spec(
                params={
                    "threshold": 1.5,
                    "scenario": {
                        "kind": "heterogeneous",
                        "acc_types": 4,
                        "seed": -1,
                    },
                }
            )

    def test_invalid_config_rejected_eagerly(self):
        with pytest.raises(SpecError, match="config"):
            small_spec(config={"no_such_field": 1})


class TestHashing:
    def test_hash_stable_across_json_roundtrip(self):
        spec = small_spec(config=encode_config(preferred_embodiment()))
        again = CampaignSpec.from_json(spec.to_json())
        assert again == spec
        assert again.spec_hash == spec.spec_hash

    def test_hash_independent_of_dict_insertion_order(self):
        a = small_spec(params={"threshold": 1.5, "max_cycles": 100_000})
        b = small_spec(params={"max_cycles": 100_000, "threshold": 1.5})
        assert a.spec_hash == b.spec_hash

    def test_hash_sensitive_to_every_sweep_input(self):
        base = small_spec()
        assert small_spec(trials=3).spec_hash != base.spec_hash
        assert small_spec(base_seed=4).spec_hash != base.spec_hash
        assert small_spec(axes=(("d", (3, 5)),)).spec_hash != base.spec_hash

    def test_unit_hash_excludes_campaign_name(self):
        # Renaming a campaign must not invalidate its cached results.
        a = small_spec(name="alpha").units()
        b = small_spec(name="beta").units()
        assert [u.unit_hash for u in a] == [u.unit_hash for u in b]

    def test_unit_hash_covers_config_params_seed(self):
        base = small_spec().units()[0]
        other_cfg = small_spec(
            config=encode_config(preferred_embodiment())
        ).units()[0]
        other_seed = small_spec(base_seed=4).units()[0]
        assert other_cfg.unit_hash != base.unit_hash
        assert other_seed.unit_hash != base.unit_hash

    def test_canonical_json_is_compact_and_sorted(self):
        assert canonical_json({"b": 1, "a": [2, 3]}) == '{"a":[2,3],"b":1}'


class TestEnumeration:
    def test_points_are_cartesian_in_axis_order(self):
        spec = small_spec(
            axes=(("mode", ("1-way", "4-way")), ("d", (3, 4))),
        )
        points = spec.points()
        assert [(p["mode"], p["d"]) for p in points] == [
            ("1-way", 3),
            ("1-way", 4),
            ("4-way", 3),
            ("4-way", 4),
        ]
        # Spec-level params survive the merge at every point.
        assert all(p["threshold"] == 1.5 for p in points)

    def test_stride_seeds_match_legacy_figure_drivers(self):
        spec = small_spec(base_seed=3, seed_stride=1000)
        units = spec.units()
        assert len(units) == 4  # 2 points x 2 trials
        assert [u.seed for u in units if u.point_index == 0] == [3000, 3001]
        assert [u.seed for u in units if u.point_index == 1] == [3000, 3001]

    def test_spawn_seeds_are_collision_free_across_points(self):
        spec = small_spec(seed_rule="spawn", axes=(("d", (3, 4, 5)),))
        seeds = [u.seed for u in spec.units()]
        assert len(set(seeds)) == len(seeds)
        # ...and deterministic: re-enumeration gives the same ladder.
        assert seeds == [u.seed for u in spec.units()]

    def test_unit_indices_are_run_order(self):
        units = small_spec().units()
        assert [u.index for u in units] == list(range(len(units)))
        assert [(u.point_index, u.trial) for u in units] == [
            (0, 0), (0, 1), (1, 0), (1, 1),
        ]


class TestConfigCodec:
    def test_roundtrip_preserves_every_field(self):
        config = dataclasses.replace(
            preferred_embodiment(),
            thermal_caps={0: 2, 5: 1},
            fault_plan=FaultPlan.uniform(drop=0.1, seed=9),
        )
        assert decode_config(encode_config(config)) == config

    def test_encoded_form_is_json_serializable(self):
        encoded = encode_config(preferred_embodiment())
        assert json.loads(json.dumps(encoded)) == encoded

    def test_mode_encodes_as_value_string(self):
        config = preferred_embodiment()
        encoded = encode_config(config)
        assert encoded["mode"] == config.mode.value
        assert isinstance(encoded["mode"], str)
        assert decode_config(encoded).mode is config.mode

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecError, match="warp_drive"):
            decode_config({"warp_drive": True})

    def test_invalid_mode_rejected(self):
        with pytest.raises(SpecError, match="mode"):
            decode_config({"mode": "8-way"})


class TestSerialization:
    def test_from_dict_rejects_unknown_fields(self):
        data = small_spec().to_dict()
        data["surprise"] = 1
        with pytest.raises(SpecError, match="surprise"):
            CampaignSpec.from_dict(data)

    def test_from_dict_rejects_unsupported_schema(self):
        data = small_spec().to_dict()
        data["schema"] = 99
        with pytest.raises(SpecError, match="schema"):
            CampaignSpec.from_dict(data)

    def test_from_json_rejects_garbage(self):
        with pytest.raises(SpecError, match="not valid JSON"):
            CampaignSpec.from_json("{nope")

    def test_save_and_load_roundtrip(self, tmp_path):
        spec = small_spec(config=encode_config(preferred_embodiment()))
        path = spec.save(tmp_path / "spec.json")
        assert load_campaign_spec(path) == spec

    def test_load_missing_file_raises_spec_error(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read"):
            load_campaign_spec(tmp_path / "absent.json")
