"""Tests for coin-pool sizing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power.allocation import AllocationStrategy
from repro.power.budget import (
    MAX_COINS_PER_TILE,
    CoinBudgetError,
    build_budget,
    build_pooled_budget,
    quantization_error_mw,
)

RP = AllocationStrategy.RELATIVE_PROPORTIONAL
AP = AllocationStrategy.ABSOLUTE_PROPORTIONAL


class TestTileGranularBudget:
    def test_largest_target_uses_full_counter(self):
        budget = build_budget(RP, {1: 100.0, 2: 50.0}, 75.0)
        assert max(budget.max_by_tile.values()) == MAX_COINS_PER_TILE

    def test_pool_equals_sum_of_maxes(self):
        budget = build_budget(RP, {1: 100.0, 2: 50.0}, 75.0)
        assert budget.pool == sum(budget.max_by_tile.values())

    def test_power_roundtrip(self):
        budget = build_budget(RP, {1: 100.0, 2: 50.0}, 75.0)
        assert budget.budget_mw == pytest.approx(75.0, rel=0.05)

    def test_target_power_lookup(self):
        budget = build_budget(RP, {1: 100.0, 2: 50.0}, 75.0)
        assert budget.target_power_mw(1) == pytest.approx(50.0, rel=0.05)
        assert budget.target_power_mw(99) == 0.0

    def test_quantization_error_bounded_by_half_coin(self):
        targets = {1: 50.0, 2: 25.0}
        budget = build_budget(RP, {1: 100.0, 2: 50.0}, 75.0)
        assert quantization_error_mw(budget, targets) <= (
            budget.coin_value_mw / 2 + 1e-9
        )

    def test_invalid_max_coins_rejected(self):
        with pytest.raises(CoinBudgetError):
            build_budget(RP, {1: 10.0}, 5.0, max_coins=0)


class TestPooledBudget:
    def test_small_budget_pool_is_63_coins(self):
        # budget < largest p_max: the whole budget must fit one counter.
        budget = build_pooled_budget(RP, {1: 176.0, 2: 56.0}, 120.0)
        assert budget.pool == MAX_COINS_PER_TILE

    def test_single_tile_can_hold_all_it_can_use(self):
        """A lone active tile must be able to hold every coin it can
        actually convert to frequency (min of budget and its p_max)."""
        budget = build_pooled_budget(RP, {1: 176.0, 2: 56.0}, 120.0)
        usable = min(120.0, 176.0)
        assert usable / budget.coin_value_mw <= MAX_COINS_PER_TILE + 1e-9

    def test_large_budget_pool_exceeds_63(self):
        """Many-tile SoCs with budgets above any single tile's p_max get
        a pool larger than one counter, so per-tile quantization stays
        fine-grained (the 63-coin limit is per tile, not per SoC)."""
        p_max = {t: 56.0 for t in range(60)}
        p_max[0] = 176.0
        budget = build_pooled_budget(RP, p_max, 1000.0)
        assert budget.pool > MAX_COINS_PER_TILE
        assert budget.coin_value_mw == pytest.approx(176.0 / 63)

    def test_coin_value_is_budget_over_63(self):
        budget = build_pooled_budget(RP, {1: 176.0}, 126.0)
        assert budget.coin_value_mw == pytest.approx(2.0)

    def test_active_target_gets_at_least_one_coin(self):
        budget = build_pooled_budget(RP, {1: 500.0, 2: 1.0}, 100.0)
        assert budget.max_by_tile[2] >= 1

    def test_negative_coin_power_allowed_transiently(self):
        budget = build_pooled_budget(RP, {1: 176.0}, 126.0)
        assert budget.coins_to_power(-3) == pytest.approx(-6.0)

    @given(
        st.dictionaries(
            st.integers(0, 8), st.floats(5.0, 400.0), min_size=1, max_size=9
        ),
        st.floats(20.0, 1000.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_targets_representable_property(self, p_max, budget_mw):
        budget = build_pooled_budget(RP, p_max, budget_mw)
        for t, coins in budget.max_by_tile.items():
            assert 0 <= coins <= MAX_COINS_PER_TILE

    @given(
        st.dictionaries(
            st.integers(0, 8), st.floats(5.0, 400.0), min_size=2, max_size=9
        ),
        st.floats(20.0, 1000.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_ap_vs_rp_pool_covers_budget_property(self, p_max, budget_mw):
        for strategy in (AP, RP):
            budget = build_pooled_budget(strategy, p_max, budget_mw)
            assert budget.pool >= 1
            assert budget.budget_mw == pytest.approx(
                budget_mw, rel=0.5 / MAX_COINS_PER_TILE + 1e-6
            )
