"""Tests for the neighborhood hotspot mitigation (Section III-A)."""

import dataclasses

from repro.core.config import preferred_embodiment
from repro.noc.topology import MeshTopology
from tests.conftest import build_engine_rig


def build(hotspot_cap, d=4, horizon=150_000):
    """A hungry center tile inside a busy neighborhood."""
    center = MeshTopology(d, d).center_tile()
    max_vec = [8] * (d * d)
    max_vec[center] = 64
    config = dataclasses.replace(
        preferred_embodiment(),
        hotspot_neighborhood_cap=hotspot_cap,
    )
    rig = build_engine_rig(
        d,
        config=config,
        max_per_tile=max_vec,
        initial=[10] * (d * d),
        start=True,
    )
    rig.sim.run(until=horizon)
    rig.engine.check_conservation()
    return rig.engine, rig.topo, center


def neighborhood_sum(engine, topo, center):
    tiles = [center] + topo.torus_neighbors(center)
    return sum(engine.coins(t).has for t in tiles)


class TestNeighborhoodHotspotCap:
    def test_uncapped_neighborhood_concentrates_power(self):
        engine, topo, center = build(hotspot_cap=None)
        assert engine.coins(center).has > 40

    def test_cap_bounds_the_hot_neighborhood(self):
        cap = 60
        engine, topo, center = build(hotspot_cap=cap)
        # The center's own holdings respect the room left by its
        # (cached view of its) neighbors; allow the one-exchange slack
        # inherent to a stale cache.
        assert engine.coins(center).has <= cap + 8

    def test_tighter_cap_means_cooler_neighborhood(self):
        loose_engine, topo, center = build(hotspot_cap=90)
        tight_engine, _, _ = build(hotspot_cap=45)
        assert neighborhood_sum(
            tight_engine, topo, center
        ) < neighborhood_sum(loose_engine, topo, center)

    def test_rejected_coins_stay_in_circulation(self):
        engine, topo, center = build(hotspot_cap=45)
        total = sum(engine.coins(t).has for t in range(16))
        assert total == engine.pool  # nothing burned by rejections

    def test_cold_tiles_unaffected_by_the_cap(self):
        engine, topo, center = build(hotspot_cap=60)
        # Far corner tiles still hold roughly their fair share.
        far = 0 if center != 0 else 15
        assert engine.coins(far).has >= 2
