"""Tests for task graphs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.dag import DagError, Task, TaskGraph
from repro.workloads.synthetic import random_layered_dag


class TestTask:
    def test_valid_task(self):
        t = Task("a", "FFT", 1000)
        assert t.deps == ()

    def test_empty_name_rejected(self):
        with pytest.raises(DagError):
            Task("", "FFT", 1000)

    def test_nonpositive_work_rejected(self):
        with pytest.raises(DagError):
            Task("a", "FFT", 0)

    def test_self_dependency_rejected(self):
        with pytest.raises(DagError):
            Task("a", "FFT", 10, deps=("a",))

    def test_duplicate_deps_rejected(self):
        with pytest.raises(DagError):
            Task("a", "FFT", 10, deps=("b", "b"))


class TestTaskGraph:
    def _diamond(self):
        return TaskGraph(
            [
                Task("src", "FFT", 10),
                Task("m1", "FFT", 10, deps=("src",)),
                Task("m2", "FFT", 10, deps=("src",)),
                Task("sink", "FFT", 10, deps=("m1", "m2")),
            ]
        )

    def test_topological_order_respects_deps(self):
        g = self._diamond()
        order = g.topological_order()
        for name, task in g.tasks.items():
            for dep in task.deps:
                assert order.index(dep) < order.index(name)

    def test_cycle_detected(self):
        with pytest.raises(DagError):
            TaskGraph(
                [
                    Task("a", "FFT", 10, deps=("b",)),
                    Task("b", "FFT", 10, deps=("a",)),
                ]
            )

    def test_unknown_dependency_rejected(self):
        with pytest.raises(DagError):
            TaskGraph([Task("a", "FFT", 10, deps=("ghost",))])

    def test_duplicate_names_rejected(self):
        with pytest.raises(DagError):
            TaskGraph([Task("a", "FFT", 10), Task("a", "FFT", 20)])

    def test_roots_and_dependents(self):
        g = self._diamond()
        assert g.roots() == ["src"]
        assert g.dependents_of("src") == ["m1", "m2"]
        assert g.dependents_of("sink") == []

    def test_is_parallel(self):
        g = TaskGraph([Task("a", "FFT", 10), Task("b", "FFT", 10)])
        assert g.is_parallel()
        assert not self._diamond().is_parallel()

    def test_total_work(self):
        assert self._diamond().total_work() == 40

    def test_max_concurrency_of_diamond(self):
        assert self._diamond().max_concurrency() == 2

    def test_critical_path(self):
        g = self._diamond()
        cp = g.critical_path_cycles({"FFT": 800e6}, 800e6)
        assert cp == pytest.approx(30.0)  # 3 levels x 10 cycles

    def test_critical_path_missing_class_rejected(self):
        g = self._diamond()
        with pytest.raises(DagError):
            g.critical_path_cycles({}, 800e6)

    def test_container_protocol(self):
        g = self._diamond()
        assert len(g) == 4
        assert "src" in g
        assert g["src"].work_cycles == 10


class TestRandomLayeredDag:
    @given(st.integers(1, 40), st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_generated_graphs_are_valid_property(self, n_tasks, seed):
        g = random_layered_dag(n_tasks, ["FFT", "GEMM"], seed)
        assert len(g) == n_tasks
        # TaskGraph construction validates acyclicity; also check layers.
        order = g.topological_order()
        assert len(order) == n_tasks

    def test_deterministic_by_seed(self):
        a = random_layered_dag(20, ["FFT"], seed=5)
        b = random_layered_dag(20, ["FFT"], seed=5)
        assert {n: t.deps for n, t in a.tasks.items()} == {
            n: t.deps for n, t in b.tasks.items()
        }

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            random_layered_dag(0, ["FFT"], 1)
        with pytest.raises(ValueError):
            random_layered_dag(5, [], 1)
