"""Tests for the algorithm configuration."""

import pytest

from repro.core.config import (
    BlitzCoinConfig,
    ConfigError,
    ExchangeMode,
    plain_four_way,
    plain_one_way,
    preferred_embodiment,
)


class TestExchangeMode:
    def test_message_counts_match_paper(self):
        # Section III-B: 8 messages for 1-way, 12 for 4-way per rotation.
        assert ExchangeMode.ONE_WAY.messages_per_rotation == 8
        assert ExchangeMode.FOUR_WAY.messages_per_rotation == 12


class TestValidation:
    def test_defaults_are_valid(self):
        cfg = BlitzCoinConfig()
        assert cfg.mode is ExchangeMode.ONE_WAY
        assert cfg.wrap_around
        assert cfg.random_pairing_every == 16

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"refresh_count": 0},
            {"backoff_factor": 0.5},
            {"speedup_step": -1},
            {"min_interval": 0},
            {"min_interval": 100, "max_interval": 50},
            {"random_pairing_every": -1},
            {"convergence_threshold": 0.0},
            {"thermal_caps": {3: -1}},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            BlitzCoinConfig(**kwargs)


class TestComputeCycles:
    def test_one_way_is_single_cycle(self):
        assert plain_one_way().compute_cycles == 1

    def test_four_way_needs_pipelined_arithmetic(self):
        assert plain_four_way().compute_cycles > plain_one_way().compute_cycles


class TestCaps:
    def test_cap_lookup(self):
        cfg = BlitzCoinConfig(thermal_caps={2: 10})
        assert cfg.cap_for(2) == 10
        assert cfg.cap_for(3) is None

    def test_no_caps_configured(self):
        assert BlitzCoinConfig().cap_for(0) is None


class TestPresets:
    def test_plain_variants_disable_optimizations(self):
        for cfg in (plain_one_way(), plain_four_way()):
            assert not cfg.dynamic_timing
            assert not cfg.wrap_around
            assert cfg.random_pairing_every == 0

    def test_preferred_embodiment_is_optimized_one_way(self):
        cfg = preferred_embodiment()
        assert cfg.mode is ExchangeMode.ONE_WAY
        assert cfg.dynamic_timing
        assert cfg.wrap_around
        assert cfg.random_pairing_every == 16
