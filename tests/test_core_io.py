"""repro.core.io promotion + the store-wide campaign status mode."""

from __future__ import annotations

import json

import pytest

from repro.campaign.presets import get_preset
from repro.campaign.store import CampaignStore
from repro.cli import main
from repro.core.io import atomic_write_text


class TestAtomicWriteTextPromotion:
    def test_deprecated_reexport_removed(self):
        """The transitional re-export is gone: repro.core.io is the
        one public home of atomic_write_text."""
        import repro.campaign.store as store_module

        assert "atomic_write_text" not in store_module.__all__
        with pytest.raises(ImportError):
            from repro.campaign.store import atomic_write_text  # noqa: F401

    def test_consumers_import_from_core(self):
        """The reach-in is over: every consumer imports repro.core.io."""
        import repro.fuzz.corpus as corpus
        import repro.perf.artifact as artifact
        import repro.report.dashboard as dashboard
        import repro.report.run_report as run_report

        for module in (corpus, artifact, dashboard, run_report):
            assert module.atomic_write_text is atomic_write_text

    def test_atomic_write_creates_parents(self, tmp_path):
        target = tmp_path / "a" / "b" / "c.json"
        atomic_write_text(target, "x\n")
        assert target.read_text() == "x\n"
        assert not list(target.parent.glob(".*tmp*"))


class TestScanAll:
    def test_empty_and_missing_store(self, tmp_path):
        assert CampaignStore(tmp_path / "absent").scan_all() == []
        (tmp_path / "empty").mkdir()
        assert CampaignStore(tmp_path / "empty").scan_all() == []

    def test_scan_all_reports_every_spec(self, tmp_path):
        from repro.campaign.executor import run_campaign

        store = CampaignStore(tmp_path / "store")
        done_spec = get_preset("smoke")
        run_campaign(done_spec, store=store)
        # A second spec with only a manifest: 0 done, resumable.
        partial = get_preset("fig03-quick")
        store.write_manifest(
            partial, total=len(partial.units()), cached=0, executed=0,
            complete=False,
        )
        entries = {e.name: e for e in store.scan_all()}
        assert set(entries) == {done_spec.name, partial.name}
        assert entries[done_spec.name].status.complete
        assert entries[done_spec.name].has_report
        assert entries[done_spec.name].spec_hash == done_spec.spec_hash
        assert not entries[partial.name].status.complete
        assert entries[partial.name].status.done == 0

    def test_scan_all_surfaces_damage_and_skips_namespaces(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        # A hash-named dir without a manifest is damage...
        (store.root / "deadbeef00000000").mkdir(parents=True)
        # ...a corrupt manifest likewise...
        bad = store.root / "feedfeed00000000"
        bad.mkdir()
        (bad / "manifest.json").write_text("{not json")
        # ...but non-hash namespaces (the serve scenario store) and
        # stray files are not spec dirs at all.
        (store.root / "scenarios" / "0123456789abcdef").mkdir(parents=True)
        (store.root / "stray.txt").write_text("x")
        entries = store.scan_all()
        errors = {e.dir_name: e.error for e in entries}
        assert errors == {
            "deadbeef00000000": "no manifest.json",
            "feedfeed00000000": errors["feedfeed00000000"],
        }
        assert "corrupt manifest" in errors["feedfeed00000000"]


class TestStatusStoreWideCLI:
    def test_store_wide_listing(self, tmp_path, capsys):
        from repro.campaign.executor import run_campaign

        store_dir = tmp_path / "store"
        run_campaign(get_preset("smoke"), store=CampaignStore(store_dir))
        rc = main(["campaign", "status", "--store", str(store_dir)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "specs=1" in out
        assert "smoke" in out
        assert "total=4 done=4 missing=0 corrupt=0" in out
        assert "complete" in out and "report" in out

    def test_store_wide_flags_damage(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        (store_dir / "deadbeef00000000").mkdir(parents=True)
        rc = main(["campaign", "status", "--store", str(store_dir)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "error: no manifest.json" in out

    def test_single_spec_mode_unchanged(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        rc = main(
            [
                "campaign", "status", "--preset", "smoke",
                "--store", str(store_dir),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "never run in this store" in out

    def test_manifest_spec_roundtrips_through_json(self, tmp_path):
        """scan_all rebuilds the spec from the manifest's embedded dict."""
        store = CampaignStore(tmp_path / "store")
        spec = get_preset("smoke")
        store.write_manifest(spec, total=4, cached=0, executed=0, complete=False)
        doc = json.loads(store.manifest_path(spec).read_text())
        assert doc["spec_hash"] == spec.spec_hash
        [entry] = store.scan_all()
        assert entry.spec_hash == spec.spec_hash
