"""RunReport: determinism, transport, and the committed CI golden.

The artifact contract is byte-stability — building the same run's
report twice must produce identical canonical-JSON bytes, because the
CI regression gate diffs a freshly computed campaign report against a
fixture committed in-tree.  That fixture
(``tests/fixtures/reports/golden_smoke_report.json``) is regenerated
here when it drifts legitimately: run the smoke campaign through
``campaign_report`` and write ``report.to_json()`` over the file.
"""

import json
from pathlib import Path

import pytest

from repro.campaign import CampaignStore, run_campaign
from repro.campaign.presets import get_preset
from repro.core.config import preferred_embodiment
from repro.core.runner import run_trials
from repro.experiments.soc_runs import run_soc_workload
from repro.obs import MonitorSet, default_monitors, observing
from repro.obs.sink import Observation
from repro.report.run_report import (
    REPORT_SCHEMA,
    ReportError,
    RunReport,
    campaign_report,
    convergence_report,
    load_run_report,
    soc_report,
    write_run_report,
)
from repro.soc.pm import PMKind
from repro.soc.presets import soc_3x3
from repro.workloads.apps import pm_cluster_workload

GOLDEN_SMOKE = (
    Path(__file__).parent / "fixtures" / "reports" / "golden_smoke_report.json"
)


def _soc_report():
    monitors = MonitorSet(default_monitors(budget_mw=120.0), Observation())
    with observing(monitors):
        result = run_soc_workload(
            soc_3x3(), pm_cluster_workload(3), PMKind.BLITZCOIN, 120.0
        )
    return soc_report(
        result, label="pm-cluster", monitors=monitors, grid=(3, 3)
    )


@pytest.fixture(scope="module")
def soc_scorecard():
    return _soc_report()


class TestSocReport:
    def test_summary_headlines(self, soc_scorecard):
        s = soc_scorecard.summary
        assert s["makespan_us"] > 0
        assert s["budget_mw"] == 120.0
        assert 0.0 < s["budget_utilization"] <= 1.5
        assert s["tasks"] == s["response_samples"] > 0
        assert s["response_cycles"]["p50"] is not None

    def test_tile_rows_ordered_with_coins(self, soc_scorecard):
        tiles = [row["tile"] for row in soc_scorecard.tiles]
        assert tiles == sorted(tiles) and len(tiles) > 1
        assert all(
            row["final_coins"] is not None for row in soc_scorecard.tiles
        )
        share = sum(row["energy_share"] for row in soc_scorecard.tiles)
        assert share == pytest.approx(1.0, abs=0.05)

    def test_series_and_grid(self, soc_scorecard):
        power = soc_scorecard.series["power_mw"]
        assert len(power["x_us"]) == len(power["y_mw"]) == 240
        assert power["budget_mw"] == 120.0
        assert soc_scorecard.grid == (3, 3)

    def test_alert_counts_cover_all_monitors(self, soc_scorecard):
        assert sorted(soc_scorecard.alert_counts) == [
            "budget_overshoot",
            "coin_oscillation",
            "convergence_stall",
            "reconcile_backlog",
            "starvation",
        ]

    def test_metrics_snapshot_present(self, soc_scorecard):
        names = {row["name"] for row in soc_scorecard.metrics}
        assert any(n.startswith("engine.") for n in names)

    def test_rebuild_is_byte_identical(self, soc_scorecard):
        assert _soc_report().to_json() == soc_scorecard.to_json()

    def test_round_trip(self, soc_scorecard):
        doc = json.loads(soc_scorecard.to_json())
        loaded = RunReport.from_dict(doc)
        assert loaded.to_json() == soc_scorecard.to_json()
        assert loaded.config_hash == doc["config_hash"]


class TestConvergenceReport:
    def test_summary_and_grid(self):
        results = run_trials(
            3, preferred_embodiment(), 3, base_seed=5, threshold=1.5
        )
        report = convergence_report(results, label="t", d=3)
        assert report.kind == "convergence"
        assert report.grid == (3, 3)
        assert report.summary["trials"] == 3
        assert report.summary["converged"] <= 3
        assert 0.0 <= report.summary["convergence_rate"] <= 1.0
        assert report.summary["cycles"]["count"] == float(
            report.summary["converged"]
        )

    def test_empty_rejected(self):
        with pytest.raises(ReportError, match="at least one"):
            convergence_report([], label="t", d=3)


class TestCampaignReport:
    def test_matches_committed_golden(self, tmp_path):
        """The CI gate in one test: a cold smoke-campaign run must
        reproduce the committed golden report byte for byte."""
        spec = get_preset("smoke")
        store = CampaignStore(tmp_path)
        run_campaign(spec, store=store)
        produced = store.report_path(spec).read_text()
        assert produced == GOLDEN_SMOKE.read_text()

    def test_warm_cache_rerun_is_byte_identical(self, tmp_path):
        spec = get_preset("smoke")
        store = CampaignStore(tmp_path)
        run_campaign(spec, store=store)
        cold = store.report_path(spec).read_text()
        rerun = run_campaign(spec, store=store)
        assert rerun.cached == len(rerun.results)
        assert store.report_path(spec).read_text() == cold

    def test_summary_shape(self, tmp_path):
        spec = get_preset("smoke")
        run = run_campaign(spec)
        report = campaign_report(run)
        assert report.kind == "campaign"
        assert report.summary["units"] == 4
        assert report.summary["points"] == 2
        assert {"cycles.mean", "cycles.min", "cycles.max"} <= set(
            report.summary
        )
        # Bookkeeping must stay out or warm reruns would diff dirty.
        assert not any(
            k.startswith(("cached", "executed", "workers"))
            for k in report.summary
        )


class TestTransport:
    def test_write_then_load(self, tmp_path, soc_scorecard):
        path = tmp_path / "nested" / "report.json"
        write_run_report(soc_scorecard, path)
        loaded = load_run_report(path)
        assert loaded.to_json() == soc_scorecard.to_json()

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReportError, match="not found"):
            load_run_report(tmp_path / "absent.json")

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text("{not json")
        with pytest.raises(ReportError, match="corrupt"):
            load_run_report(path)

    def test_schema_mismatch(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text(json.dumps({"schema": 99, "kind": "soc"}))
        with pytest.raises(ReportError, match="schema"):
            load_run_report(path)

    def test_non_object_document(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text("[1, 2]")
        with pytest.raises(ReportError):
            load_run_report(path)

    def test_missing_summary(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text(
            json.dumps({"schema": REPORT_SCHEMA, "kind": "soc"})
        )
        with pytest.raises(ReportError, match="summary"):
            load_run_report(path)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReportError, match="kind"):
            RunReport(kind="mystery", label="x", config={}, summary={})
