"""Every benchmarks/bench_*.py must import without side effects.

The perf registry relies on this: ``bench run`` and pytest collection
both import benchmark modules, so an import that ran a simulation,
installed an observability sink, or wrote files would execute that
work twice (and poison the fast-flag bit-identity guarantee).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

import repro.obs.runtime as obs_runtime
from repro.perf.registry import REGISTRY

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
BENCH_FILES = sorted(BENCH_DIR.glob("bench_*.py"))


def _import(path: Path):
    name = path.stem
    if name in sys.modules:
        return sys.modules[name]
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def test_benchmark_files_exist():
    assert len(BENCH_FILES) >= 30


@pytest.mark.parametrize(
    "path", BENCH_FILES, ids=[p.stem for p in BENCH_FILES]
)
def test_imports_cleanly_without_side_effects(path):
    before = obs_runtime.sink
    module = _import(path)
    # No sink installed, no simulation scheduled at import time.
    assert obs_runtime.sink is before is None
    # Anything executable is behind a guard, never at module level.
    assert not hasattr(module, "__bench_ran__")


def test_migrated_benchmarks_register_declarations():
    for path in BENCH_FILES:
        _import(path)
    for name in (
        "fig03.full",
        "campaign.parallel",
        "lint.tree_cold",
        "obs.overhead_monitors",
    ):
        assert name in REGISTRY, name
        bench = REGISTRY.get(name)
        assert "full" in bench.suites
        assert bench.description


def test_standalone_entrypoints_are_guarded():
    # Files that define main() must only call it under __main__.
    for path in BENCH_FILES:
        text = path.read_text(encoding="utf-8")
        if "def main(" in text:
            assert 'if __name__ == "__main__":' in text, path.name
