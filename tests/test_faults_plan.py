"""Tests for the declarative fault-plan model (repro.faults.plan)."""

import json

import pytest

from repro.faults import (
    CoinLossEvent,
    FaultPlan,
    FaultPlanError,
    LinkFaultRates,
    TileFaultEvent,
    load_fault_plan,
)


class TestLinkFaultRates:
    def test_defaults_are_null(self):
        assert LinkFaultRates().is_null

    @pytest.mark.parametrize("field", ["drop", "duplicate", "corrupt", "delay"])
    def test_rates_bounded(self, field):
        with pytest.raises(FaultPlanError):
            LinkFaultRates(**{field: 1.01})
        with pytest.raises(FaultPlanError):
            LinkFaultRates(**{field: -0.01})

    def test_exclusive_outcomes_cannot_exceed_one(self):
        with pytest.raises(FaultPlanError):
            LinkFaultRates(drop=0.5, duplicate=0.3, corrupt=0.3)

    def test_delay_is_independent_of_the_exclusive_budget(self):
        LinkFaultRates(drop=0.5, duplicate=0.5, delay=1.0)  # fine

    def test_max_delay_must_be_positive(self):
        with pytest.raises(FaultPlanError):
            LinkFaultRates(max_delay_cycles=0)


class TestEvents:
    def test_unknown_action_rejected(self):
        with pytest.raises(FaultPlanError):
            TileFaultEvent(cycle=0, tile=0, action="maim")

    def test_negative_cycle_rejected(self):
        with pytest.raises(FaultPlanError):
            TileFaultEvent(cycle=-1, tile=0, action="kill")

    def test_coin_loss_needs_at_least_one_coin(self):
        with pytest.raises(FaultPlanError):
            CoinLossEvent(cycle=0, tile=0, coins=0)


class TestFaultPlan:
    def test_default_plan_is_null(self):
        plan = FaultPlan()
        assert plan.is_null
        assert not plan.has_packet_faults

    def test_uniform_constructor(self):
        plan = FaultPlan.uniform(drop=0.1, delay=0.2, seed=9)
        assert plan.seed == 9
        assert plan.link.drop == 0.1
        assert plan.has_packet_faults
        assert not plan.is_null

    def test_rates_for_override(self):
        fast = LinkFaultRates(drop=0.5)
        plan = FaultPlan(link_overrides=((2, 3, fast),))
        assert plan.rates_for(2, 3) is fast
        assert plan.rates_for(3, 2) == plan.link

    def test_duplicate_override_rejected(self):
        r = LinkFaultRates(drop=0.1)
        with pytest.raises(FaultPlanError):
            FaultPlan(link_overrides=((0, 1, r), (0, 1, r)))

    def test_with_seed(self):
        plan = FaultPlan.uniform(drop=0.1, seed=1)
        assert plan.with_seed(5).seed == 5
        assert plan.with_seed(5).link == plan.link

    def test_tile_events_alone_make_plan_non_null(self):
        plan = FaultPlan(
            tile_events=(TileFaultEvent(cycle=10, tile=0, action="kill"),)
        )
        assert not plan.is_null
        assert not plan.has_packet_faults


class TestSerialization:
    def full_plan(self):
        return FaultPlan(
            seed=42,
            link=LinkFaultRates(drop=0.05, delay=0.1, max_delay_cycles=8),
            link_overrides=((0, 1, LinkFaultRates(corrupt=0.2)),),
            tile_events=(
                TileFaultEvent(cycle=100, tile=4, action="kill"),
                TileFaultEvent(cycle=500, tile=4, action="revive"),
            ),
            coin_loss_events=(CoinLossEvent(cycle=50, tile=2, coins=3),),
        )

    def test_json_round_trip(self):
        plan = self.full_plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_save_and_load(self, tmp_path):
        plan = self.full_plan()
        path = tmp_path / "plan.json"
        plan.save(path)
        assert load_fault_plan(path) == plan

    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(FaultPlanError, match="gremlins"):
            FaultPlan.from_dict({"gremlins": 1})

    def test_bool_not_accepted_as_int(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"seed": True})

    def test_malformed_json_raises_plan_error(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json("{nope")

    def test_unreadable_file_raises_plan_error(self, tmp_path):
        with pytest.raises(FaultPlanError):
            load_fault_plan(tmp_path / "missing.json")

    def test_dict_form_is_plain_json(self):
        d = self.full_plan().to_dict()
        json.dumps(d)  # serializable as-is
        assert d["seed"] == 42
