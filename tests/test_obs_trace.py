"""Tests for span tracing, the exporters, and the Chrome-trace schema."""

import json
from pathlib import Path

from repro.obs import (
    Observation,
    chrome_trace,
    jsonl_records,
    summary_lines,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_summary,
)
from repro.obs.spans import TraceBuffer

GOLDEN = Path(__file__).parent / "fixtures" / "obs" / "golden_trace.json"


class TestTraceBuffer:
    def test_span_lifecycle(self):
        buf = TraceBuffer()
        buf.begin_span("x:1", "exchange", 10, cat="engine", track=3)
        span = buf.end_span("x:1", 50, args={"outcome": "moved"})
        assert span.duration == 40
        assert span.args == {"outcome": "moved"}
        assert not buf.open_spans

    def test_end_unknown_span_is_noop(self):
        buf = TraceBuffer()
        assert buf.end_span("never-opened", 10) is None

    def test_epoch_scopes_span_ids(self):
        buf = TraceBuffer()
        buf.set_epoch("trial0")
        buf.begin_span("x:1", "exchange", 10)
        buf.end_span("x:1", 20)
        buf.set_epoch("trial1")
        buf.begin_span("x:1", "exchange", 5)  # same uid, new trial
        buf.end_span("x:1", 8)
        durations = [s.duration for s in buf.spans]
        assert durations == [10, 3]
        assert buf.find("trial0", "x:1").end == 20
        assert buf.find("trial1", "x:1").end == 8

    def test_max_time_tracks_every_record(self):
        buf = TraceBuffer()
        buf.instant("e", 7)
        buf.sample("s", 12, 1.0)
        buf.complete_span("p:1", "pkt", 3, 30)
        assert buf.max_time == 30

    def test_len_counts_everything(self):
        buf = TraceBuffer()
        buf.begin_span("a", "a", 0)
        buf.instant("e", 1)
        buf.sample("s", 2, 1.0)
        assert len(buf) == 3


def _reference_observation() -> Observation:
    """A small, fully deterministic observation for the golden test."""
    obs = Observation(label="golden")
    obs.epoch("trial0")
    obs.begin_span(
        "xchg:0", "exchange", 10,
        cat="engine", track=4, args={"mode": "1way", "partner": 5},
    )
    obs.complete_span(
        "pkt:0", "coin_status", 12, 15,
        cat="noc", track=4, parent_id="xchg:0",
        args={"src": 4, "dst": 5, "hops": 1, "flits": 1},
    )
    obs.end_span("xchg:0", 40, args={"outcome": "moved"})
    obs.begin_span("xchg:1", "exchange", 50, cat="engine", track=5)
    obs.event("nack", 55, cat="engine", track=5, args={"to": 4})
    obs.sample("soc.power_mw", 20, 12.5, cat="soc", track=4)
    obs.inc("engine.exchanges_initiated", 10)
    obs.inc("engine.exchanges_initiated", 50)
    obs.observe("noc.hop_histogram", 15, 1)
    return obs


class TestChromeTrace:
    def test_reference_trace_is_schema_valid(self):
        doc = chrome_trace(_reference_observation())
        assert validate_chrome_trace(doc) == []

    def test_matches_golden_file(self):
        # The exporter's output is part of the repo's contract: any
        # intentional change must regenerate the golden via
        # `python -m tests.test_obs_trace`.
        doc = chrome_trace(_reference_observation())
        golden = json.loads(GOLDEN.read_text())
        assert doc == golden

    def test_open_span_clamped_and_flagged(self):
        doc = chrome_trace(_reference_observation())
        open_events = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["args"].get("incomplete")
        ]
        assert len(open_events) == 1
        # Clamped to the horizon: 55 (last record) - 50 (begin).
        assert open_events[0]["ts"] == 50
        assert open_events[0]["dur"] == 5

    def test_parent_link_becomes_flow_pair(self):
        doc = chrome_trace(_reference_observation())
        flows = [e for e in doc["traceEvents"] if e["ph"] in ("s", "f")]
        assert len(flows) == 2
        start = next(e for e in flows if e["ph"] == "s")
        finish = next(e for e in flows if e["ph"] == "f")
        assert start["id"] == finish["id"]
        assert start["ts"] == 10  # parent begin
        assert finish["ts"] == 12  # child begin

    def test_pid_per_epoch_and_category(self):
        doc = chrome_trace(_reference_observation())
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {"trial0:engine", "trial0:noc", "trial0:soc"}

    def test_timestamps_are_sim_cycles(self):
        doc = chrome_trace(_reference_observation())
        assert doc["otherData"]["time_unit"] == "noc-cycles"
        assert doc["otherData"]["max_time_cycles"] == 55
        assert all(
            isinstance(e["ts"], int) for e in doc["traceEvents"]
        )

    def test_write_and_reload(self, tmp_path):
        path = write_chrome_trace(_reference_observation(), tmp_path / "t.json")
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) != []

    def test_rejects_missing_events(self):
        assert validate_chrome_trace({"traceEvents": []}) != []

    def test_rejects_unknown_phase(self):
        doc = {"traceEvents": [{"ph": "Z", "name": "x", "pid": 1, "ts": 0}]}
        assert any("unknown ph" in p for p in validate_chrome_trace(doc))

    def test_rejects_float_timestamp(self):
        doc = {
            "traceEvents": [
                {"ph": "i", "name": "x", "pid": 1, "tid": 0, "ts": 1.5}
            ]
        }
        assert any("integer" in p for p in validate_chrome_trace(doc))

    def test_rejects_complete_event_without_dur(self):
        doc = {
            "traceEvents": [
                {"ph": "X", "name": "x", "pid": 1, "tid": 0, "ts": 0}
            ]
        }
        assert any("dur" in p for p in validate_chrome_trace(doc))

    def test_rejects_flow_without_id(self):
        doc = {"traceEvents": [{"ph": "s", "name": "x", "pid": 1, "ts": 0}]}
        assert any("missing id" in p for p in validate_chrome_trace(doc))


class TestJsonl:
    def test_record_stream_covers_everything(self, tmp_path):
        path = write_jsonl(_reference_observation(), tmp_path / "e.jsonl")
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        types = {r["type"] for r in records}
        assert types == {
            "meta", "span", "event", "sample", "metric", "profile_site",
        } - {"profile_site"}  # no kernel events in the hand-built obs
        assert records[0]["type"] == "meta"
        assert records[0]["time_unit"] == "noc-cycles"

    def test_span_record_round_trips_fields(self):
        records = list(jsonl_records(_reference_observation()))
        span = next(
            r for r in records
            if r["type"] == "span" and r["id"] == "pkt:0"
        )
        assert span["parent"] == "xchg:0"
        assert span["begin"] == 12
        assert span["end"] == 15
        assert span["epoch"] == "trial0"


class TestSummary:
    def test_summary_mentions_instruments_and_spans(self, tmp_path):
        path = write_summary(_reference_observation(), tmp_path / "s.txt")
        text = path.read_text()
        assert "engine.exchanges_initiated" in text
        assert "engine/exchange" in text
        assert "noc.hop_histogram" in text
        assert "(no events profiled)" in text

    def test_lines_for_empty_observation(self):
        lines = summary_lines(Observation(label="empty"))
        assert lines[0].startswith("== observability summary: empty")


def _regenerate_golden() -> None:
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(
        json.dumps(chrome_trace(_reference_observation()), indent=2,
                   sort_keys=True)
        + "\n"
    )


if __name__ == "__main__":
    _regenerate_golden()
    print(f"regenerated {GOLDEN}")
