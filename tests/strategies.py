"""Shared hypothesis strategies for the whole test suite.

One library instead of per-file ad-hoc generators: the exchange
arithmetic properties, the fault-plan conservation properties, and the
fuzzer's own tests all draw from here, so "an arbitrary valid
FaultPlan" means the same thing everywhere and a strategy improvement
(a new edge case) upgrades every consumer at once.

Strategy families:

* coin counts — :data:`HAS` / :data:`MAX` / :data:`CAP`, adversarial
  integers spanning negative transients to past-float53 pools;
* fault plans — :func:`fault_plans`, arbitrary valid plans for a 3x3
  mesh (lossy links, tile kills/hangs/revives in any order, coin-loss
  upsets);
* workloads — :func:`task_graphs`, small valid DAGs in the layered
  shape the executor schedules, and :func:`arrival_traces`,
  multi-tenant production request streams;
* fuzz scenarios — :func:`scenario_events` and :func:`engine_scenarios`
  for :mod:`repro.fuzz` round-trip and validation properties.
"""

from hypothesis import strategies as st

from repro.faults.plan import (
    CoinLossEvent,
    FaultPlan,
    LinkFaultRates,
    TileFaultEvent,
)
from repro.fuzz.scenario import EngineSection, Scenario, ScenarioEvent
from repro.workloads.dag import Task, TaskGraph
from repro.workloads.production import Arrival, ArrivalTrace

__all__ = [
    "CAP",
    "COIN_EVENTS",
    "GROUP",
    "HAS",
    "MAX",
    "N_TILES",
    "RATES",
    "TILE_EVENTS",
    "arrival_traces",
    "engine_scenarios",
    "fault_plans",
    "scenario_events",
    "task_graphs",
]

# ------------------------------------------------------------ coin counts
#: Adversarial coin counts: negative transients through silicon-scale
#: pools past 2**53, where float arithmetic would silently round.
HAS = st.integers(min_value=-(10**4), max_value=10**16)
MAX = st.integers(min_value=0, max_value=10**16)
CAP = st.one_of(st.none(), st.integers(min_value=0, max_value=10**16))

#: Groups of (has, max) pairs for the 4-way group exchange.
GROUP = st.lists(st.tuples(HAS, MAX), min_size=1, max_size=6)

# ------------------------------------------------------------ fault plans
RATES = st.floats(min_value=0.0, max_value=0.25)
N_TILES = 9  # 3x3 grid keeps each simulated example fast

TILE_EVENTS = st.lists(
    st.builds(
        TileFaultEvent,
        cycle=st.integers(0, 4_000),
        tile=st.integers(0, N_TILES - 1),
        action=st.sampled_from(("kill", "hang", "revive")),
    ),
    max_size=4,
)

COIN_EVENTS = st.lists(
    st.builds(
        CoinLossEvent,
        cycle=st.integers(0, 4_000),
        tile=st.integers(0, N_TILES - 1),
        coins=st.integers(1, 8),
    ),
    max_size=3,
)


@st.composite
def fault_plans(draw) -> FaultPlan:
    """Arbitrary valid 3x3 fault plans: lossy links plus tile/coin
    events in any order, including kills of never-revived tiles and
    revives of never-killed ones."""
    return FaultPlan(
        seed=draw(st.integers(0, 2**32)),
        link=LinkFaultRates(
            drop=draw(RATES),
            duplicate=draw(RATES),
            corrupt=draw(RATES),
            delay=draw(RATES),
            max_delay_cycles=draw(st.integers(1, 24)),
        ),
        tile_events=tuple(draw(TILE_EVENTS)),
        coin_loss_events=tuple(draw(COIN_EVENTS)),
    )


# -------------------------------------------------------------- workloads
_ACC_CLASSES = ("FFT", "Viterbi", "NVDLA")


@st.composite
def task_graphs(draw, max_tasks: int = 6) -> TaskGraph:
    """Small valid layered DAGs: task k may depend on tasks < k, so the
    graph is acyclic by construction but edge shape is arbitrary."""
    n = draw(st.integers(1, max_tasks))
    tasks = []
    for k in range(n):
        deps = (
            tuple(
                f"t{i}"
                for i in sorted(
                    draw(
                        st.sets(
                            st.integers(0, k - 1), max_size=min(k, 3)
                        )
                    )
                )
            )
            if k
            else ()
        )
        tasks.append(
            Task(
                name=f"t{k}",
                acc_class=draw(st.sampled_from(_ACC_CLASSES)),
                work_cycles=draw(st.integers(1_000, 50_000)),
                deps=deps,
                tile_hint=None,
            )
        )
    return TaskGraph(tasks)


@st.composite
def arrival_traces(draw, max_arrivals: int = 12) -> ArrivalTrace:
    """Arbitrary valid multi-tenant arrival traces (sorted, in-horizon)."""
    n_tenants = draw(st.integers(1, 4))
    horizon = draw(st.integers(1_000, 500_000))
    arrivals = draw(
        st.lists(
            st.builds(
                Arrival,
                cycle=st.integers(0, horizon - 1),
                tenant=st.integers(0, n_tenants - 1),
                acc_class=st.sampled_from(_ACC_CLASSES),
                work_cycles=st.integers(1, 200_000),
            ),
            max_size=max_arrivals,
        )
    )
    return ArrivalTrace(
        arrivals=tuple(arrivals),
        horizon_cycles=horizon,
        n_tenants=n_tenants,
    )


# ---------------------------------------------------------- fuzz scenarios
@st.composite
def scenario_events(
    draw, n_tiles: int = 9, horizon: int = 50_000
) -> ScenarioEvent:
    """One valid engine-kind scenario event of any kind."""
    kind = draw(st.sampled_from(("set_max", "thermal_cap", "budget_step")))
    cycle = draw(st.integers(0, horizon - 1))
    if kind == "budget_step":
        return ScenarioEvent(
            cycle=cycle, kind=kind, tile=-1,
            value=draw(st.integers(0, 400)),
        )
    tile = draw(st.integers(0, n_tiles - 1))
    if kind == "set_max":
        return ScenarioEvent(
            cycle=cycle, kind=kind, tile=tile,
            value=draw(st.integers(0, 128)),
        )
    return ScenarioEvent(
        cycle=cycle, kind=kind, tile=tile,
        value=draw(st.integers(-1, 64)),
    )


@st.composite
def engine_scenarios(draw) -> Scenario:
    """Arbitrary valid engine-kind fuzz scenarios (3x3, short horizon)."""
    dim = 3
    n = dim * dim
    horizon = draw(st.integers(2_000, 50_000))
    return Scenario(
        kind="engine",
        seed=draw(st.integers(0, 2**16)),
        variant=draw(st.sampled_from(("1way", "4way", "preferred"))),
        max_cycles=horizon,
        events=tuple(
            draw(
                st.lists(
                    scenario_events(n_tiles=n, horizon=horizon), max_size=4
                )
            )
        ),
        fault_plan=draw(fault_plans()),
        engine=EngineSection(
            dim=dim,
            max_by_tile=tuple(
                draw(
                    st.lists(
                        st.integers(0, 64), min_size=n, max_size=n
                    )
                )
            ),
            pool=draw(st.integers(0, 400)),
        ),
    )
