"""Resilience tests: tile death, hangs, coin loss, and reconciliation.

The protocol-level half of the fault story: killed tiles release their
coins through the reconciliation ledger, hung tiles cost timeouts but
never wedge partners, revived tiles rejoin and rebalance, and the
centralized baseline's bounded poll retries (and controller death)
behave as modeled in the fault sweep.
"""

import dataclasses

import pytest

from repro.baselines.centralized import (
    CentralizedScheme,
    ControllerTiming,
    ProportionalPolicy,
)
from repro.core.config import preferred_embodiment
from repro.core.engine import EngineError
from repro.faults import FaultPlan, TileFaultEvent, injecting
from repro.noc.behavioral import BehavioralNoc
from repro.noc.topology import MeshTopology
from repro.sim.kernel import Simulator
from tests.conftest import build_engine_rig


def fault_config(**overrides):
    return dataclasses.replace(
        preferred_embodiment(),
        exchange_timeout_cycles=256,
        reconcile_delay_cycles=32,
        **overrides,
    )


def rig(d=3, **kwargs):
    kwargs.setdefault("config", fault_config())
    kwargs.setdefault("seed", 21)
    kwargs.setdefault("start", True)
    return build_engine_rig(d, **kwargs)


class TestKill:
    def test_killed_tiles_coins_are_reconciled(self):
        sim, noc, engine = rig()
        sim.run_for(50)
        victim = 4
        held = engine.coins(victim).has
        engine.kill_tile(victim)
        assert engine.coins_lost >= held
        sim.run_for(5_000)
        assert engine.coins_reminted == engine.coins_lost
        assert engine.lost_pending == 0
        assert engine.coins(victim).has == 0
        engine.check_conservation()

    def test_survivors_absorb_the_pool(self):
        sim, noc, engine = rig()
        victim = 4
        engine.kill_tile(victim)
        converged = engine.run_until_converged(200_000)
        assert converged is not None
        sim.run_for(10_000)  # let the delayed re-mint land
        total = sum(
            engine.coins(t).has for t in engine.fsm if t != victim
        )
        assert total == engine.pool
        engine.check_conservation()

    def test_dead_tile_ignores_set_max(self):
        sim, noc, engine = rig()
        victim = 4
        engine.kill_tile(victim)
        engine.set_max(victim, 99)
        assert engine.coins(victim).max == 0  # applied only on revive
        engine.revive_tile(victim)
        assert engine.coins(victim).max == 99
        engine.run_until_converged(200_000)
        engine.check_conservation()

    def test_kill_is_idempotent_enough(self):
        sim, noc, engine = rig()
        engine.kill_tile(4)
        lost = engine.coins_lost
        engine.kill_tile(4)
        assert engine.coins_lost == lost  # no double confiscation


class TestHang:
    def test_hung_tile_keeps_coins_and_partners_time_out(self):
        sim, noc, engine = rig()
        sim.run_for(50)
        victim = 4
        held = engine.coins(victim).has
        engine.hang_tile(victim)
        sim.run_for(30_000)
        assert engine.coins(victim).has == held
        assert engine.exchanges_timed_out > 0
        engine.check_conservation()

    def test_system_converges_around_a_hung_tile(self):
        """Remaining tiles still equalize; the hung tile's stale coins
        are part of the conserved pool, not a leak."""
        sim, noc, engine = rig()
        engine.hang_tile(4)
        sim.run_for(100_000)
        engine.check_conservation()
        # Every live tile is still unlocked and schedulable.
        live_busy = [
            t for t, f in engine.fsm.items() if t != 4 and f.locked
        ]
        assert live_busy == []


class TestRevive:
    def test_revived_after_hang_resumes_exchanging(self):
        sim, noc, engine = rig()
        engine.hang_tile(4)
        sim.run_for(5_000)
        engine.revive_tile(4)
        before = engine.exchanges_started
        sim.run_for(20_000)
        assert engine.exchanges_started > before
        engine.check_conservation()

    def test_kill_then_revive_rebalances(self):
        sim, noc, engine = rig()
        engine.kill_tile(4)
        sim.run_for(10_000)
        engine.revive_tile(4)
        converged = engine.run_until_converged(300_000)
        assert converged is not None
        assert engine.coins(4).has > 0  # re-earned a share
        engine.check_conservation()


class TestCoinLoss:
    def test_lost_coins_are_reminted(self):
        sim, noc, engine = rig()
        sim.run_for(100)
        tid = max(engine.fsm, key=lambda t: engine.coins(t).has)
        engine.lose_coins(tid, 2)
        assert engine.coins_lost >= 2
        sim.run_for(5_000)
        assert engine.coins_reminted == engine.coins_lost
        assert engine.reconciliations >= 1
        engine.check_conservation()

    def test_loss_clamped_to_holdings(self):
        sim, noc, engine = rig()
        tid = 0
        held = engine.coins(tid).has
        engine.lose_coins(tid, held + 100)
        assert engine.coins_lost <= held
        engine.check_conservation()

    def test_unmanaged_tile_rejected(self):
        sim, noc, engine = rig()
        with pytest.raises(EngineError):
            engine.lose_coins(99, 1)

    def test_scheduled_events_fire_through_the_plan(self):
        plan = FaultPlan(
            tile_events=(
                TileFaultEvent(cycle=200, tile=4, action="kill"),
            ),
        )
        with injecting(plan):
            sim, noc, engine = rig()
            sim.run_for(10_000)
        assert engine.fsm[4].dead
        assert engine.coins_reminted == engine.coins_lost
        engine.check_conservation()


class TestRetryBackoff:
    def test_fail_streaks_tracked_and_cleared(self):
        sim, noc, engine = rig()
        engine.hang_tile(4)
        sim.run_for(50_000)
        streaks = [
            f.fail_streak.get(4, 0) for t, f in engine.fsm.items() if t != 4
        ]
        assert max(streaks) >= 1
        engine.revive_tile(4)
        sim.run_for(100_000)
        # A completed exchange with the revived tile clears its streak.
        cleared = [
            f.fail_streak.get(4, 0) for t, f in engine.fsm.items() if t != 4
        ]
        assert min(cleared) == 0

    def test_partner_retry_limit_validated(self):
        with pytest.raises(Exception):
            fault_config(partner_retry_limit=-1)


class TestCentralizedResilience:
    def build(self, d=3, rate=0.0, timing=None):
        sim = Simulator()
        topo = MeshTopology(d, d)
        noc = BehavioralNoc(sim, topo)
        managed = [t for t in topo.all_tiles() if t != 0]
        applied = []
        scheme = CentralizedScheme(
            sim,
            noc,
            0,
            managed,
            ProportionalPolicy(),
            budget_mw=10.0,
            capability=lambda tid: 1.0,
            apply_target=lambda tid, p: applied.append(tid),
            timing=timing or ControllerTiming(),
        )
        scheme.start()
        return sim, scheme, applied

    def test_poll_retries_under_loss(self):
        with injecting(FaultPlan.uniform(drop=0.4, seed=3)):
            sim, scheme, applied = self.build(rate=0.4)
            sim.schedule(1, lambda: scheme.on_activity_change(1))
            sim.run(until=300_000)
        assert scheme.polls_retried > 0
        assert applied  # loop still completes via retries/re-loops

    def test_killed_controller_goes_silent(self):
        sim, scheme, applied = self.build()
        scheme.kill_controller()
        sim.schedule(1, lambda: scheme.on_activity_change(1))
        sim.run(until=100_000)
        assert applied == []

    def test_poll_abandonment_is_bounded(self):
        timing = ControllerTiming(poll_retry_limit=1)
        with injecting(FaultPlan.uniform(drop=0.6, seed=5)):
            sim, scheme, applied = self.build(timing=timing)
            sim.schedule(1, lambda: scheme.on_activity_change(1))
            sim.run(until=300_000)
        # With a tight retry budget and heavy loss, some polls must be
        # abandoned rather than retried forever.
        assert scheme.polls_abandoned > 0
