"""Tests for mesh/torus geometry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.topology import MeshTopology, TopologyError, square


class TestCoordinates:
    def test_roundtrip(self, mesh_3x3):
        for tid in range(9):
            x, y = mesh_3x3.coords(tid)
            assert mesh_3x3.tile_id(x, y) == tid

    def test_row_major_layout(self, mesh_3x3):
        assert mesh_3x3.coords(0) == (0, 0)
        assert mesh_3x3.coords(4) == (1, 1)
        assert mesh_3x3.coords(8) == (2, 2)

    def test_out_of_range_rejected(self, mesh_3x3):
        with pytest.raises(TopologyError):
            mesh_3x3.coords(9)
        with pytest.raises(TopologyError):
            mesh_3x3.tile_id(3, 0)

    def test_invalid_grid_rejected(self):
        with pytest.raises(TopologyError):
            MeshTopology(0, 3)


class TestNeighbors:
    def test_center_tile_has_four_mesh_neighbors(self, mesh_3x3):
        assert sorted(mesh_3x3.mesh_neighbors(4)) == [1, 3, 5, 7]

    def test_corner_has_two_mesh_neighbors(self, mesh_3x3):
        assert sorted(mesh_3x3.mesh_neighbors(0)) == [1, 3]

    def test_torus_corner_has_four_neighbors(self, mesh_3x3):
        # Fig. 5: tile 0 of a 3x3 grid wraps to 1, 2, 3 and 6.
        assert sorted(mesh_3x3.torus_neighbors(0)) == [1, 2, 3, 6]

    def test_torus_neighbor_count_on_larger_grids(self, mesh_4x4):
        for tid in mesh_4x4.all_tiles():
            assert len(mesh_4x4.torus_neighbors(tid)) == 4

    def test_torus_degenerate_grid_deduplicates(self):
        topo = MeshTopology(2, 1)
        assert topo.torus_neighbors(0) == [1]

    def test_non_neighbors_excludes_self_and_torus_neighbors(self, mesh_4x4):
        nn = mesh_4x4.non_neighbors(0)
        assert 0 not in nn
        for t in mesh_4x4.torus_neighbors(0):
            assert t not in nn
        assert len(nn) == 16 - 1 - 4

    @given(st.integers(2, 8), st.integers(2, 8))
    @settings(max_examples=30, deadline=None)
    def test_torus_neighborhood_is_symmetric(self, w, h):
        topo = MeshTopology(w, h)
        for tid in topo.all_tiles():
            for nb in topo.torus_neighbors(tid):
                assert tid in topo.torus_neighbors(nb)


class TestRouting:
    def test_hop_distance_is_manhattan(self, mesh_4x4):
        assert mesh_4x4.hop_distance(0, 15) == 6
        assert mesh_4x4.hop_distance(5, 5) == 0
        assert mesh_4x4.hop_distance(0, 3) == 3

    def test_xy_route_endpoints_and_length(self, mesh_4x4):
        route = mesh_4x4.xy_route(0, 15)
        assert route[0] == 0
        assert route[-1] == 15
        assert len(route) == mesh_4x4.hop_distance(0, 15) + 1

    def test_xy_route_goes_x_first(self, mesh_4x4):
        route = mesh_4x4.xy_route(0, 5)
        assert route == [0, 1, 5]

    def test_xy_route_adjacent_steps(self, mesh_4x4):
        route = mesh_4x4.xy_route(12, 3)
        for a, b in zip(route, route[1:]):
            assert mesh_4x4.hop_distance(a, b) == 1

    @given(st.integers(2, 6), st.integers(2, 6), st.data())
    @settings(max_examples=40, deadline=None)
    def test_hop_distance_symmetric(self, w, h, data):
        topo = MeshTopology(w, h)
        a = data.draw(st.integers(0, topo.n_tiles - 1))
        b = data.draw(st.integers(0, topo.n_tiles - 1))
        assert topo.hop_distance(a, b) == topo.hop_distance(b, a)


class TestRing:
    def test_ring_visits_every_tile_once(self, mesh_4x4):
        ring = mesh_4x4.ring_order()
        assert sorted(ring) == list(range(16))

    def test_serpentine_consecutive_tiles_adjacent(self, mesh_4x4):
        ring = mesh_4x4.ring_order()
        for a, b in zip(ring, ring[1:]):
            assert mesh_4x4.hop_distance(a, b) == 1


class TestHelpers:
    def test_square_constructor(self):
        topo = square(5)
        assert topo.n_tiles == 25
        assert topo.dimension == pytest.approx(5.0)

    def test_center_tile(self, mesh_3x3):
        assert mesh_3x3.center_tile() == 4
