"""Phase-attribution profiler: attribution accounting and bit-identity."""

import dataclasses
import json

import pytest

from repro.core.config import preferred_embodiment
from repro.core.runner import run_trials
from repro.obs.export import validate_chrome_trace
from repro.obs.sink import Observation
from repro.perf.phase import (
    PHASES,
    PhaseProfiler,
    classify_site,
    phase_chrome_trace,
    phase_summary_lines,
    profiling,
)


def _workload():
    return run_trials(
        4, preferred_embodiment(), 2, base_seed=3, threshold=1.5
    )


class TestClassify:
    def test_known_prefixes(self):
        assert classify_site("repro.core.engine:CoinExchangeEngine.go") == "engine"
        assert classify_site("repro.noc.behavioral:BehavioralNoc.step") == "noc"
        assert classify_site("repro.thermal.model:step") == "thermal"
        assert classify_site("repro.sim.kernel:Simulator.run") == "kernel"

    def test_unknown_module_is_other(self):
        assert classify_site("some.third.party:fn") == "other"

    def test_prefix_must_match_whole_component(self):
        # "repro.corex" must not match the "repro.core" prefix.
        assert classify_site("repro.corex.mod:fn") == "other"

    def test_every_prefix_phase_is_listed(self):
        assert set(classify_site(f"{m}:f") for m in (
            "repro.core.x", "repro.noc.x", "repro.thermal.x",
            "repro.soc.x", "repro.workloads.x", "repro.faults.x",
            "repro.dvfs.x", "repro.sim.x",
        )) <= set(PHASES)


class TestAttribution:
    def test_phases_sum_exactly_to_total(self):
        with profiling() as prof:
            _workload()
        # The residual "harness" phase makes the partition exact; the
        # acceptance bar is 5% but the construction gives ~0.
        assert prof.total_s > 0
        assert prof.events > 0
        assert prof.attributed_s() == pytest.approx(prof.total_s, rel=0.05)

    def test_simulation_phases_dominate(self):
        with profiling() as prof:
            _workload()
        sim = prof.totals.get("engine", 0.0) + prof.totals.get("noc", 0.0)
        assert sim > 0.5 * prof.total_s

    def test_enabled_run_is_bit_identical_to_disabled(self):
        baseline = [dataclasses.asdict(r) for r in _workload()]
        with profiling():
            profiled = [dataclasses.asdict(r) for r in _workload()]
        assert profiled == baseline

    def test_inner_sink_still_observes_and_costs_obs_phase(self):
        session = Observation("phase-test")
        with profiling(session) as prof:
            _workload()
        # The inner sink saw the run: engine counters are populated.
        total = session.registry.value("engine.exchanges_initiated")
        assert total > 0
        # ...and its cost was attributed, not smeared into subsystems.
        assert prof.totals.get("obs", 0.0) > 0.0
        assert prof.attributed_s() == pytest.approx(prof.total_s, rel=0.05)

    def test_inner_sink_results_identical_too(self):
        baseline = [dataclasses.asdict(r) for r in _workload()]
        with profiling(Observation("phase-test")):
            wrapped = [dataclasses.asdict(r) for r in _workload()]
        assert wrapped == baseline

    def test_epoch_switches_attribution_bucket(self):
        prof = PhaseProfiler()
        prof.start()
        prof.epoch("t0")
        prof.finish()
        assert "t0" in prof.epochs
        assert prof.epochs[0] == ""

    def test_shares_sum_to_one(self):
        with profiling() as prof:
            _workload()
        assert sum(prof.shares().values()) == pytest.approx(1.0, abs=1e-9)

    def test_finish_without_start_is_noop(self):
        prof = PhaseProfiler()
        prof.finish()
        assert prof.total_s == 0.0
        assert prof.totals == {}


class TestReadouts:
    def test_summary_lines_mention_phases(self):
        with profiling() as prof:
            _workload()
        text = "\n".join(phase_summary_lines(prof))
        assert "events" in text
        assert "engine" in text

    def test_empty_profile_summary(self):
        prof = PhaseProfiler()
        lines = phase_summary_lines(prof)
        assert any("no phases" in line for line in lines)

    def test_chrome_trace_is_valid_and_loadable(self, tmp_path):
        with profiling() as prof:
            _workload()
        doc = phase_chrome_trace(prof)
        assert validate_chrome_trace(doc) == []
        # Round-trips through JSON (what bench profile --trace-out does).
        path = tmp_path / "phase.json"
        path.write_text(json.dumps(doc))
        assert validate_chrome_trace(json.loads(path.read_text())) == []
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert spans
        assert all(e["dur"] >= 1 for e in spans)
        assert doc["otherData"]["time_unit"] == "wall-us"
