"""Corpus store determinism, repro bundles, and the shrinker.

The acceptance bar lives here: two campaigns from the same (seed,
budget) write byte-identical corpus trees, a corrupt entry is detected
by its content hash, and shrinking a known-bad scenario yields a
strictly smaller bundle that trips the same oracle key and replays
bit-identically.
"""

import json
from pathlib import Path

import pytest

from repro.faults.plan import FaultPlan, TileFaultEvent
from repro.fuzz.campaign import fuzz_campaign, replay_corpus
from repro.fuzz.corpus import Corpus, ReproBundle, load_bundle
from repro.fuzz.oracles import Failure, run_oracles
from repro.fuzz.scenario import (
    EngineSection,
    FuzzError,
    Scenario,
    ScenarioEvent,
    SocSection,
)
from repro.fuzz.shrink import shrink_scenario


def known_bad() -> Scenario:
    """A scenario that deterministically hangs: the chained workload
    cannot finish inside the horizon (decorated with events and faults
    the shrinker should strip away)."""
    return Scenario(
        kind="soc",
        seed=3,
        max_cycles=60_000,
        events=(
            ScenarioEvent(cycle=5_000, kind="thermal_cap", tile=1, value=4),
            ScenarioEvent(cycle=9_000, kind="thermal_cap", tile=3, value=6),
        ),
        fault_plan=FaultPlan(
            seed=9,
            tile_events=(
                TileFaultEvent(cycle=2_000, tile=4, action="hang"),
                TileFaultEvent(cycle=30_000, tile=4, action="revive"),
            ),
        ),
        soc=SocSection(
            preset="3x3",
            budget_mw=120,
            tasks=(
                ("a", "FFT", 400_000, (), None),
                ("b", "Viterbi", 400_000, ("a",), None),
                ("c", "NVDLA", 400_000, ("b",), None),
                ("d", "FFT", 400_000, ("c",), None),
            ),
        ),
    )


def passing() -> Scenario:
    return Scenario(
        kind="engine",
        seed=5,
        max_cycles=8_000,
        engine=EngineSection(dim=3, max_by_tile=(8,) * 9, pool=48),
    )


class TestCorpus:
    def test_entry_kept_only_when_novel(self, tmp_path):
        corpus = Corpus(tmp_path / "c")
        s = passing()
        outcome = run_oracles(s)
        assert corpus.add_entry(s, outcome)  # first sight: novel
        assert corpus.add_entry(s, outcome) is None  # nothing new
        assert corpus.stats()["entries"] == 1

    def test_corrupt_entry_detected_by_content_hash(self, tmp_path):
        corpus = Corpus(tmp_path / "c")
        s = passing()
        corpus.add_entry(s, run_oracles(s))
        digest = s.scenario_hash
        path = tmp_path / "c" / "entries" / f"{digest}.json"
        doc = json.loads(path.read_text())
        doc["seed"] = 999  # silent bit-rot
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        fresh = Corpus(tmp_path / "c")
        with pytest.raises(FuzzError, match="corrupt"):
            fresh.load_scenario(digest)

    def test_corrupt_manifest_rejected(self, tmp_path):
        root = tmp_path / "c"
        root.mkdir()
        (root / "manifest.json").write_text("{broken")
        with pytest.raises(FuzzError, match="corrupt corpus manifest"):
            Corpus(root)

    def test_manifest_has_no_timestamps(self, tmp_path):
        corpus = Corpus(tmp_path / "c")
        s = passing()
        corpus.add_entry(s, run_oracles(s))
        text = (tmp_path / "c" / "manifest.json").read_text()
        for needle in ("time", "date", "stamp"):
            assert needle not in text

    def test_two_campaigns_byte_identical(self, tmp_path):
        for name in ("one", "two"):
            fuzz_campaign(11, 4, tmp_path / name)
        one = sorted((tmp_path / "one").rglob("*.json"))
        two = sorted((tmp_path / "two").rglob("*.json"))
        assert [p.name for p in one] == [p.name for p in two]
        for a, b in zip(one, two):
            assert a.read_bytes() == b.read_bytes(), a.name

    def test_replay_corpus_green_and_detects_drift(self, tmp_path):
        fuzz_campaign(11, 3, tmp_path / "c")
        count, broken = replay_corpus(tmp_path / "c")
        assert count >= 1 and broken == []
        # poison a recorded fingerprint -> replay flags drift
        manifest = tmp_path / "c" / "manifest.json"
        doc = json.loads(manifest.read_text())
        digest = sorted(doc["entries"])[0]
        doc["entries"][digest]["fingerprint"] = "0" * 32
        manifest.write_text(json.dumps(doc) + "\n")
        _, broken = replay_corpus(tmp_path / "c")
        assert broken and "drift" in broken[0]


class TestReproBundle:
    def test_round_trip(self, tmp_path):
        bundle = ReproBundle(
            passing(),
            Failure(oracle="hang", key="hang:workload", detail="d"),
            "abc123",
        )
        path = tmp_path / "bundle.json"
        path.write_text(bundle.to_json())
        back = load_bundle(path)
        assert back.scenario == bundle.scenario
        assert back.failure == bundle.failure
        assert back.fingerprint == "abc123"

    def test_missing_file_is_fuzz_error(self, tmp_path):
        with pytest.raises(FuzzError, match="cannot read"):
            load_bundle(tmp_path / "nope.json")

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text('{"scenario": {}}')
        with pytest.raises(FuzzError, match="missing field"):
            load_bundle(path)


@pytest.fixture(scope="module")
def shrunk():
    """One shared shrink campaign over the known-bad scenario."""
    return shrink_scenario(known_bad(), "hang:workload")


class TestShrink:
    def test_known_bad_shrinks_smaller_same_key(self, shrunk):
        bad = known_bad()
        outcome = run_oracles(bad)
        assert outcome.failure_keys == ("hang:workload",)
        assert shrunk.shrunk
        assert shrunk.scenario.size < bad.size
        assert shrunk.failure.key == "hang:workload"
        # the minimized scenario sheds the decorative events and faults
        assert shrunk.scenario.events == ()
        assert shrunk.scenario.fault_plan.is_null
        assert len(shrunk.scenario.soc.tasks) == 1

    def test_shrunk_scenario_replays_bit_identically(self, shrunk):
        again = run_oracles(shrunk.scenario)
        assert "hang:workload" in again.failure_keys
        assert again.fingerprint == shrunk.fingerprint

    def test_shrink_is_deterministic(self, shrunk):
        b = shrink_scenario(known_bad(), "hang:workload")
        assert b.scenario.scenario_hash == shrunk.scenario.scenario_hash

    def test_stale_bundle_refuses_to_shrink(self):
        with pytest.raises(ValueError, match="does not reproduce"):
            shrink_scenario(passing(), "hang:workload")


class TestFailurePath:
    def test_campaign_files_failing_bundle(self, tmp_path):
        # seed the corpus with the known-bad scenario via a campaign
        # that replays it directly through the corpus API
        corpus = Corpus(tmp_path / "c")
        bad = known_bad()
        outcome = run_oracles(bad)
        path = corpus.add_failure(
            ReproBundle(bad, outcome.failures[0], outcome.fingerprint)
        )
        assert Path(path).exists()
        back = load_bundle(path)
        assert back.failure.key == "hang:workload"
        assert corpus.stats()["failures"] == 1
