"""repro.serve: protocol validation, dedupe, streaming, cancellation.

The HTTP tests run a real server on an ephemeral port and drive it
with the real :class:`ServeClient` — the same code path the load
generator and the CI smoke job use — inside ``asyncio.run`` (the repo
takes no async test framework dependency).
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

import pytest

from repro.campaign.presets import get_preset
from repro.campaign.store import CampaignStore
from repro.fuzz.scenario import EngineSection, Scenario
from repro.report.run_report import load_run_report
from repro.serve.client import ClientError, ServeClient
from repro.serve.jobs import JobQueue
from repro.serve.protocol import ServeError, parse_submission
from repro.serve.server import ServeServer
from repro.serve.stream import JobLog, StreamingSink


def alerting_scenario(seed: int = 7) -> Scenario:
    """A small engine scenario whose starved pool raises alerts."""
    return Scenario(
        kind="engine",
        seed=seed,
        variant="4way",
        max_cycles=60_000,
        engine=EngineSection(dim=3, max_by_tile=(8,) * 9, pool=20),
    )


def smoke_doc() -> dict:
    return {"kind": "campaign", "spec": get_preset("smoke").to_dict()}


async def _with_server(store_root: Path, body) -> object:
    server = ServeServer(CampaignStore(store_root))
    host, port = await server.start("127.0.0.1", 0)
    try:
        return await body(server, host, port)
    finally:
        await server.close()


def run_with_server(store_root: Path, body) -> object:
    return asyncio.run(_with_server(store_root, body))


# ------------------------------------------------------------------- protocol
class TestParseSubmission:
    def test_campaign_spec_roundtrip(self):
        sub = parse_submission(smoke_doc())
        assert sub.kind == "campaign"
        assert sub.spec is not None
        assert sub.key == f"campaign:{sub.spec.spec_hash}"
        assert sub.job_id == f"campaign-{sub.spec.spec_hash[:16]}"

    def test_campaign_preset(self):
        sub = parse_submission({"kind": "campaign", "preset": "smoke"})
        assert sub.spec is not None
        assert sub.spec.spec_hash == get_preset("smoke").spec_hash

    def test_scenario(self):
        scenario = alerting_scenario()
        sub = parse_submission(
            {"kind": "scenario", "scenario": scenario.to_dict()}
        )
        assert sub.content_hash == scenario.scenario_hash

    def test_bundle(self):
        scenario = alerting_scenario()
        sub = parse_submission(
            {
                "kind": "bundle",
                "bundle": {
                    "scenario": scenario.to_dict(),
                    "failure": {
                        "oracle": "monitor",
                        "key": "monitor:starvation",
                        "detail": "x",
                    },
                    "fingerprint": "ab" * 16,
                },
            }
        )
        assert sub.expected_fingerprint == "ab" * 16
        assert sub.expected_failure is not None
        # A bundle is its own dedupe lane, distinct from the bare scenario.
        assert sub.key == f"bundle:{scenario.scenario_hash}"

    @pytest.mark.parametrize(
        "doc,fragment",
        [
            (None, "must be a JSON object"),
            ({}, "unknown submission kind"),
            ({"kind": "nope"}, "unknown submission kind"),
            ({"kind": "campaign"}, "exactly one of 'spec' or 'preset'"),
            (
                {"kind": "campaign", "preset": "s", "spec": {}},
                "exactly one of",
            ),
            ({"kind": "campaign", "preset": 7}, "preset must be a string"),
            (
                {"kind": "campaign", "spec": {"bogus": 1}},
                "invalid campaign spec",
            ),
            (
                {"kind": "scenario", "scenario": {"kind": "x"}},
                "invalid scenario",
            ),
            ({"kind": "bundle", "bundle": {}}, "bundle missing field"),
            (
                {"kind": "scenario", "scenario": {}, "extra": 1},
                "unknown submission field",
            ),
            (
                {
                    "kind": "campaign",
                    "preset": "smoke",
                    "priority": "high",
                },
                "priority must be an integer",
            ),
            (
                {"kind": "campaign", "preset": "smoke", "priority": 99},
                "out of range",
            ),
        ],
    )
    def test_rejects_one_line(self, doc, fragment):
        with pytest.raises(ServeError) as excinfo:
            parse_submission(doc)
        message = str(excinfo.value)
        assert fragment in message
        assert "\n" not in message


# -------------------------------------------------------------------- dedupe
class TestDedupe:
    def test_concurrent_identical_submissions_execute_once(self, tmp_path):
        """N simultaneous identical submissions resolve to one execution."""
        doc = smoke_doc()

        async def body(server, host, port):
            async def one():
                async with ServeClient(host, port) as client:
                    response = await client.submit(doc)
                    await client.wait(response["job"])
                    return response

            responses = await asyncio.gather(*(one() for _ in range(8)))
            async with ServeClient(host, port) as client:
                queue = await client.queue()
            return responses, queue

        responses, queue = run_with_server(tmp_path / "store", body)
        assert len({r["job"] for r in responses}) == 1
        outcomes = sorted(r["outcome"] for r in responses)
        assert outcomes.count("new") == 1
        assert queue["stats"]["executed"] == 1
        assert queue["stats"]["submitted"] == 8
        assert queue["stats"]["deduped"] == 7

    def test_warm_resubmission_executes_nothing(self, tmp_path):
        """A fresh server over a warm store answers without executing."""
        store_root = tmp_path / "store"
        doc = smoke_doc()

        async def first(server, host, port):
            async with ServeClient(host, port) as client:
                response = await client.submit(doc)
                return await client.wait(response["job"])

        done = run_with_server(store_root, first)
        assert done["state"] == "done"
        assert done["result"]["executed"] == 4

        async def second(server, host, port):
            async with ServeClient(host, port) as client:
                response = await client.submit(doc)
                frames = await client.stream_job(response["job"])
                queue = await client.queue()
                return response, frames, queue

        response, frames, queue = run_with_server(store_root, second)
        assert response["outcome"] == "cached"
        assert response["state"] == "cached"
        assert queue["stats"]["executed"] == 0
        assert queue["stats"]["cache_hits"] == 1
        final = frames[-1]
        assert final["type"] == "done" and final["state"] == "cached"
        assert final["result"]["executed"] == 0

    def test_independent_runs_store_identical_bytes(self, tmp_path):
        """Two cold executions of one spec produce byte-identical artifacts."""
        doc = smoke_doc()
        spec_dir = parse_submission(doc).content_hash[:16]

        async def body(server, host, port):
            async with ServeClient(host, port) as client:
                response = await client.submit(doc)
                await client.wait(response["job"])

        blobs = []
        for name in ("a", "b"):
            root = tmp_path / name
            run_with_server(root, body)
            report = root / spec_dir / "report.json"
            results = root / spec_dir / "results.jsonl"
            blobs.append((report.read_bytes(), results.read_bytes()))
        assert blobs[0] == blobs[1]

    def test_scenario_warm_cache(self, tmp_path):
        store_root = tmp_path / "store"
        scenario = alerting_scenario()
        doc = {"kind": "scenario", "scenario": scenario.to_dict()}

        async def body(server, host, port):
            async with ServeClient(host, port) as client:
                first = await client.submit(doc)
                await client.wait(first["job"])
                return first

        run_with_server(store_root, body)

        async def warm(server, host, port):
            async with ServeClient(host, port) as client:
                response = await client.submit(doc)
                stats = (await client.queue())["stats"]
                return response, stats

        response, stats = run_with_server(store_root, warm)
        assert response["outcome"] == "cached"
        assert stats["executed"] == 0


# ------------------------------------------------------------------ streaming
class TestStreaming:
    def test_streamed_alerts_equal_report(self, tmp_path):
        """The streamed alert sequence is the frozen report's alert list.

        Stream order is emission order; the canonical order is a
        *stable* sort by (epoch, cycle, monitor), so sorting the
        streamed frames by that key must reproduce report.json exactly.
        """
        store_root = tmp_path / "store"
        scenario = alerting_scenario()

        async def body(server, host, port):
            async with ServeClient(host, port) as client:
                response = await client.submit(
                    {"kind": "scenario", "scenario": scenario.to_dict()}
                )
                return response, await client.stream_job(response["job"])

        response, frames = run_with_server(store_root, body)
        streamed = [f["alert"] for f in frames if f["type"] == "alert"]
        assert streamed, "scenario must raise alerts for this test to bite"
        report = load_run_report(
            store_root
            / "scenarios"
            / scenario.scenario_hash[:16]
            / "report.json"
        )
        canonical = sorted(
            streamed, key=lambda a: (a["epoch"], a["cycle"], a["monitor"])
        )
        assert canonical == report.alerts
        done = frames[-1]
        assert done["type"] == "done"
        assert done["result"]["fingerprint"] == report.summary["fingerprint"]

    def test_campaign_stream_has_progress_and_counters(self, tmp_path):
        async def body(server, host, port):
            async with ServeClient(host, port) as client:
                response = await client.submit(smoke_doc())
                return await client.stream_job(response["job"])

        frames = run_with_server(tmp_path / "store", body)
        kinds = {frame["type"] for frame in frames}
        assert {"job", "state", "progress", "counter", "done"} <= kinds
        counters = [f for f in frames if f["type"] == "counter"]
        # Only the campaign.* family streams live; engine counters
        # appear solely as totals in the done frame.
        assert counters and all(
            f["name"].startswith("campaign.") for f in counters
        )
        done = frames[-1]
        assert done["result"]["counters"]["campaign.units_executed"] == 4
        assert any(
            not name.startswith("campaign.")
            for name in done["result"]["counters"]
        )

    def test_late_subscriber_replays_history(self, tmp_path):
        """Streaming a finished job returns its complete frame history."""

        async def body(server, host, port):
            async with ServeClient(host, port) as client:
                response = await client.submit(smoke_doc())
                live = await client.stream_job(response["job"])
                replay = await client.stream_job(response["job"])
                return live, replay

        live, replay = run_with_server(tmp_path / "store", body)
        assert live == replay


class TestStreamingSink:
    def test_counter_whitelist_and_totals(self):
        frames = []
        sink = StreamingSink(frames.append)
        sink.inc("campaign.units_total", 0, 4)
        sink.inc("engine.exchanges_initiated", 10)
        sink.inc("engine.exchanges_initiated", 20)
        sink.set_gauge("campaign.units_remaining", 0, 3)
        sink.set_gauge("engine.depth", 0, 9)
        assert [f["type"] for f in frames] == ["counter", "gauge"]
        assert frames[0]["name"] == "campaign.units_total"
        assert sink.totals == {
            "campaign.units_total": 4,
            "engine.exchanges_initiated": 2,
        }

    def test_job_log_close_is_idempotent_and_replays(self):
        async def body():
            log = JobLog(asyncio.get_running_loop())
            log.publish({"type": "a"})
            early = log.subscribe()
            log.publish({"type": "b"})
            log.close()
            log.publish({"type": "dropped"})
            log.close()
            late = log.subscribe()

            async def drain(queue):
                frames = []
                while True:
                    frame = await queue.get()
                    if frame is None:
                        return frames
                    frames.append(frame)

            return await drain(early), await drain(late)

        early, late = asyncio.run(body())
        assert [f["type"] for f in early] == ["a", "b"]
        assert early == late


# --------------------------------------------------------------- cancellation
class TestCancellation:
    def test_cancel_mid_queue_leaves_store_resumable(self, tmp_path):
        """A cancelled queued job never touches the store; the spec can
        still be executed to completion afterwards."""
        store_root = tmp_path / "store"
        blocker = smoke_doc()
        victim = {"kind": "campaign", "preset": "fig03-quick"}

        async def body(server, host, port):
            # Hold the worker at the gate so the victim stays queued —
            # the server runs in-process, so the test can interpose.
            import threading

            gate = threading.Event()
            original_execute = server.queue._execute

            def gated_execute(job):
                gate.wait(timeout=60)
                return original_execute(job)

            server.queue._execute = gated_execute
            async with ServeClient(host, port) as client:
                first = await client.submit(blocker)
                second = await client.submit(victim)
                status, cancelled = await client.cancel(second["job"])
                gate.set()
                await client.wait(first["job"])
                # Cancelling a finished job is a 409 conflict.
                conflict_status, conflict = await client.cancel(first["job"])
                job = await client.job(second["job"])
                return status, cancelled, conflict_status, conflict, job

        status, cancelled, conflict_status, conflict, job = run_with_server(
            store_root, body
        )
        assert status == 200 and cancelled["state"] == "cancelled"
        assert conflict_status == 409 and "error" in conflict
        assert job["state"] == "cancelled"
        victim_hash = parse_submission(victim).content_hash
        assert not (store_root / victim_hash[:16]).exists()

        # The store is resumable: resubmitting the cancelled spec on a
        # fresh server runs it to completion.
        async def resume(server, host, port):
            async with ServeClient(host, port) as client:
                response = await client.submit(victim)
                return await client.wait(response["job"])

        done = run_with_server(store_root, resume)
        assert done["state"] == "done"
        assert done["result"]["executed"] > 0

    def test_cancel_unknown_job_is_404(self, tmp_path):
        async def body(server, host, port):
            async with ServeClient(host, port) as client:
                return await client.cancel("campaign-feedfeedfeedfeed")

        status, body_doc = run_with_server(tmp_path / "store", body)
        assert status == 404
        assert "no such job" in body_doc["error"]


# ------------------------------------------------------------------ priority
class TestPriority:
    def test_higher_priority_runs_first(self, tmp_path):
        """With the worker busy, a later high-priority job overtakes a
        queued low-priority one."""

        async def body():
            queue = JobQueue(
                CampaignStore(tmp_path / "store"),
                loop=asyncio.get_running_loop(),
            )
            # No worker started: inspect the heap order directly.
            low = parse_submission(
                {"kind": "campaign", "preset": "smoke", "priority": -2}
            )
            high = parse_submission(
                {"kind": "campaign", "preset": "fig03-quick", "priority": 5}
            )
            queue.submit(low)
            queue.submit(high)
            import heapq

            order = [
                heapq.heappop(queue._heap)[2].submission.priority
                for _ in range(2)
            ]
            await queue.close()
            return order

        assert asyncio.run(body()) == [5, -2]


# ----------------------------------------------------------------- bad input
class TestBadRequests:
    def test_corrupt_json_is_400_one_line(self, tmp_path):
        """Corrupt submission bodies get a one-line 400, no traceback."""

        async def body(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            payload = b'{"kind": "campaign", '  # truncated JSON
            writer.write(
                b"POST /submit HTTP/1.1\r\n"
                b"Host: x\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (len(payload), payload)
            )
            await writer.drain()
            status_line = await reader.readline()
            headers = {}
            while True:
                raw = await reader.readline()
                if raw in (b"\r\n", b"\n", b""):
                    break
                name, _, value = raw.decode().partition(":")
                headers[name.strip().lower()] = value.strip()
            body_bytes = await reader.readexactly(
                int(headers["content-length"])
            )
            writer.close()
            return status_line, body_bytes

        status_line, body_bytes = run_with_server(tmp_path / "store", body)
        assert b"400" in status_line
        doc = json.loads(body_bytes)
        assert "not valid JSON" in doc["error"]
        assert "\n" not in doc["error"]
        assert "Traceback" not in body_bytes.decode()

    def test_unknown_route_and_method(self, tmp_path):
        async def body(server, host, port):
            async with ServeClient(host, port) as client:
                missing = await client.request("GET", "/nope")
                wrong = await client.request("GET", "/submit")
                bad_run = await client.request("GET", "/runs/../report")
                gone = await client.request(
                    "GET", "/runs/feedfeedfeedfeed/report"
                )
                return missing, wrong, bad_run, gone

        missing, wrong, bad_run, gone = run_with_server(
            tmp_path / "store", body
        )
        assert missing[0] == 404
        assert wrong[0] == 405
        assert bad_run[0] == 400
        assert gone[0] == 404

    def test_submit_rejection_raises_client_error(self, tmp_path):
        async def body(server, host, port):
            async with ServeClient(host, port) as client:
                with pytest.raises(ClientError) as excinfo:
                    await client.submit({"kind": "nope"})
                return str(excinfo.value)

        message = run_with_server(tmp_path / "store", body)
        assert "unknown submission kind" in message


# ----------------------------------------------------------------- dashboards
class TestRunArtifacts:
    def test_report_and_dashboard_served(self, tmp_path):
        async def body(server, host, port):
            async with ServeClient(host, port) as client:
                response = await client.submit(smoke_doc())
                await client.wait(response["job"])
                run = response["hash"][:16]
                report = await client.request("GET", f"/runs/{run}/report")
                dash = await client.request("GET", f"/runs/{run}/dashboard")
                return report, dash

        report, dash = run_with_server(tmp_path / "store", body)
        assert report[0] == 200
        assert report[1]["kind"] == "campaign"
        assert dash[0] == 200
        assert b"<!DOCTYPE html>" in dash[1]

    def test_generic_get_of_stream_returns_jsonl_text(self, tmp_path):
        """A plain GET of /stream (the `serve get` path) must come back
        as JSONL text, not be fed line-concatenated into json.loads —
        "application/jsonl".startswith("application/json") is true, so
        the dispatch order in the client is load-bearing.
        """

        async def body(server, host, port):
            async with ServeClient(host, port) as client:
                response = await client.submit(smoke_doc())
                await client.wait(response["job"])
                return await client.request(
                    "GET", f"/jobs/{response['job']}/stream"
                )

        status, text = run_with_server(tmp_path / "store", body)
        assert status == 200
        assert isinstance(text, str)
        frames = [json.loads(line) for line in text.splitlines() if line]
        assert frames[0]["type"] == "job"
        assert frames[-1]["type"] == "done"
