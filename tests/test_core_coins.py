"""Tests for the coin-exchange arithmetic, including property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coins import (
    CoinStateError,
    ExchangeResult,
    TileCoins,
    group_exchange,
    pairwise_exchange,
)

tile = st.builds(
    TileCoins,
    has=st.integers(-10, 200),
    max=st.integers(0, 64),
)
active_tile = st.builds(
    TileCoins,
    has=st.integers(0, 200),
    max=st.integers(1, 64),
)


class TestTileCoins:
    def test_ratio(self):
        assert TileCoins(3, 8).ratio == pytest.approx(0.375)

    def test_zero_max_with_coins_is_infinite_ratio(self):
        assert TileCoins(5, 0).ratio == float("inf")

    def test_zero_max_without_coins_is_zero_ratio(self):
        assert TileCoins(0, 0).ratio == 0.0

    def test_negative_max_rejected(self):
        with pytest.raises(CoinStateError):
            TileCoins(0, -1)


class TestExchangeResult:
    def test_nonconserving_deltas_rejected(self):
        with pytest.raises(CoinStateError):
            ExchangeResult((1, 2))

    def test_moved_counts_transfers(self):
        assert ExchangeResult((3, -3)).moved == 3
        assert ExchangeResult((0, 0)).moved == 0

    def test_is_zero(self):
        assert ExchangeResult((0, 0)).is_zero
        assert not ExchangeResult((1, -1)).is_zero


class TestPairwiseExchange:
    def test_fig2_example_equalizes_ratios(self):
        # Fig. 2's 1-way step: center has/max = 3/8 exchanging with a
        # neighbor; ratios must match within one coin afterwards.
        i = TileCoins(3, 8)
        j = TileCoins(9, 8)
        result = pairwise_exchange(i, j)
        hi, hj = i.has + result.deltas[0], j.has + result.deltas[1]
        assert hi + hj == 12
        assert abs(hi - hj) <= 1

    def test_inactive_tile_relinquishes_all_coins(self):
        i = TileCoins(10, 0)
        j = TileCoins(2, 8)
        result = pairwise_exchange(i, j)
        assert result.deltas == (-10, 10)

    def test_both_inactive_no_exchange(self):
        assert pairwise_exchange(TileCoins(4, 0), TileCoins(0, 0)).is_zero

    def test_proportional_split_respects_max_weights(self):
        i = TileCoins(30, 10)
        j = TileCoins(0, 30)
        result = pairwise_exchange(i, j)
        hi = i.has + result.deltas[0]
        hj = j.has + result.deltas[1]
        # Fair ratios: 30 coins at weights 1:3.
        assert abs(hi / 10 - hj / 30) * 10 <= 1.5

    def test_converged_pair_is_fixed_point(self):
        i = TileCoins(12, 8)
        j = TileCoins(12, 8)
        assert pairwise_exchange(i, j).is_zero

    def test_exchange_is_initiator_symmetric_at_convergence(self):
        # The canonical rounding must not ping-pong a coin depending on
        # who initiates (the livelock fixed in the engine).
        i = TileCoins(3, 8)
        j = TileCoins(2, 8)
        r_ij = pairwise_exchange(i, j)
        r_ji = pairwise_exchange(j, i)
        assert r_ij.is_zero
        assert r_ji.is_zero

    def test_cap_clamps_receiver(self):
        i = TileCoins(60, 8)
        j = TileCoins(0, 8)
        result = pairwise_exchange(i, j, cap_i=None, cap_j=10)
        assert j.has + result.deltas[1] <= 10

    def test_cap_overflow_returns_to_sender(self):
        i = TileCoins(60, 8)
        j = TileCoins(0, 8)
        result = pairwise_exchange(i, j, cap_i=100, cap_j=10)
        assert i.has + result.deltas[0] == 50
        assert j.has + result.deltas[1] == 10

    def test_doubly_capped_pair_aborts(self):
        i = TileCoins(60, 8)
        j = TileCoins(60, 8)
        result = pairwise_exchange(i, j, cap_i=10, cap_j=10)
        assert result.is_zero

    @given(active_tile, active_tile)
    @settings(max_examples=300, deadline=None)
    def test_conservation_property(self, i, j):
        result = pairwise_exchange(i, j)
        assert sum(result.deltas) == 0

    @given(active_tile, active_tile)
    @settings(max_examples=300, deadline=None)
    def test_ratio_equalization_property(self, i, j):
        result = pairwise_exchange(i, j)
        hi = i.has + result.deltas[0]
        hj = j.has + result.deltas[1]
        # After the exchange, per-tile error against the pair-fair ratio
        # is at most one coin (quantization).
        alpha = (i.has + j.has) / (i.max + j.max)
        assert abs(hi - alpha * i.max) <= 1.0 + 1e-9
        assert abs(hj - alpha * j.max) <= 1.0 + 1e-9

    @given(active_tile, active_tile)
    @settings(max_examples=300, deadline=None)
    def test_idempotence_property(self, i, j):
        """A second exchange right after the first moves nothing."""
        first = pairwise_exchange(i, j)
        i2 = TileCoins(i.has + first.deltas[0], i.max)
        j2 = TileCoins(j.has + first.deltas[1], j.max)
        assert pairwise_exchange(i2, j2).is_zero

    @given(active_tile, active_tile, st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=200, deadline=None)
    def test_caps_never_violated_property(self, i, j, cap_i, cap_j):
        result = pairwise_exchange(i, j, cap_i=cap_i, cap_j=cap_j)
        hi = i.has + result.deltas[0]
        hj = j.has + result.deltas[1]
        # A capped tile may already exceed its cap beforehand (transient);
        # the exchange must never *push* it further above.
        assert hi <= max(cap_i, i.has)
        assert hj <= max(cap_j, j.has)


class TestGroupExchange:
    def test_fig2_four_way_equalizes_group(self):
        states = [
            TileCoins(3, 8),
            TileCoins(9, 8),
            TileCoins(5, 8),
            TileCoins(7, 8),
            TileCoins(0, 8),
        ]
        result = group_exchange(states)
        total = sum(s.has for s in states)
        finals = [s.has + d for s, d in zip(states, result.deltas)]
        assert sum(finals) == total
        for h in finals:
            assert abs(h - total / 5) <= 1.5

    def test_empty_group_rejected(self):
        with pytest.raises(CoinStateError):
            group_exchange([])

    def test_caps_length_mismatch_rejected(self):
        with pytest.raises(CoinStateError):
            group_exchange([TileCoins(1, 1)], caps=[None, None])

    def test_all_inactive_group_no_exchange(self):
        states = [TileCoins(5, 0), TileCoins(3, 0)]
        assert group_exchange(states).is_zero

    def test_inactive_members_drain_to_active(self):
        states = [TileCoins(0, 8), TileCoins(10, 0), TileCoins(6, 0)]
        result = group_exchange(states)
        finals = [s.has + d for s, d in zip(states, result.deltas)]
        assert finals == [16, 0, 0]

    @given(st.lists(active_tile, min_size=2, max_size=5))
    @settings(max_examples=200, deadline=None)
    def test_group_conservation_property(self, states):
        result = group_exchange(states)
        assert sum(result.deltas) == 0

    @given(st.lists(active_tile, min_size=2, max_size=5))
    @settings(max_examples=200, deadline=None)
    def test_group_fairness_property(self, states):
        result = group_exchange(states)
        total = sum(s.has for s in states)
        sum_max = sum(s.max for s in states)
        alpha = total / sum_max
        finals = [s.has + d for s, d in zip(states, result.deltas)]
        # Neighbors land within one coin of fair; the center additionally
        # absorbs the group rounding remainder (at most one coin per
        # neighbor).
        for h, s in zip(finals[1:], states[1:]):
            assert abs(h - alpha * s.max) <= 1.0 + 1e-9
        assert abs(finals[0] - alpha * states[0].max) <= len(states) + 1e-9

    @given(st.lists(active_tile, min_size=2, max_size=5), st.integers(0, 63))
    @settings(max_examples=150, deadline=None)
    def test_group_caps_property(self, states, cap):
        caps = [cap] * len(states)
        result = group_exchange(states, caps)
        finals = [s.has + d for s, d in zip(states, result.deltas)]
        for h, s in zip(finals, states):
            assert h <= max(cap, s.has)
