"""Tests for scenario builders, the paper's applications, and synthesis."""

import pytest

from repro.workloads.apps import (
    autonomous_vehicle_dependent,
    autonomous_vehicle_parallel,
    computer_vision_dependent,
    computer_vision_parallel,
    pm_cluster_workload,
)
from repro.workloads.scenarios import (
    build_parallel,
    chain,
    class_census,
    diamond,
    repeat_frames,
)
from repro.workloads.synthetic import random_phase_trace


class TestScenarioBuilders:
    def test_build_parallel(self):
        g = build_parallel([("a", "FFT", 10), ("b", "GEMM", 20)])
        assert g.is_parallel()
        assert len(g) == 2

    def test_chain_sequences_tasks(self):
        g = chain([("a", "FFT", 10), ("b", "GEMM", 20), ("c", "FFT", 5)])
        assert g["b"].deps == ("a",)
        assert g["c"].deps == ("b",)
        assert g.max_concurrency() == 1

    def test_diamond_shape(self):
        g = diamond(
            ("s", "FFT", 1),
            [("m1", "GEMM", 1), ("m2", "GEMM", 1)],
            ("k", "FFT", 1),
        )
        assert g["k"].deps == ("m1", "m2")
        assert g.max_concurrency() == 2

    def test_diamond_requires_middles(self):
        with pytest.raises(Exception):
            diamond(("s", "FFT", 1), [], ("k", "FFT", 1))

    def test_repeat_frames_chains_iterations(self):
        g = build_parallel([("a", "FFT", 10)])
        unrolled = repeat_frames(g, 3)
        assert len(unrolled) == 3
        assert unrolled["a@f1"].deps == ("a@f0",)
        assert unrolled["a@f2"].deps == ("a@f1",)

    def test_repeat_single_frame_identity(self):
        g = build_parallel([("a", "FFT", 10)])
        assert repeat_frames(g, 1) is g

    def test_class_census(self):
        g = build_parallel(
            [("a", "FFT", 1), ("b", "FFT", 1), ("c", "GEMM", 1)]
        )
        assert class_census(g) == {"FFT": 2, "GEMM": 1}


class TestPaperApplications:
    def test_av_parallel_matches_3x3_soc(self):
        g = autonomous_vehicle_parallel()
        assert class_census(g) == {"FFT": 3, "Viterbi": 2, "NVDLA": 1}
        assert g.is_parallel()

    def test_av_dependent_is_a_dag_with_limited_concurrency(self):
        g = autonomous_vehicle_dependent()
        assert not g.is_parallel()
        assert g.max_concurrency() < 6

    def test_cv_parallel_matches_4x4_soc(self):
        g = computer_vision_parallel()
        assert class_census(g) == {"Vision": 4, "Conv2D": 4, "GEMM": 5}

    def test_cv_dependent_streams(self):
        g = computer_vision_dependent()
        assert g["conv0"].deps == ("vis0",)
        assert g["gemm_fuse"].deps == ("gemm0", "gemm1", "gemm2", "gemm3")

    def test_pm_cluster_workload_sizes(self):
        for n in (7, 5, 4, 3):
            assert len(pm_cluster_workload(n)) == n

    def test_pm_cluster_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            pm_cluster_workload(8)
        with pytest.raises(ValueError):
            pm_cluster_workload(0)


class TestPhaseTrace:
    def test_events_sorted_and_in_horizon(self):
        trace = random_phase_trace(8, 10_000, 100_000, seed=1)
        times = [t for t, _, _ in trace.events]
        assert times == sorted(times)
        assert all(0 <= t < 100_000 for t in times)

    def test_mean_interval_shrinks_with_tile_count(self):
        """The paper's T_w / N statistic (Fig. 1)."""
        few = random_phase_trace(4, 20_000, 2_000_000, seed=2)
        many = random_phase_trace(32, 20_000, 2_000_000, seed=2)
        assert many.mean_interval_cycles() < few.mean_interval_cycles() / 3

    def test_deterministic_by_seed(self):
        a = random_phase_trace(4, 10_000, 50_000, seed=9)
        b = random_phase_trace(4, 10_000, 50_000, seed=9)
        assert a.events == b.events

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            random_phase_trace(0, 10_000, 1000, 1)
        with pytest.raises(ValueError):
            random_phase_trace(4, -5, 1000, 1)
        with pytest.raises(ValueError):
            random_phase_trace(4, 100, 1000, 1, duty=1.5)
