"""Benchmark registry and harness semantics."""

import pytest

from repro.perf.harness import (
    counter_total,
    exact_quantile,
    peak_rss_kb,
    run_benchmark,
    run_suite_benchmarks,
    wall_stats,
)
from repro.perf.registry import (
    Benchmark,
    BenchmarkRegistry,
    PerfError,
    load_builtin_suites,
)


class TestRegistry:
    def test_register_and_lookup(self):
        reg = BenchmarkRegistry()

        @reg.register("demo", params={"n": 3}, suites=("s1", "s2"))
        def _run(n):
            return {"sq": n * n}

        b = reg.get("demo")
        assert b.param_dict == {"n": 3}
        assert reg.suite("s1") == [b]
        assert reg.suite_names() == ["s1", "s2"]
        assert "demo" in reg
        assert len(reg) == 1

    def test_duplicate_identical_is_idempotent(self):
        reg = BenchmarkRegistry()

        def run():
            return None

        b = Benchmark(name="x", run=run)
        assert reg.add(b) is reg.add(b)
        assert len(reg) == 1

    def test_duplicate_conflicting_rejected(self):
        reg = BenchmarkRegistry()
        reg.add(Benchmark(name="x", run=lambda: None))
        with pytest.raises(PerfError, match="already registered"):
            reg.add(Benchmark(name="x", run=lambda: None, units="ops"))

    def test_invalid_declarations_rejected(self):
        with pytest.raises(PerfError):
            Benchmark(name="has space", run=lambda: None)
        with pytest.raises(PerfError):
            Benchmark(name="x", run="not-callable")
        with pytest.raises(PerfError):
            Benchmark(name="x", run=lambda: None, suites=())

    def test_unknown_name_lists_known(self):
        reg = BenchmarkRegistry()
        reg.add(Benchmark(name="known", run=lambda: None))
        with pytest.raises(PerfError, match="known"):
            reg.get("missing")

    def test_builtin_core_suite_loads(self):
        reg = load_builtin_suites()
        names = [b.name for b in reg.suite("core")]
        assert "engine.convergence" in names
        assert "lint.warm" in names
        # Loading twice must not error (idempotent registration).
        assert load_builtin_suites() is reg


class TestQuantiles:
    def test_nearest_rank(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert exact_quantile(samples, 0.0) == 1.0
        assert exact_quantile(samples, 0.5) == 2.0
        assert exact_quantile(samples, 0.9) == 4.0
        assert exact_quantile(samples, 1.0) == 4.0

    def test_single_sample(self):
        for q in (0.0, 0.5, 1.0):
            assert exact_quantile([7.0], q) == 7.0

    def test_errors(self):
        with pytest.raises(PerfError):
            exact_quantile([], 0.5)
        with pytest.raises(PerfError):
            exact_quantile([1.0], 1.5)

    def test_wall_stats_keys(self):
        stats = wall_stats([3.0, 1.0, 2.0])
        assert stats == {
            "min": 1.0, "median": 2.0, "p90": 3.0, "mean": 2.0, "max": 3.0,
        }
        with pytest.raises(PerfError):
            wall_stats([])


class TestRunBenchmark:
    def test_basic_run_records_everything(self):
        calls = []

        def body(n):
            calls.append(n)
            return {"value": n * 2}

        b = Benchmark(name="b", run=body, params=(("n", 5),))
        result = run_benchmark(b, reps=3, warmup=2)
        assert len(calls) == 5  # 2 warmup + 3 timed
        assert result.metrics == {"value": 10.0}
        assert len(result.per_rep_s) == 3
        assert result.reps == 3 and result.warmup == 2
        assert result.peak_rss_kb > 0 or peak_rss_kb() == 0

    def test_setup_feeds_run_untimed(self):
        def setup(n):
            return {"doubled": n * 2}

        def body(n, doubled):
            return {"out": doubled}

        b = Benchmark(name="b", run=body, params=(("n", 4),), setup=setup)
        result = run_benchmark(b, reps=1, warmup=0)
        assert result.metrics == {"out": 8.0}

    def test_nondeterministic_metrics_rejected(self):
        state = {"i": 0}

        def body():
            state["i"] += 1
            return {"i": state["i"]}

        b = Benchmark(name="b", run=body)
        with pytest.raises(PerfError, match="deterministic"):
            run_benchmark(b, reps=2, warmup=0)

    def test_bad_return_values_rejected(self):
        for bad in ([1, 2], {"k": "str"}, {"k": float("nan")}):
            b = Benchmark(name="b", run=lambda bad=bad: bad)
            with pytest.raises(PerfError):
                run_benchmark(b, reps=1, warmup=0)

    def test_none_return_means_no_metrics(self):
        b = Benchmark(name="b", run=lambda: None)
        assert run_benchmark(b, reps=1, warmup=0).metrics == {}

    def test_invalid_reps_rejected(self):
        b = Benchmark(name="b", run=lambda: None)
        with pytest.raises(PerfError):
            run_benchmark(b, reps=0)
        with pytest.raises(PerfError):
            run_benchmark(b, warmup=-1)

    def test_counters_snapshot_is_deterministic(self):
        from repro.core.config import preferred_embodiment
        from repro.core.runner import run_trials

        def body():
            run_trials(
                4, preferred_embodiment(), 2, base_seed=3, threshold=1.5
            )

        b = Benchmark(
            name="b",
            run=body,
            counters=("engine.exchanges_initiated", "engine.coins_moved"),
        )
        r1 = run_benchmark(b, reps=2, warmup=0)
        r2 = run_benchmark(b, reps=1, warmup=0)
        assert r1.counters == r2.counters
        assert r1.counters["engine.exchanges_initiated"] > 0

    def test_labeled_counters_aggregate(self):
        from repro.obs.sink import Observation

        session = Observation("t")
        session.inc("x.total", 0, n=2, campaign="a")
        session.inc("x.total", 0, n=3, campaign="b")
        session.inc("y.total", 0, n=5)
        assert counter_total(session, "x.total") == 5
        assert counter_total(session, "y.total") == 5
        assert counter_total(session, "absent") == 0

    def test_profile_rep_only_when_requested_and_allowed(self):
        from repro.core.config import preferred_embodiment
        from repro.core.runner import run_trials

        def body():
            run_trials(
                4, preferred_embodiment(), 1, base_seed=3, threshold=1.5
            )

        plain = Benchmark(name="plain", run=body, profile=False)
        assert run_benchmark(plain, reps=1, warmup=0, profile=True).phases == {}

        prof = Benchmark(name="prof", run=body, profile=True)
        r = run_benchmark(prof, reps=1, warmup=0, profile=True)
        assert r.phases
        assert sum(r.phases.values()) == pytest.approx(
            r.profile_total_s, rel=0.05
        )
        assert run_benchmark(prof, reps=1, warmup=0, profile=False).phases == {}

    def test_run_suite_benchmarks_progress(self):
        seen = []
        benches = [
            Benchmark(name="a", run=lambda: None),
            Benchmark(name="b", run=lambda: None),
        ]
        results = run_suite_benchmarks(
            benches,
            reps=1,
            warmup=0,
            progress=lambda i, n, b: seen.append((i, n, b.name)),
        )
        assert [r.name for r in results] == ["a", "b"]
        assert seen == [(0, 2, "a"), (1, 2, "b")]
