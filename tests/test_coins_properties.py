"""Property tests for the exact integer exchange arithmetic (Fig. 2).

Hypothesis drives adversarial ``(has, max)`` inputs — including
``max == 0`` tiles, transiently negative ``has`` (the hardware's
sign-bit widening, Section IV-A), and counts far beyond float53
precision — and asserts the two invariants the whole reproduction
rests on: deltas always sum to zero, and every coin count stays an
exact integer.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coins import (
    ExchangeResult,
    TileCoins,
    group_exchange,
    pairwise_exchange,
)

#: Adversarial coin counts: negative transients through silicon-scale
#: pools past 2**53, where float arithmetic would silently round.
HAS = st.integers(min_value=-(10**4), max_value=10**16)
MAX = st.integers(min_value=0, max_value=10**16)
CAP = st.one_of(st.none(), st.integers(min_value=0, max_value=10**16))


def tile(has: int, max_: int) -> TileCoins:
    return TileCoins(has=has, max=max_)


class TestPairwiseExchange:
    @given(h_i=HAS, m_i=MAX, h_j=HAS, m_j=MAX, cap_i=CAP, cap_j=CAP,
           shake=st.booleans())
    @settings(max_examples=300)
    def test_deltas_sum_to_zero_and_stay_integral(
        self, h_i, m_i, h_j, m_j, cap_i, cap_j, shake
    ):
        result = pairwise_exchange(
            tile(h_i, m_i), tile(h_j, m_j),
            cap_i=cap_i, cap_j=cap_j, shake=shake,
        )
        assert isinstance(result, ExchangeResult)
        assert sum(result.deltas) == 0
        for d in result.deltas:
            assert type(d) is int

    @given(h_i=HAS, m_i=MAX, h_j=HAS, m_j=MAX)
    @settings(max_examples=200)
    def test_total_is_conserved_after_applying_deltas(
        self, h_i, m_i, h_j, m_j
    ):
        result = pairwise_exchange(tile(h_i, m_i), tile(h_j, m_j))
        d_i, d_j = result.deltas
        assert (h_i + d_i) + (h_j + d_j) == h_i + h_j

    @given(h_i=HAS, m_i=MAX, h_j=HAS, m_j=MAX)
    @settings(max_examples=200)
    def test_uncapped_exchange_is_a_fixed_point(self, h_i, m_i, h_j, m_j):
        """Re-exchanging a freshly balanced pair moves nothing.

        This is the canonical-rounding property the dynamic-timing
        back-off depends on: without it one coin ping-pongs between
        converged neighbors forever.
        """
        first = pairwise_exchange(tile(h_i, m_i), tile(h_j, m_j))
        d_i, d_j = first.deltas
        second = pairwise_exchange(
            tile(h_i + d_i, m_i), tile(h_j + d_j, m_j)
        )
        assert second.is_zero

    @given(h_i=HAS, h_j=HAS, m_j=MAX)
    @settings(max_examples=100)
    def test_inactive_initiator_relinquishes_everything(
        self, h_i, h_j, m_j
    ):
        """A max == 0 tile facing an active partner keeps zero coins."""
        if m_j == 0:
            m_j = 1
        result = pairwise_exchange(tile(h_i, 0), tile(h_j, m_j))
        d_i, _ = result.deltas
        assert h_i + d_i == 0

    @given(h_i=HAS, h_j=HAS)
    @settings(max_examples=50)
    def test_both_inactive_is_a_no_op(self, h_i, h_j):
        result = pairwise_exchange(tile(h_i, 0), tile(h_j, 0))
        assert result.is_zero


GROUP = st.lists(st.tuples(HAS, MAX), min_size=1, max_size=6)


class TestGroupExchange:
    @given(group=GROUP)
    @settings(max_examples=300)
    def test_deltas_sum_to_zero_and_stay_integral(self, group):
        states = [tile(h, m) for h, m in group]
        result = group_exchange(states)
        assert sum(result.deltas) == 0
        assert len(result.deltas) == len(states)
        for d in result.deltas:
            assert type(d) is int

    @given(group=GROUP, caps=st.lists(CAP, min_size=6, max_size=6))
    @settings(max_examples=200)
    def test_capped_deltas_still_sum_to_zero(self, group, caps):
        states = [tile(h, m) for h, m in group]
        result = group_exchange(states, caps[: len(states)])
        assert sum(result.deltas) == 0
        for d in result.deltas:
            assert type(d) is int

    @given(group=GROUP)
    @settings(max_examples=100)
    def test_all_inactive_is_a_no_op(self, group):
        states = [tile(h, 0) for h, _ in group]
        result = group_exchange(states)
        assert result.is_zero
