"""Property tests for the exact integer exchange arithmetic (Fig. 2)
and the fault layer's conservation contract.

Hypothesis drives adversarial ``(has, max)`` inputs — including
``max == 0`` tiles, transiently negative ``has`` (the hardware's
sign-bit widening, Section IV-A), and counts far beyond float53
precision — and asserts the two invariants the whole reproduction
rests on: deltas always sum to zero, and every coin count stays an
exact integer.

The fault-plan properties extend that contract under injected faults:
for *any* FaultPlan, coins-on-tiles + coins-in-flight + lost-pending
must equal the minted pool at every simulator event (enforced by the
runtime sanitizer), and a plan that injects nothing must be
bit-identical to running with no plan at all.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coins import (
    ExchangeResult,
    TileCoins,
    group_exchange,
    pairwise_exchange,
)
from repro.core.config import preferred_embodiment
from repro.core.runner import run_convergence_trial
from repro.faults.plan import FaultPlan, LinkFaultRates
from tests.strategies import CAP, GROUP, HAS, MAX, fault_plans


def tile(has: int, max_: int) -> TileCoins:
    return TileCoins(has=has, max=max_)


class TestPairwiseExchange:
    @given(h_i=HAS, m_i=MAX, h_j=HAS, m_j=MAX, cap_i=CAP, cap_j=CAP,
           shake=st.booleans())
    @settings(max_examples=300)
    def test_deltas_sum_to_zero_and_stay_integral(
        self, h_i, m_i, h_j, m_j, cap_i, cap_j, shake
    ):
        result = pairwise_exchange(
            tile(h_i, m_i), tile(h_j, m_j),
            cap_i=cap_i, cap_j=cap_j, shake=shake,
        )
        assert isinstance(result, ExchangeResult)
        assert sum(result.deltas) == 0
        for d in result.deltas:
            assert type(d) is int

    @given(h_i=HAS, m_i=MAX, h_j=HAS, m_j=MAX)
    @settings(max_examples=200)
    def test_total_is_conserved_after_applying_deltas(
        self, h_i, m_i, h_j, m_j
    ):
        result = pairwise_exchange(tile(h_i, m_i), tile(h_j, m_j))
        d_i, d_j = result.deltas
        assert (h_i + d_i) + (h_j + d_j) == h_i + h_j

    @given(h_i=HAS, m_i=MAX, h_j=HAS, m_j=MAX)
    @settings(max_examples=200)
    def test_uncapped_exchange_is_a_fixed_point(self, h_i, m_i, h_j, m_j):
        """Re-exchanging a freshly balanced pair moves nothing.

        This is the canonical-rounding property the dynamic-timing
        back-off depends on: without it one coin ping-pongs between
        converged neighbors forever.
        """
        first = pairwise_exchange(tile(h_i, m_i), tile(h_j, m_j))
        d_i, d_j = first.deltas
        second = pairwise_exchange(
            tile(h_i + d_i, m_i), tile(h_j + d_j, m_j)
        )
        assert second.is_zero

    @given(h_i=HAS, h_j=HAS, m_j=MAX)
    @settings(max_examples=100)
    def test_inactive_initiator_relinquishes_everything(
        self, h_i, h_j, m_j
    ):
        """A max == 0 tile facing an active partner keeps zero coins."""
        if m_j == 0:
            m_j = 1
        result = pairwise_exchange(tile(h_i, 0), tile(h_j, m_j))
        d_i, _ = result.deltas
        assert h_i + d_i == 0

    @given(h_i=HAS, h_j=HAS)
    @settings(max_examples=50)
    def test_both_inactive_is_a_no_op(self, h_i, h_j):
        result = pairwise_exchange(tile(h_i, 0), tile(h_j, 0))
        assert result.is_zero


class TestGroupExchange:
    @given(group=GROUP)
    @settings(max_examples=300)
    def test_deltas_sum_to_zero_and_stay_integral(self, group):
        states = [tile(h, m) for h, m in group]
        result = group_exchange(states)
        assert sum(result.deltas) == 0
        assert len(result.deltas) == len(states)
        for d in result.deltas:
            assert type(d) is int

    @given(group=GROUP, caps=st.lists(CAP, min_size=6, max_size=6))
    @settings(max_examples=200)
    def test_capped_deltas_still_sum_to_zero(self, group, caps):
        states = [tile(h, m) for h, m in group]
        result = group_exchange(states, caps[: len(states)])
        assert sum(result.deltas) == 0
        for d in result.deltas:
            assert type(d) is int

    @given(group=GROUP)
    @settings(max_examples=100)
    def test_all_inactive_is_a_no_op(self, group):
        states = [tile(h, 0) for h, _ in group]
        result = group_exchange(states)
        assert result.is_zero


# --- fault-plan properties ---------------------------------------------
# Plan strategies live in tests.strategies (shared with the fuzzer).


def _fault_config(plan):
    return dataclasses.replace(
        preferred_embodiment(),
        exchange_timeout_cycles=256,
        reconcile_delay_cycles=32,
        sanitize=True,  # conservation checked at *every* sim event
        fault_plan=plan,
    )


class TestFaultPlanProperties:
    @given(plan=fault_plans(), seed=st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_coins_conserved_at_every_event_under_any_plan(
        self, plan, seed
    ):
        """on-tiles + in-flight + lost-pending == minted pool, always.

        The sanitizer raises at the first event that violates the
        ledger, so simply completing the bounded run *is* the
        assertion; the final explicit check guards the end state.
        """
        r = run_convergence_trial(
            3, _fault_config(plan), seed=seed, max_cycles=20_000
        )
        # Whatever was re-minted was first booked as lost.
        if plan.is_null:
            assert r.coins_lost == 0 and r.coins_reconciled == 0
        assert r.packets >= 0

    @given(
        seed=st.integers(0, 2**32),
        trial_seed=st.integers(0, 10**6),
        max_delay=st.integers(1, 64),
    )
    @settings(max_examples=15, deadline=None)
    def test_null_plan_is_bit_identical_to_no_plan(
        self, seed, trial_seed, max_delay
    ):
        """A plan with nothing to inject must not perturb the run —
        not by one cycle, packet, or coin — regardless of its seed or
        delay bound (the zero-overhead fast-flag contract)."""
        null_plan = FaultPlan(
            seed=seed,
            link=LinkFaultRates(max_delay_cycles=max_delay),
        )
        assert null_plan.is_null
        base = run_convergence_trial(
            3, preferred_embodiment(), seed=trial_seed, max_cycles=50_000
        )
        faulted = run_convergence_trial(
            3,
            dataclasses.replace(
                preferred_embodiment(), fault_plan=null_plan
            ),
            seed=trial_seed,
            max_cycles=50_000,
        )
        assert faulted == base

    @given(plan=fault_plans())
    @settings(max_examples=100)
    def test_plan_json_round_trip(self, plan):
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert FaultPlan.from_dict(plan.to_dict()) == plan
