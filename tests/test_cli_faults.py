"""CLI tests for the ``faults`` subcommand and the error paths.

Error paths must exit with code 2 and a one-line stderr message —
never a traceback: the CLI is the user-facing surface, and a stack
dump for a typo'd path is a bug (and what these tests pin down).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_cli(capsys, argv):
    rc = main(argv)
    captured = capsys.readouterr()
    return rc, captured.out, captured.err


class TestFaultsCommand:
    def test_rate_zero_is_bit_identical_to_convergence(self, capsys):
        """The acceptance criterion: a null plan must not perturb the
        run, so the trial lines match ``convergence`` byte for byte."""
        rc_f, out_f, _ = run_cli(
            capsys, ["faults", "--dim", "4", "--trials", "2", "--rate", "0.0"]
        )
        rc_c, out_c, _ = run_cli(
            capsys, ["convergence", "--dim", "4", "--trials", "2"]
        )
        assert rc_f == rc_c == 0
        assert out_f == out_c

    def test_lossy_run_reports_fault_summary(self, capsys):
        rc, out, _ = run_cli(
            capsys,
            ["faults", "--dim", "4", "--trials", "1", "--rate", "0.05"],
        )
        assert rc == 0
        assert "faults: discarded=" in out
        assert "reconciled=" in out

    def test_kill_tile_run_converges(self, capsys):
        rc, out, _ = run_cli(
            capsys,
            ["faults", "--dim", "4", "--trials", "1", "--kill-tile", "8"],
        )
        assert rc == 0
        assert "cycles" in out

    def test_plan_file_round_trip(self, capsys, tmp_path):
        from repro.faults import FaultPlan

        path = tmp_path / "plan.json"
        FaultPlan.uniform(drop=0.05, seed=3).save(path)
        rc, out, _ = run_cli(
            capsys,
            ["faults", "--dim", "4", "--trials", "1", "--plan", str(path)],
        )
        assert rc == 0
        assert "faults: discarded=" in out


class TestFaultsErrorPaths:
    def test_missing_plan_file(self, capsys):
        rc, _, err = run_cli(
            capsys, ["faults", "--plan", "/no/such/plan.json"]
        )
        assert rc == 2
        assert "invalid fault plan" in err
        assert "Traceback" not in err

    def test_malformed_plan_json(self, capsys, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        rc, _, err = run_cli(capsys, ["faults", "--plan", str(path)])
        assert rc == 2
        assert "invalid fault plan" in err

    def test_plan_with_unknown_field(self, capsys, tmp_path):
        path = tmp_path / "unknown.json"
        path.write_text(json.dumps({"seed": 1, "gremlins": True}))
        rc, _, err = run_cli(capsys, ["faults", "--plan", str(path)])
        assert rc == 2
        assert "gremlins" in err

    def test_out_of_range_rate(self, capsys):
        rc, _, err = run_cli(capsys, ["faults", "--rate", "1.5"])
        assert rc == 2
        assert "must be in [0, 1]" in err

    def test_rates_summing_past_one(self, capsys):
        rc, _, err = run_cli(
            capsys,
            ["faults", "--rate", "0.6", "--duplicate-rate", "0.6"],
        )
        assert rc == 2
        assert "must be <= 1" in err


class TestTraceOutErrorPaths:
    def test_convergence_bad_trace_out(self, capsys, tmp_path):
        """--trace-out pointing *under a file* cannot be created."""
        blocker = tmp_path / "blocker"
        blocker.write_text("i am a file")
        rc, _, err = run_cli(
            capsys,
            [
                "convergence", "--dim", "3", "--trials", "1",
                "--trace-out", str(blocker / "sub"),
            ],
        )
        assert rc == 2
        assert "cannot write trace outputs" in err
        assert "Traceback" not in err

    def test_trace_command_bad_out(self, capsys, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("i am a file")
        rc, _, err = run_cli(
            capsys,
            [
                "trace", "convergence", "--dim", "3", "--trials", "1",
                "--out", str(blocker / "sub"),
            ],
        )
        assert rc == 2
        assert "cannot write trace outputs" in err

    def test_faults_bad_trace_out(self, capsys, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("i am a file")
        rc, _, err = run_cli(
            capsys,
            [
                "faults", "--dim", "3", "--trials", "1", "--rate", "0.02",
                "--trace-out", str(blocker / "sub"),
            ],
        )
        assert rc == 2
        assert "cannot write trace outputs" in err


@pytest.mark.slow
class TestSanitizedIdentity:
    def test_rate_zero_identical_under_sanitizer(self):
        """The null-plan identity also holds with BLITZCOIN_SANITIZE=1
        (the sanitizer wraps every event either way)."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["BLITZCOIN_SANITIZE"] = "1"
        argv_faults = [
            sys.executable, "-m", "repro",
            "faults", "--dim", "3", "--trials", "1", "--rate", "0.0",
        ]
        argv_conv = [
            sys.executable, "-m", "repro",
            "convergence", "--dim", "3", "--trials", "1",
        ]
        out_f = subprocess.run(
            argv_faults, capture_output=True, text=True, env=env, check=True
        ).stdout
        out_c = subprocess.run(
            argv_conv, capture_output=True, text=True, env=env, check=True
        ).stdout
        assert out_f == out_c
