"""Tests for blitzlint: every rule, suppression, scoping, and output."""

import json
from pathlib import Path

import pytest

from repro.analysis.__main__ import main as lint_main
from repro.analysis.lint import (
    RULES,
    LintError,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)

FIXTURES = Path(__file__).parent / "fixtures" / "lint"


def codes(findings):
    return sorted({f.code for f in findings})


class TestRuleD1Determinism:
    def test_import_random_flagged(self):
        findings = lint_source("import random\n", module="repro.power.x")
        assert codes(findings) == ["D1"]

    def test_from_random_import_flagged(self):
        findings = lint_source(
            "from random import choice\n", module="repro.power.x"
        )
        assert codes(findings) == ["D1"]

    def test_wall_clock_flagged(self):
        src = "import time\n\ndef stamp():\n    return time.time()\n"
        findings = lint_source(src, module="repro.report.x")
        assert codes(findings) == ["D1"]
        assert "wall-clock" in findings[0].message

    def test_datetime_now_flagged(self):
        src = (
            "from datetime import datetime\n\n"
            "def stamp():\n    return datetime.now()\n"
        )
        findings = lint_source(src, module="repro.report.x")
        assert codes(findings) == ["D1"]

    def test_global_numpy_rng_flagged(self):
        src = "import numpy as np\nx = np.random.randint(0, 4)\n"
        findings = lint_source(src, module="repro.core.x")
        assert codes(findings) == ["D1"]

    def test_unseeded_default_rng_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        findings = lint_source(src, module="repro.core.x")
        assert codes(findings) == ["D1"]

    def test_seeded_default_rng_allowed(self):
        src = "import numpy as np\nrng = np.random.default_rng(42)\n"
        assert lint_source(src, module="repro.core.x") == []

    def test_seeded_generator_construction_allowed(self):
        src = (
            "import numpy as np\n"
            "g = np.random.Generator(np.random.PCG64(np.random.SeedSequence(1)))\n"
        )
        assert lint_source(src, module="repro.core.x") == []

    def test_rng_module_is_exempt(self):
        src = "import numpy as np\nx = np.random.default_rng()\n"
        assert lint_source(src, module="repro.sim.rng") == []

    def test_set_iteration_flagged_in_scheduling_code(self):
        src = "def fire(tiles):\n    for t in set(tiles):\n        t.go()\n"
        findings = lint_source(src, module="repro.core.engine2")
        assert codes(findings) == ["D1"]
        assert "hash order" in findings[0].message

    def test_keys_iteration_flagged_in_scheduling_code(self):
        src = "def fire(d):\n    return [k for k in d.keys()]\n"
        findings = lint_source(src, module="repro.noc.x")
        assert codes(findings) == ["D1"]

    def test_sorted_set_iteration_allowed(self):
        src = (
            "def fire(tiles):\n"
            "    for t in sorted(set(tiles)):\n        t.go()\n"
        )
        assert lint_source(src, module="repro.core.x") == []

    def test_set_iteration_not_flagged_outside_scheduling_packages(self):
        src = "def tally(xs):\n    return [x for x in set(xs)]\n"
        assert lint_source(src, module="repro.workloads.x") == []

    def test_set_iteration_flagged_in_report_scope(self):
        # repro.report produces byte-stable artifacts, so it lives in
        # the D1 ordered-iteration scope alongside the simulator core.
        src = "def tally(xs):\n    return [x for x in set(xs)]\n"
        assert [f.code for f in lint_source(src, module="repro.report.x")] == ["D1"]
        assert [f.code for f in lint_source(src, module="repro.obs.monitor")] == ["D1"]

    def test_set_membership_allowed(self):
        src = "def check(t, tiles):\n    return t in set(tiles)\n"
        assert lint_source(src, module="repro.core.x") == []


class TestRuleC1CoinIntegrality:
    def test_true_division_flagged(self):
        src = "def share(a, b):\n    return a / b\n"
        findings = lint_source(src, module="repro.core.coins")
        assert codes(findings) == ["C1"]

    def test_float_literal_flagged(self):
        src = "EPS = 1e-12\n"
        findings = lint_source(src, module="repro.core.coins")
        assert codes(findings) == ["C1"]

    def test_float_equality_flagged(self):
        src = "def f(x):\n    return x == 0.0\n"
        findings = lint_source(src, module="repro.core.coins")
        # the 0.0 literal and the comparison are both findings
        assert codes(findings) == ["C1"]
        assert len(findings) == 2

    def test_floor_division_allowed(self):
        src = "def share(a, b):\n    return (2 * a + b) // (2 * b)\n"
        assert lint_source(src, module="repro.core.coins") == []

    def test_engine_delta_helpers_in_scope(self):
        src = (
            "class E:\n"
            "    def _apply_delta(self, tid, delta):\n"
            "        self.err = delta / 2\n"
        )
        findings = lint_source(src, module="repro.core.engine")
        assert codes(findings) == ["C1"]

    def test_engine_non_delta_code_out_of_scope(self):
        src = (
            "class E:\n"
            "    def _finish_exchange(self, tid):\n"
            "        self.interval = int(self.interval * 2.0)\n"
        )
        assert lint_source(src, module="repro.core.engine") == []

    def test_other_modules_out_of_scope(self):
        src = "def mean(xs):\n    return sum(xs) / len(xs)\n"
        assert lint_source(src, module="repro.core.metrics") == []


class TestRuleS1StateDiscipline:
    def test_handler_writing_coin_register_flagged(self):
        src = (
            "class E:\n"
            "    def _on_status(self, pkt):\n"
            "        self.fsm.coins.has += pkt.delta\n"
        )
        findings = lint_source(src, module="repro.core.engine")
        assert codes(findings) == ["S1"]

    def test_apply_delta_is_blessed(self):
        src = (
            "class E:\n"
            "    def _apply_delta(self, tid, delta):\n"
            "        self.fsm.coins.has += delta\n"
        )
        assert lint_source(src, module="repro.core.engine") == []

    def test_set_max_is_blessed(self):
        src = (
            "class E:\n"
            "    def set_max(self, tid, new_max):\n"
            "        self.fsm.coins.max = new_max\n"
        )
        assert lint_source(src, module="repro.core.engine") == []

    def test_replacing_coins_object_flagged(self):
        src = (
            "class E:\n"
            "    def _on_update(self, pkt):\n"
            "        self.fsm.coins = pkt.payload\n"
        )
        findings = lint_source(src, module="repro.core.engine")
        assert codes(findings) == ["S1"]

    def test_out_of_scope_module_ignored(self):
        src = (
            "class V:\n"
            "    def poke(self):\n"
            "        self.tile.coins.has = 0\n"
        )
        assert lint_source(src, module="repro.soc.validate") == []


class TestRuleU1Units:
    def test_time_function_without_unit_flagged(self):
        src = "def latency(a, b):\n    \"\"\"Latency between tiles.\"\"\"\n    return 1\n"
        findings = lint_source(src, module="repro.noc.x")
        assert codes(findings) == ["U1"]

    def test_unit_in_docstring_allowed(self):
        src = (
            "def latency(a, b):\n"
            "    \"\"\"Latency between tiles, in NoC cycles.\"\"\"\n"
            "    return 1\n"
        )
        assert lint_source(src, module="repro.noc.x") == []

    def test_private_functions_exempt(self):
        src = "def _latency(a, b):\n    return 1\n"
        assert lint_source(src, module="repro.noc.x") == []

    def test_functions_not_about_time_exempt(self):
        src = "def hop_distance(a, b):\n    \"\"\"Manhattan hops.\"\"\"\n    return 1\n"
        assert lint_source(src, module="repro.noc.x") == []

    def test_out_of_scope_package_exempt(self):
        src = "def latency(a, b):\n    \"\"\"Latency.\"\"\"\n    return 1\n"
        assert lint_source(src, module="repro.workloads.x") == []


class TestSuppression:
    def test_same_line_pragma_suppresses(self):
        src = "EPS = 1e-12  # blitzlint: disable=C1\n"
        assert lint_source(src, module="repro.core.coins") == []

    def test_pragma_is_code_specific(self):
        src = "EPS = 1e-12  # blitzlint: disable=U1\n"
        findings = lint_source(src, module="repro.core.coins")
        assert codes(findings) == ["C1"]

    def test_disable_all(self):
        src = "import random  # blitzlint: disable=all\n"
        assert lint_source(src, module="repro.core.x") == []

    def test_multiple_codes(self):
        src = "EPS = 1e-12  # blitzlint: disable=C1,D1\n"
        assert lint_source(src, module="repro.core.coins") == []


class TestScoping:
    def test_scope_pragma_overrides_path(self):
        src = (
            "# blitzlint: scope=repro.core.coins\n"
            "x = 1 / 2\n"
        )
        findings = lint_source(src, path="/tmp/whatever.py")
        assert codes(findings) == ["C1"]

    def test_path_derived_module(self):
        findings = lint_source(
            "import random\n", path="src/repro/core/engine.py"
        )
        assert codes(findings) == ["D1"]


class TestFrontEnd:
    def test_syntax_error_raises(self):
        with pytest.raises(LintError, match="syntax error"):
            lint_source("def broken(:\n")

    def test_unknown_rule_raises(self):
        with pytest.raises(LintError, match="unknown rule"):
            lint_source("x = 1\n", rules=["Z9"])

    def test_missing_path_raises(self):
        with pytest.raises(LintError, match="no such path"):
            lint_paths(["/nonexistent/nowhere.py"])

    def test_rule_filter(self):
        src = "import random\nEPS = 1e-12\n"
        findings = lint_source(
            src, module="repro.core.coins", rules=["C1"]
        )
        assert codes(findings) == ["C1"]


class TestFixtureFiles:
    """The four acceptance fixtures each trip exactly their rule."""

    @pytest.mark.parametrize(
        "name,code",
        [
            ("bad_d1.py", "D1"),
            ("bad_d2.py", "D2"),
            ("bad_c1.py", "C1"),
            ("bad_c2.py", "C2"),
            ("bad_s1.py", "S1"),
            ("bad_u1.py", "U1"),
            ("bad_u2.py", "U2"),
            ("bad_p1.py", "P1"),
        ],
    )
    def test_fixture_trips_its_rule(self, name, code, capsys):
        rc = lint_main(["--format", "json", str(FIXTURES / name)])
        assert rc == 1
        report = json.loads(capsys.readouterr().out)
        assert report["count"] >= 1
        assert code in {f["code"] for f in report["findings"]}

    def test_clean_tree_exits_zero(self, capsys):
        repo_src = Path(__file__).parent.parent / "src" / "repro"
        rc = lint_main([str(repo_src)])
        assert rc == 0
        assert "clean" in capsys.readouterr().out


class TestOutput:
    def test_json_schema(self):
        findings = lint_source("import random\n", module="repro.core.x")
        report = json.loads(render_json(findings))
        assert report["version"] == 1
        assert report["tool"] == "blitzlint"
        assert report["count"] == len(findings) == 1
        entry = report["findings"][0]
        assert set(entry) == {
            "path", "line", "col", "code", "rule", "message"
        }
        assert entry["code"] == "D1"
        assert entry["rule"] == RULES["D1"]
        assert entry["line"] == 1

    def test_text_output(self):
        findings = lint_source("import random\n", module="repro.core.x")
        text = render_text(findings)
        assert "D1" in text
        assert "1 finding(s)" in text
        assert render_text([]) == "blitzlint: clean"

    def test_cli_error_exit_code(self, capsys):
        rc = lint_main(["/nonexistent/nowhere.py"])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestCliIntegration:
    def test_repro_cli_lint_subcommand(self, capsys):
        from repro.cli import main

        repo_src = Path(__file__).parent.parent / "src" / "repro"
        rc = main(["lint", str(repo_src), "--format", "json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["count"] == 0
