"""Regression diffing: threshold policy, classification, rendering.

The property that protects CI is ``diff(A, A)`` being empty for *any*
report — if self-diff ever regressed, every green build would be one
flaky float away from red.  That property is checked both on real
reports and with hypothesis over synthetic summaries.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.report.diff import (
    DEFAULT_THRESHOLDS,
    DiffError,
    ThresholdRule,
    Thresholds,
    diff_reports,
    flat_metrics,
    format_diff_table,
    load_thresholds,
)
from repro.report.run_report import RunReport


def _report(summary, *, kind="convergence", alert_counts=None, label="r"):
    return RunReport(
        kind=kind,
        label=label,
        config={"d": 3},
        summary=summary,
        alert_counts=alert_counts or {},
    )


BASE = _report(
    {
        "trials": 4,
        "converged": 4,
        "convergence_rate": 1.0,
        "cycles": {"mean": 200.0, "p99": 400.0},
        "packets": {"mean": 300.0},
    },
    alert_counts={"starvation": 0, "convergence_stall": 1},
)


class TestThresholdRule:
    def test_increase_direction(self):
        rule = ThresholdRule(rel=0.05)
        assert rule.judge(100.0, 104.0) == "ok"
        assert rule.judge(100.0, 106.0) == "regressed"
        assert rule.judge(100.0, 94.0) == "improved"

    def test_decrease_direction(self):
        rule = ThresholdRule(rel=0.05, direction="decrease")
        assert rule.judge(1.0, 0.9) == "regressed"
        assert rule.judge(0.9, 1.0) == "improved"

    def test_abs_floor_swallows_noise(self):
        rule = ThresholdRule(rel=0.0, abs=0.5)
        assert rule.judge(0.0, 0.4) == "ok"
        assert rule.judge(0.0, 0.6) == "regressed"

    def test_zero_tolerance(self):
        rule = ThresholdRule(rel=0.0, abs=0.0)
        assert rule.judge(0.0, 1.0) == "regressed"
        assert rule.judge(1.0, 1.0) == "ok"

    def test_validation(self):
        with pytest.raises(DiffError, match="direction"):
            ThresholdRule(direction="sideways")
        with pytest.raises(DiffError, match=">= 0"):
            ThresholdRule(rel=-0.1)


class TestDefaultPolicy:
    def test_zero_tolerance_on_alerts(self):
        rule = DEFAULT_THRESHOLDS.rule_for("alerts.starvation")
        assert rule.rel == 0.0 and rule.abs == 0.0

    def test_rate_metrics_regress_downward(self):
        for metric in ("convergence_rate", "budget_utilization"):
            assert DEFAULT_THRESHOLDS.rule_for(metric).direction == "decrease"
        assert DEFAULT_THRESHOLDS.rule_for("cycles.mean").direction == "increase"


class TestThresholds:
    def test_exact_beats_glob_beats_default(self):
        policy = Thresholds(
            default=ThresholdRule(rel=0.05),
            metrics={
                "cycles.*": ThresholdRule(rel=0.10),
                "cycles.p99": ThresholdRule(rel=0.20),
            },
        )
        assert policy.rule_for("cycles.p99").rel == 0.20
        assert policy.rule_for("cycles.mean").rel == 0.10
        assert policy.rule_for("packets.mean").rel == 0.05

    def test_longest_glob_wins(self):
        policy = Thresholds(
            metrics={
                "a.*": ThresholdRule(rel=0.1),
                "a.b.*": ThresholdRule(rel=0.2),
            }
        )
        assert policy.rule_for("a.b.c").rel == 0.2
        assert policy.rule_for("a.z").rel == 0.1


class TestLoadThresholds:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(
            json.dumps(
                {
                    "default": {"rel": 0.1},
                    "metrics": {
                        "alerts.*": {"rel": 0.0, "abs": 0.0},
                        "convergence_rate": {"direction": "decrease"},
                    },
                }
            )
        )
        policy = load_thresholds(path)
        assert policy.default.rel == 0.1
        assert policy.rule_for("alerts.starvation").abs == 0.0
        # metric rules inherit unset fields from the file's default
        assert policy.rule_for("convergence_rate").rel == 0.1

    def test_missing_file(self, tmp_path):
        with pytest.raises(DiffError, match="not found"):
            load_thresholds(tmp_path / "absent.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text("{nope")
        with pytest.raises(DiffError, match="invalid thresholds JSON"):
            load_thresholds(path)

    def test_unknown_keys_rejected(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"defualt": {}}))
        with pytest.raises(DiffError, match="unknown top-level keys"):
            load_thresholds(path)
        path.write_text(
            json.dumps({"metrics": {"x": {"relative": 0.1}}})
        )
        with pytest.raises(DiffError, match="unknown threshold keys"):
            load_thresholds(path)


class TestDiffReports:
    def test_self_diff_is_clean(self):
        diff = diff_reports(BASE, BASE)
        assert not diff.regressed
        assert all(r.status == "ok" for r in diff.rows)

    def test_seeded_regression_detected(self):
        worse = _report(
            {
                "trials": 4,
                "converged": 3,
                "convergence_rate": 0.75,
                "cycles": {"mean": 240.0, "p99": 400.0},
                "packets": {"mean": 300.0},
            },
            alert_counts={"starvation": 2, "convergence_stall": 1},
        )
        diff = diff_reports(BASE, worse)
        regressed = {r.metric for r in diff.regressions}
        assert regressed == {
            "converged",
            "convergence_rate",
            "cycles.mean",
            "alerts.starvation",
            "alerts.total",
        }

    def test_improvement_is_not_a_regression(self):
        better = _report(
            {
                "trials": 4,
                "converged": 4,
                "convergence_rate": 1.0,
                "cycles": {"mean": 150.0, "p99": 400.0},
                "packets": {"mean": 300.0},
            },
            alert_counts={"starvation": 0, "convergence_stall": 1},
        )
        diff = diff_reports(BASE, better)
        assert not diff.regressed
        assert [r.metric for r in diff.improvements] == ["cycles.mean"]

    def test_missing_alert_monitor_counts_as_zero(self):
        stripped = _report(dict(BASE.summary), alert_counts={})
        diff = diff_reports(BASE, stripped)
        rows = {r.metric: r for r in diff.rows}
        assert rows["alerts.starvation"].status == "ok"
        # the stall alert disappeared: an improvement, not "removed"
        assert rows["alerts.convergence_stall"].status == "improved"

    def test_added_and_removed_summary_metrics(self):
        other = _report({**BASE.summary, "energy_mj": 1.0})
        del other.summary["trials"]
        rows = {r.metric: r for r in diff_reports(BASE, other).rows}
        assert rows["energy_mj"].status == "added"
        assert rows["trials"].status == "removed"

    def test_kind_mismatch_rejected(self):
        soc = _report({"makespan_us": 1.0}, kind="soc")
        with pytest.raises(DiffError, match="cannot diff"):
            diff_reports(BASE, soc)

    def test_custom_thresholds_override_default(self):
        worse = _report({**BASE.summary, "cycles": {"mean": 240.0, "p99": 400.0}})
        lax = Thresholds(default=ThresholdRule(rel=0.5))
        assert diff_reports(BASE, worse, lax).regressed is False
        assert diff_reports(BASE, worse).regressed is True


class TestFlatMetrics:
    def test_alert_totals_and_nesting(self):
        flat = flat_metrics(BASE)
        assert flat["cycles.p99"] == 400.0
        assert flat["alerts.starvation"] == 0.0
        assert flat["alerts.total"] == 1.0

    def test_non_numeric_leaves_skipped(self):
        report = _report({"trials": 2, "note": "hi", "tags": [1, 2]})
        flat = flat_metrics(report)
        assert "note" not in flat and "tags" not in flat


class TestFormatDiffTable:
    def test_marks_and_footer(self):
        worse = _report(
            {**BASE.summary, "cycles": {"mean": 240.0, "p99": 400.0}}
        )
        lines = format_diff_table(diff_reports(BASE, worse))
        assert any(l.startswith("! cycles.mean") for l in lines)
        assert lines[-1].startswith("REGRESSED: ")
        clean = format_diff_table(diff_reports(BASE, BASE))
        assert clean[-1] == "no regressions"

    def test_only_changed_filters_ok_rows(self):
        lines = format_diff_table(
            diff_reports(BASE, BASE), only_changed=True
        )
        # header + footer only: every row is "ok"
        assert len(lines) == 3


_SUMMARIES = st.dictionaries(
    st.sampled_from(["a", "b", "c", "rate", "cycles"]),
    st.one_of(
        st.integers(min_value=-10_000, max_value=10_000),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.dictionaries(
            st.sampled_from(["mean", "p99"]),
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
            max_size=2,
        ),
    ),
    max_size=5,
)


class TestSelfDiffProperty:
    @given(summary=_SUMMARIES, stalls=st.integers(min_value=0, max_value=9))
    @settings(max_examples=60, deadline=None)
    def test_any_report_self_diffs_clean(self, summary, stalls):
        report = _report(
            summary, alert_counts={"convergence_stall": stalls}
        )
        diff = diff_reports(report, report)
        assert not diff.regressed
        assert all(r.status == "ok" for r in diff.rows)
        assert format_diff_table(diff)[-1] == "no regressions"
