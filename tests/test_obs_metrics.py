"""Tests for the repro.obs metrics registry."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    label_key,
)


class TestLabelKey:
    def test_sorted_and_stringified(self):
        assert label_key({"b": 2, "a": "x"}) == (("a", "x"), ("b", "2"))

    def test_empty(self):
        assert label_key({}) == ()


class TestCounter:
    def test_inc_accumulates_and_tracks_times(self):
        c = Counter("n")
        c.inc(10)
        c.inc(20, 5)
        assert c.total == 6
        assert c.first_time == 10
        assert c.last_time == 20

    def test_negative_increment_rejected(self):
        with pytest.raises(MetricsError):
            Counter("n").inc(0, -1)

    def test_qualified_name_renders_labels(self):
        c = Counter("noc.packets", label_key({"kind": "coin_status"}))
        assert c.qualified_name == "noc.packets{kind=coin_status}"


class TestGauge:
    def test_last_value_wins_with_min_max(self):
        g = Gauge("p")
        g.set(1, 5.0)
        g.set(2, 3.0)
        g.set(3, 9.0)
        assert g.value == 9.0
        assert g.min_value == 3.0
        assert g.max_value == 9.0
        assert g.samples == 3
        assert g.last_time == 3


class TestHistogram:
    def test_value_buckets_inclusive_upper_edges(self):
        h = Histogram("lat", bounds=(1, 2, 4))
        for v in (1, 1, 2, 3, 4, 100):
            h.observe(0, v)
        # counts: <=1: 2, <=2: 1, <=4: 2, overflow: 1
        assert h.counts == [2, 1, 2, 1]
        assert h.count == 6
        assert h.max_value == 100

    def test_bucket_rows_include_overflow(self):
        h = Histogram("lat", bounds=(1, 2))
        h.observe(0, 7)
        assert h.bucket_rows() == [("<= 1", 0), ("<= 2", 0), ("> 2", 1)]

    def test_mean(self):
        h = Histogram("lat")
        h.observe(0, 2)
        h.observe(0, 4)
        assert h.mean == 3.0
        assert Histogram("empty").mean == 0.0

    def test_sim_time_windows(self):
        h = Histogram("lat", time_bucket_cycles=100)
        h.observe(10, 1)
        h.observe(99, 1)
        h.observe(100, 1)
        h.observe(250, 1)
        assert h.by_window == {0: 2, 1: 1, 2: 1}
        assert h.window_rows() == [(0, 2), (100, 1), (200, 1)]

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(MetricsError):
            Histogram("bad", bounds=(4, 2))


class TestHistogramPercentile:
    def test_empty_returns_none(self):
        h = Histogram("lat", bounds=(1, 2, 4))
        assert h.percentile(0.5) is None
        assert h.quantile_summary()["p99"] is None

    def test_single_observation_all_quantiles_collapse(self):
        h = Histogram("lat", bounds=(1, 10, 100))
        h.observe(0, 7)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert h.percentile(q) == 7.0

    def test_q0_is_min_and_q1_is_max(self):
        h = Histogram("lat", bounds=(1, 10, 100))
        for v in (3, 42, 80):
            h.observe(0, v)
        assert h.percentile(0.0) == 3.0
        assert h.percentile(1.0) == 80.0

    def test_bucket_resolution_median(self):
        h = Histogram("lat", bounds=(10, 20, 40))
        for v in (1, 2, 15, 16, 17, 35):
            h.observe(0, v)
        # rank 3 lands in the <=20 bucket.
        assert h.percentile(0.5) == 20.0

    def test_single_bucket_everything_clamps_to_observed_range(self):
        h = Histogram("lat", bounds=(1000,))
        for v in (5, 9):
            h.observe(0, v)
        # The bucket bound (1000) exceeds anything seen; clamp to max.
        assert h.percentile(0.5) == 9.0
        assert h.percentile(0.9) == 9.0

    def test_overflow_bucket_reports_max(self):
        h = Histogram("lat", bounds=(10,))
        for v in (5, 500, 900):
            h.observe(0, v)
        assert h.percentile(0.99) == 900.0

    def test_out_of_range_q_rejected(self):
        h = Histogram("lat")
        for bad in (-0.1, 1.1):
            with pytest.raises(MetricsError):
                h.percentile(bad)

    def test_empty_quantile_summary_is_all_none_except_count(self):
        # The edge contract the bench harness relies on: an empty
        # series is absence (None), never a fabricated zero.
        summary = Histogram("lat", bounds=(1, 2)).quantile_summary()
        assert summary["count"] == 0.0
        for stat in ("mean", "min", "p50", "p90", "p99", "max"):
            assert summary[stat] is None, stat

    def test_single_sample_quantile_summary_is_exact(self):
        h = Histogram("lat", bounds=(1, 10, 100))
        h.observe(0, 7)
        summary = h.quantile_summary()
        assert summary["count"] == 1.0
        for stat in ("mean", "min", "p50", "p90", "p99", "max"):
            assert summary[stat] == 7.0, stat

    def test_non_finite_observations_rejected(self):
        h = Histogram("lat", bounds=(1, 2))
        h.observe(0, 1.5)
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(MetricsError):
                h.observe(0, bad)
        # The rejected values must not have touched any state.
        assert h.count == 1
        assert h.total == 1.5
        assert h.quantile_summary()["max"] == 1.5

    def test_quantile_summary_keys(self):
        h = Histogram("lat", bounds=(10, 100))
        for v in (1, 2, 3, 50):
            h.observe(0, v)
        summary = h.quantile_summary()
        assert sorted(summary) == [
            "count", "max", "mean", "min", "p50", "p90", "p99",
        ]
        assert summary["count"] == 4.0
        assert summary["min"] == 1.0
        assert summary["max"] == 50.0
        assert summary["p50"] == 10.0


class TestMetricsRegistry:
    def test_get_or_create_is_stable(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.counter("a", k="1") is not r.counter("a", k="2")

    def test_type_clash_raises(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(MetricsError):
            r.gauge("x")
        with pytest.raises(MetricsError):
            r.histogram("x")

    def test_shortcuts(self):
        r = MetricsRegistry()
        r.inc("c", 5, 2)
        r.set_gauge("g", 5, 1.5)
        r.observe("h", 5, 10)
        assert r.value("c") == 2
        assert r.value("g") == 1.5
        assert r.value("h") == 1  # histogram reports its count
        assert r.value("absent") == 0

    def test_custom_histogram_bounds(self):
        r = MetricsRegistry()
        h = r.histogram("h", bounds=[10, 20])
        assert h.bounds == (10, 20)
        assert r.histogram("h") is h

    def test_instruments_sorted(self):
        r = MetricsRegistry()
        r.inc("b", 0)
        r.inc("a", 0)
        r.inc("a", 0, kind="z")
        names = [i.qualified_name for i in r.instruments()]
        assert names == ["a", "a{kind=z}", "b"]

    def test_as_rows_covers_all_kinds(self):
        r = MetricsRegistry()
        r.inc("c", 0)
        r.set_gauge("g", 0, 2.0)
        r.observe("h", 0, 3)
        kinds = {row["kind"] for row in r.as_rows()}
        assert kinds == {"counter", "gauge", "histogram"}

    def test_registry_time_bucket_propagates(self):
        r = MetricsRegistry(time_bucket_cycles=50)
        r.observe("h", 120, 1)
        h = r.get("h")
        assert h.by_window == {2: 1}

    def test_len(self):
        r = MetricsRegistry()
        assert len(r) == 0
        r.inc("a", 0)
        assert len(r) == 1
