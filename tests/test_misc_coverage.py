"""Cross-cutting smaller behaviours not covered elsewhere."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.behavioral import BehavioralNoc
from repro.noc.packet import MessageType, Packet
from repro.noc.router import CycleNoc
from repro.noc.topology import MeshTopology
from repro.report.csv_export import fig04_series
from repro.sim import (
    CYCLE_TIME_S,
    NOC_FREQUENCY_HZ,
    cycles_to_us,
    us_to_cycles,
)
from repro.sim.kernel import Simulator


class TestTimeConversions:
    def test_cycle_time_matches_800mhz(self):
        assert NOC_FREQUENCY_HZ == 800e6
        assert CYCLE_TIME_S == pytest.approx(1.25e-9)

    def test_roundtrip(self):
        assert cycles_to_us(800) == pytest.approx(1.0)
        assert us_to_cycles(1.0) == 800

    @given(st.integers(0, 10**9))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, cycles):
        assert us_to_cycles(cycles_to_us(cycles)) == cycles


class TestCycleNocProperties:
    @given(
        st.integers(2, 5),
        st.lists(
            st.tuples(st.integers(0, 24), st.integers(0, 24)),
            min_size=1,
            max_size=30,
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_every_packet_delivered_exactly_once(self, d, pairs):
        sim = Simulator()
        topo = MeshTopology(d, d)
        noc = CycleNoc(sim, topo)
        delivered = []
        for t in topo.all_tiles():
            noc.attach(t, lambda p: delivered.append(p.uid))
        n = topo.n_tiles
        sent = []
        for src, dst in pairs:
            pkt = Packet(
                src=src % n, dst=dst % n, msg_type=MessageType.DMA
            )
            sent.append(pkt.uid)
            noc.send(pkt)
        sim.run()
        assert sorted(delivered) == sorted(sent)

    @given(st.integers(2, 5), st.integers(0, 24), st.integers(0, 24))
    @settings(max_examples=40, deadline=None)
    def test_latency_at_least_hop_count(self, d, a, b):
        sim = Simulator()
        topo = MeshTopology(d, d)
        noc = CycleNoc(sim, topo)
        n = topo.n_tiles
        src, dst = a % n, b % n
        times = []
        noc.attach(dst, lambda p: times.append(sim.now))
        noc.send(Packet(src=src, dst=dst, msg_type=MessageType.DMA))
        sim.run()
        assert times[0] >= topo.hop_distance(src, dst)


class TestFabricDetach:
    def test_detached_tile_drops_packets(self):
        sim = Simulator()
        noc = BehavioralNoc(sim, MeshTopology(2, 2))
        got = []
        noc.attach(3, got.append)
        noc.detach(3)
        noc.send(Packet(src=0, dst=3, msg_type=MessageType.DMA))
        sim.run()
        assert got == []


class TestExportSeriesHelpers:
    def test_fig04_series_flattening(self):
        import repro.experiments.fig04_tokensmart as f4

        r = f4.run(dims=(3,), trials=1)
        series = fig04_series(r)
        assert set(series) == {"BC", "TS"}
        row = series["BC"][0]
        assert row["d"] == 3
        assert row["converged_fraction"] == 1.0


class TestPackageSurface:
    def test_top_level_exports(self):
        import repro

        assert repro.__version__ == "1.0.0"
        assert hasattr(repro, "Soc")
        assert hasattr(repro, "build_pm")

    def test_all_experiment_modules_have_run_and_format(self):
        import repro.experiments as experiments

        for name in experiments.__all__:
            mod = getattr(experiments, name)
            assert hasattr(mod, "run") or hasattr(mod, "run_sustained"), name

    def test_main_module_importable(self):
        import repro.__main__  # noqa: F401
