"""Tests for the artifact-style results-export script."""

import json
import runpy
import sys
from pathlib import Path

SCRIPT = Path("scripts/export_results.py")


def run_script(args):
    old = sys.argv
    sys.argv = [str(SCRIPT), *args]
    try:
        runpy.run_path(str(SCRIPT), run_name="__main__")
    except SystemExit as exc:
        return exc.code
    finally:
        sys.argv = old
    return 0


class TestExportScript:
    def test_exports_cheap_figures(self, tmp_path):
        rc = run_script(
            ["--quick", "--out", str(tmp_path), "--only", "fig01", "fig13"]
        )
        assert rc == 0
        manifest = json.loads(
            (tmp_path / "fig01_manifest.json").read_text()
        )
        assert manifest["figure"] == "fig01"
        csvs = list(tmp_path.glob("fig13_*.csv"))
        assert len(csvs) == 6  # one per accelerator class

    def test_csv_contents_parse(self, tmp_path):
        run_script(
            ["--quick", "--out", str(tmp_path), "--only", "fig13"]
        )
        from repro.report.csv_export import read_csv

        rows = read_csv(tmp_path / "fig13_FFT.csv")
        assert float(rows[0]["v"]) == 0.5
        assert float(rows[-1]["v"]) == 1.0

    def test_unknown_figure_rejected(self, tmp_path):
        rc = run_script(["--out", str(tmp_path), "--only", "fig99"])
        assert rc != 0
