"""Tests for the AP/RP allocation strategies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power.allocation import (
    AllocationError,
    AllocationStrategy,
    absolute_proportional,
    allocate,
    relative_proportional,
)

tile_powers = st.dictionaries(
    st.integers(0, 20),
    st.floats(1.0, 500.0),
    min_size=1,
    max_size=10,
)


class TestAbsoluteProportional:
    def test_equal_shares_when_uncapped(self):
        targets = absolute_proportional({1: 100.0, 2: 100.0}, 60.0)
        assert targets[1] == pytest.approx(30.0)
        assert targets[2] == pytest.approx(30.0)

    def test_capped_tile_frees_power_for_others(self):
        targets = absolute_proportional({1: 10.0, 2: 100.0}, 60.0)
        assert targets[1] == pytest.approx(10.0)
        assert targets[2] == pytest.approx(50.0)

    def test_budget_above_combined_max_caps_everyone(self):
        targets = absolute_proportional({1: 10.0, 2: 20.0}, 100.0)
        assert targets == {1: pytest.approx(10.0), 2: pytest.approx(20.0)}

    @given(tile_powers, st.floats(1.0, 2000.0))
    @settings(max_examples=200, deadline=None)
    def test_budget_and_caps_respected_property(self, p_max, budget):
        targets = absolute_proportional(p_max, budget)
        assert sum(targets.values()) <= min(budget, sum(p_max.values())) * (
            1 + 1e-9
        )
        for t, p in targets.items():
            assert p <= p_max[t] * (1 + 1e-9)

    @given(tile_powers, st.floats(1.0, 2000.0))
    @settings(max_examples=200, deadline=None)
    def test_budget_fully_used_when_feasible_property(self, p_max, budget):
        targets = absolute_proportional(p_max, budget)
        expected = min(budget, sum(p_max.values()))
        assert sum(targets.values()) == pytest.approx(expected, rel=1e-9)


class TestRelativeProportional:
    def test_same_fraction_for_everyone(self):
        targets = relative_proportional({1: 100.0, 2: 50.0}, 75.0)
        assert targets[1] / 100.0 == pytest.approx(targets[2] / 50.0)
        assert sum(targets.values()) == pytest.approx(75.0)

    def test_fraction_clamped_at_one(self):
        targets = relative_proportional({1: 10.0, 2: 10.0}, 100.0)
        assert targets == {1: pytest.approx(10.0), 2: pytest.approx(10.0)}

    @given(tile_powers, st.floats(1.0, 2000.0))
    @settings(max_examples=200, deadline=None)
    def test_rp_invariants_property(self, p_max, budget):
        targets = relative_proportional(p_max, budget)
        total_max = sum(p_max.values())
        fraction = min(1.0, budget / total_max)
        for t, p in targets.items():
            assert p == pytest.approx(p_max[t] * fraction)


class TestDispatch:
    def test_dispatch_by_enum(self):
        p_max = {1: 100.0, 2: 50.0}
        assert allocate(
            AllocationStrategy.ABSOLUTE_PROPORTIONAL, p_max, 60.0
        ) == absolute_proportional(p_max, 60.0)
        assert allocate(
            AllocationStrategy.RELATIVE_PROPORTIONAL, p_max, 60.0
        ) == relative_proportional(p_max, 60.0)

    def test_empty_tiles_rejected(self):
        with pytest.raises(AllocationError):
            relative_proportional({}, 60.0)

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(AllocationError):
            absolute_proportional({1: 10.0}, 0.0)

    def test_nonpositive_pmax_rejected(self):
        with pytest.raises(AllocationError):
            relative_proportional({1: 0.0}, 60.0)
