"""Tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import (
    PeriodicProcess,
    SimulationError,
    Simulator,
    run_to_quiescence,
)


class TestScheduling:
    def test_single_event_fires_at_scheduled_time(self, sim):
        fired = []
        sim.schedule(10, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [10]

    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(30, lambda: order.append("c"))
        sim.schedule(10, lambda: order.append("a"))
        sim.schedule(20, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_in_schedule_order(self, sim):
        order = []
        for tag in "abc":
            sim.schedule(5, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_priority_breaks_same_time_ties(self, sim):
        order = []
        sim.schedule(5, lambda: order.append("low"), priority=1)
        sim.schedule(5, lambda: order.append("high"), priority=0)
        sim.run()
        assert order == ["high", "low"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_absolute_time(self, sim):
        fired = []
        sim.schedule_at(42, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [42]

    def test_zero_delay_fires_at_current_time(self, sim):
        fired = []
        sim.schedule(0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [0]

    def test_events_scheduled_from_callbacks_run(self, sim):
        fired = []

        def first():
            sim.schedule(5, lambda: fired.append(sim.now))

        sim.schedule(10, first)
        sim.run()
        assert fired == [15]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(10, lambda: fired.append(1))
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_one_of_many(self, sim):
        fired = []
        sim.schedule(10, lambda: fired.append("keep"))
        event = sim.schedule(10, lambda: fired.append("drop"))
        event.cancel()
        sim.run()
        assert fired == ["keep"]


class TestBoundedRun:
    def test_run_until_stops_before_late_events(self, sim):
        fired = []
        sim.schedule(10, lambda: fired.append("early"))
        sim.schedule(100, lambda: fired.append("late"))
        sim.run(until=50)
        assert fired == ["early"]
        assert sim.now == 50

    def test_run_until_advances_clock_when_queue_drains(self, sim):
        sim.run(until=500)
        assert sim.now == 500

    def test_late_events_fire_on_subsequent_run(self, sim):
        fired = []
        sim.schedule(100, lambda: fired.append(sim.now))
        sim.run(until=50)
        sim.run()
        assert fired == [100]

    def test_run_for_relative_horizon(self, sim):
        sim.run_for(25)
        sim.run_for(25)
        assert sim.now == 50

    def test_stop_halts_immediately(self, sim):
        fired = []

        def stopper():
            fired.append("first")
            sim.stop()

        sim.schedule(5, stopper)
        sim.schedule(10, lambda: fired.append("second"))
        sim.run()
        assert fired == ["first"]

    def test_reentrant_run_rejected(self, sim):
        def nested():
            sim.run()

        sim.schedule(1, nested)
        with pytest.raises(SimulationError):
            sim.run()

    def test_event_budget_guard(self):
        sim = Simulator(max_events=10)

        def loop():
            sim.schedule(1, loop)

        sim.schedule(1, loop)
        with pytest.raises(SimulationError):
            sim.run()


class TestPeriodicProcess:
    def test_fires_at_period(self, sim):
        fired = []
        proc = PeriodicProcess(sim, 10, lambda: fired.append(sim.now))
        sim.run(until=35)
        proc.stop()
        assert fired == [10, 20, 30]

    def test_phase_offsets_first_firing(self, sim):
        fired = []
        proc = PeriodicProcess(sim, 10, lambda: fired.append(sim.now), phase=5)
        sim.run(until=26)
        proc.stop()
        assert fired == [15, 25]

    def test_set_period_changes_future_firings(self, sim):
        fired = []
        proc = PeriodicProcess(sim, 10, lambda: fired.append(sim.now))

        def widen():
            proc.set_period(20)

        sim.schedule(11, widen)
        sim.run(until=55)
        proc.stop()
        assert fired == [10, 20, 40]

    def test_stop_prevents_future_firings(self, sim):
        fired = []
        proc = PeriodicProcess(sim, 10, lambda: fired.append(sim.now))
        sim.schedule(15, proc.stop)
        sim.run(until=100)
        assert fired == [10]

    def test_kick_forces_early_firing(self, sim):
        fired = []
        proc = PeriodicProcess(sim, 100, lambda: fired.append(sim.now))
        sim.schedule(10, lambda: proc.kick(5))
        sim.run(until=50)
        proc.stop()
        assert fired == [15]

    def test_invalid_period_rejected(self, sim):
        with pytest.raises(SimulationError):
            PeriodicProcess(sim, 0, lambda: None)


class TestQuiescence:
    def test_quiesces_when_queue_drains(self, sim):
        sim.schedule(10, lambda: None)
        end = run_to_quiescence(sim)
        assert end >= 10

    def test_raises_on_runaway_process(self, sim):
        def loop():
            sim.schedule(10, loop)

        sim.schedule(1, loop)
        with pytest.raises(SimulationError):
            run_to_quiescence(sim, guard_cycles=1000)
