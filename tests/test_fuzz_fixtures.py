"""The committed regression corpus and known-bad bundle stay honest.

``tests/fixtures/fuzz/`` holds a small frozen corpus (campaign seed 11,
budget 6) plus one shrunk repro bundle.  CI replays the corpus through
``blitzcoin-repro fuzz replay --corpus`` — these tests are the
same check in-process, plus structural guarantees on the fixtures
themselves so a regenerated fixture can't silently lose its point.
"""

import json
from pathlib import Path

from repro.fuzz.campaign import replay_corpus
from repro.fuzz.corpus import MANIFEST_SCHEMA, Corpus, load_bundle
from repro.fuzz.oracles import run_oracles

FIXTURES = Path(__file__).parent / "fixtures" / "fuzz"


class TestCommittedCorpus:
    def test_replays_green(self):
        count, broken = replay_corpus(FIXTURES / "corpus")
        assert broken == []
        assert count == 5

    def test_manifest_shape(self):
        doc = json.loads((FIXTURES / "corpus" / "manifest.json").read_text())
        assert doc["schema"] == MANIFEST_SCHEMA
        assert len(doc["entries"]) == 5
        assert doc["failures"] == {}
        for digest, record in doc["entries"].items():
            assert len(digest) == 64
            assert record["fingerprint"]

    def test_covers_both_scenario_kinds(self):
        corpus = Corpus(FIXTURES / "corpus")
        kinds = {
            corpus.load_scenario(d).kind for d in corpus.entries
        }
        assert kinds == {"engine", "soc"}


class TestKnownBadBundle:
    def test_reproduces_the_recorded_failure(self):
        bundle = load_bundle(FIXTURES / "known_bad_hang.json")
        outcome = run_oracles(bundle.scenario)
        assert bundle.failure.key in outcome.failure_keys
        assert outcome.fingerprint == bundle.fingerprint

    def test_bundle_is_minimal(self):
        """The committed bundle is a *shrunk* artifact: no decorative
        events, a null fault plan, and a single stuck task."""
        bundle = load_bundle(FIXTURES / "known_bad_hang.json")
        scenario = bundle.scenario
        assert scenario.events == ()
        assert scenario.fault_plan.is_null
        assert scenario.soc is not None
        assert len(scenario.soc.tasks) == 1
