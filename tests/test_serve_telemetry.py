"""Service-level telemetry: /metrics, tracing, lanes, fleet dashboard.

Everything the serve layer reports *about itself* — as opposed to the
per-run observability the job stream carries.  The HTTP tests follow
``test_serve.py``'s pattern: a real server on an ephemeral port driven
by the real :class:`ServeClient` inside ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import json
import re
import time
from pathlib import Path

import pytest

from repro.campaign.store import CampaignStore
from repro.obs.metrics import MetricsRegistry
from repro.report.run_report import load_run_report
from repro.serve.client import ServeClient
from repro.serve.server import ServeServer
from repro.serve.telemetry import (
    SERIES_BINS,
    AccessLog,
    PrometheusParseError,
    ServiceTelemetry,
    endpoint_of,
    parse_prometheus_text,
    render_fleet_dashboard,
    render_prometheus,
)
from tests.test_serve import alerting_scenario, smoke_doc

#: Substrings that would mean the dashboard fetches something external
#: (same discipline as the per-run dashboard in repro.report).
BANNED_DASHBOARD_SUBSTRINGS = (
    "http://", "https://", "<script", "<link", "src=", "@import",
)

REQUEST_ID_RE = re.compile(r"^req-\d{6}$")


async def _with_server(store_root: Path, body, **server_kwargs):
    server = ServeServer(CampaignStore(store_root), **server_kwargs)
    host, port = await server.start("127.0.0.1", 0)
    try:
        return await body(server, host, port)
    finally:
        await server.close()


def run_with_server(store_root: Path, body, **server_kwargs):
    return asyncio.run(_with_server(store_root, body, **server_kwargs))


def scenario_doc(seed: int) -> dict:
    return {"kind": "scenario", "scenario": alerting_scenario(seed).to_dict()}


# ------------------------------------------------------------------ endpoints
class TestEndpointOf:
    @pytest.mark.parametrize(
        "path,endpoint",
        [
            ("/", "/"),
            ("/healthz", "/healthz"),
            ("/submit", "/submit"),
            ("/queue", "/queue"),
            ("/metrics", "/metrics"),
            ("/dashboard", "/dashboard"),
            ("/jobs", "/jobs"),
            ("/jobs/campaign-feedfeed", "/jobs/<id>"),
            ("/jobs/campaign-feedfeed/stream", "/jobs/<id>/stream"),
            ("/jobs/campaign-feedfeed/cancel", "/jobs/<id>/cancel"),
            ("/runs/0123456789abcdef/report", "/runs/<hash>/report"),
            ("/runs/0123456789abcdef/dashboard", "/runs/<hash>/dashboard"),
            ("/runs/0123456789abcdef", "/runs/<hash>"),
            ("/nope", "<other>"),
            ("/jobs/x/y/z", "/jobs/<id>"),
        ],
    )
    def test_collapses_to_route_template(self, path, endpoint):
        assert endpoint_of(path) == endpoint

    def test_bounded_label_cardinality(self):
        """A flood of distinct job ids maps to one endpoint label."""
        assert len({endpoint_of(f"/jobs/job-{i}") for i in range(100)}) == 1


# ------------------------------------------------------------ telemetry core
class TestServiceTelemetry:
    def test_request_ids_are_deterministic_and_unique(self):
        telemetry = ServiceTelemetry()
        ids = [telemetry.next_request_id() for _ in range(3)]
        assert ids == ["req-000001", "req-000002", "req-000003"]
        assert all(REQUEST_ID_RE.match(i) for i in ids)

    def test_record_request_feeds_counter_and_histogram(self):
        telemetry = ServiceTelemetry()
        telemetry.record_request("/submit", "POST", 200, 12.5, 3.0)
        telemetry.record_request("/submit", "POST", 200, 40.0, 4.0)
        telemetry.record_request("/queue", "GET", 200, 1.0, 4.0)
        assert telemetry.request_total() == 3
        families = parse_prometheus_text(telemetry.render_metrics())
        counter = families["serve_requests"]
        by_labels = {
            tuple(sorted(labels.items())): value
            for _, labels, value in counter["samples"]
        }
        key = (("endpoint", "/submit"), ("method", "POST"), ("status", "200"))
        assert by_labels[key] == 2
        assert families["serve_request_ms"]["type"] == "histogram"

    def test_dedupe_hit_rate_gauge(self):
        telemetry = ServiceTelemetry()
        telemetry.set_dedupe_hit_rate(
            {"submitted": 8, "deduped": 5, "cache_hits": 1}, 1.0
        )
        families = parse_prometheus_text(telemetry.render_metrics())
        ((_, _, value),) = families["serve_dedupe_hit_rate"]["samples"]
        assert value == pytest.approx(0.75)
        # No submissions yet → rate 0, not a ZeroDivisionError.
        telemetry.set_dedupe_hit_rate({}, 2.0)

    def test_series_tail_is_fixed_width_and_recent(self):
        telemetry = ServiceTelemetry()
        telemetry.record_request("/", "GET", 200, 1.0, 100.0)
        telemetry.record_request("/", "GET", 200, 1.0, 100.4)
        telemetry.record_request("/", "GET", 500, 1.0, 101.0)
        requests = telemetry.series_tail("requests", 101.0)
        errors = telemetry.series_tail("errors", 101.0)
        assert len(requests) == len(errors) == SERIES_BINS
        assert requests[-2:] == [2.0, 1.0]
        assert errors[-1] == 1.0
        assert telemetry.series_tail("requests", 1000.0) == [0.0] * SERIES_BINS


# ----------------------------------------------------------------- prometheus
class TestPrometheusRoundTrip:
    def test_counter_gauge_histogram_round_trip(self):
        registry = MetricsRegistry()
        registry.inc("serve.requests", 1, 3, endpoint="/submit", method="POST")
        registry.inc("serve.requests", 2, endpoint="/queue", method="GET")
        registry.set_gauge("serve.queue_depth", 2, 4)
        hist = registry.histogram("serve.request_ms", bounds=(1, 10, 100))
        for value in (0.5, 5.0, 50.0, 5000.0):
            hist.observe(3, value)
        text = render_prometheus(registry)
        families = parse_prometheus_text(text)
        assert families["serve_requests"]["type"] == "counter"
        assert families["serve_queue_depth"]["type"] == "gauge"
        assert families["serve_request_ms"]["type"] == "histogram"
        totals = [v for _, _, v in families["serve_requests"]["samples"]]
        assert sorted(totals) == [1, 3]
        buckets = {
            labels["le"]: value
            for name, labels, value in families["serve_request_ms"]["samples"]
            if name == "serve_request_ms_bucket"
        }
        # Cumulative: 0.5 | 5 | 50 land in successive buckets, 5000
        # only in +Inf.
        assert (buckets["1"], buckets["10"], buckets["100"]) == (1, 2, 3)
        assert buckets["+Inf"] == 4

    def test_label_values_escape_and_round_trip(self):
        registry = MetricsRegistry()
        tricky = 'a"b\\c\nd'
        registry.inc("odd.metric", 0, 7, detail=tricky)
        families = parse_prometheus_text(render_prometheus(registry))
        ((_, labels, value),) = families["odd_metric"]["samples"]
        assert labels["detail"] == tricky
        assert value == 7

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert parse_prometheus_text("") == {}


class TestPrometheusParserRejects:
    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("orphan 1\n", "no preceding # TYPE"),
            ("# TYPE foo counter\nfoo_total -1\n", "counter"),
            ("# TYPE foo counter\nfoo_total NaN\n", "counter"),
            ("# TYPE foo counter\n# TYPE foo counter\n", "duplicate TYPE"),
            ("# TYPE foo banana\n", "bad TYPE"),
            ("# TYPE foo gauge\nfoo abc\n", "bad value"),
            ("# TYPE foo gauge\nfoo{bad} 1\n", "malformed labels"),
            ("# TYPE 1bad gauge\n", "bad metric name"),
            (
                "# TYPE foo histogram\n"
                'foo_bucket{le="1"} 1\n',
                "+Inf",
            ),
            (
                "# TYPE foo histogram\n"
                'foo_bucket{le="1"} 2\n'
                'foo_bucket{le="+Inf"} 1\n',
                "cumulative",
            ),
            (
                "# TYPE foo histogram\n"
                'foo_bucket{le="1"} 1\n'
                'foo_bucket{le="+Inf"} 2\n'
                "foo_count 3\n",
                "_count",
            ),
        ],
    )
    def test_rejects(self, text, fragment):
        with pytest.raises(PrometheusParseError) as excinfo:
            parse_prometheus_text(text)
        assert fragment in str(excinfo.value)

    def test_accepts_free_comments_and_blank_lines(self):
        text = "# a comment\n\n# TYPE up gauge\nup 1\n"
        families = parse_prometheus_text(text)
        assert families["up"]["samples"] == [("up", {}, 1.0)]


# ------------------------------------------------------------------ /metrics
class TestMetricsEndpoint:
    def test_scrape_parses_and_covers_service_families(self, tmp_path):
        async def body(server, host, port):
            async with ServeClient(host, port) as client:
                await client.request("GET", "/healthz")
                await client.request("GET", "/nope")
                response = await client.submit(smoke_doc())
                await client.wait(response["job"])
                await client.submit(smoke_doc())  # a dedupe/cache hit
                return await client.request("GET", "/metrics")

        status, raw = run_with_server(tmp_path / "store", body, lanes=2)
        assert status == 200
        families = parse_prometheus_text(raw.decode("utf-8"))
        for family, kind in {
            "serve_requests": "counter",
            "serve_submissions": "counter",
            "serve_jobs_finished": "counter",
            "serve_stream_frames": "counter",
            "serve_request_ms": "histogram",
            "serve_queue_depth": "gauge",
            "serve_lanes_busy": "gauge",
            "serve_lanes_total": "gauge",
            "serve_dedupe_hit_rate": "gauge",
        }.items():
            assert families[family]["type"] == kind, family
        ((_, _, lanes_total),) = families["serve_lanes_total"]["samples"]
        assert lanes_total == 2
        endpoints = {
            labels["endpoint"]
            for _, labels, _ in families["serve_requests"]["samples"]
        }
        assert {"/healthz", "<other>", "/submit"} <= endpoints
        submit_latency = [
            (labels, value)
            for name, labels, value in families["serve_request_ms"]["samples"]
            if name == "serve_request_ms_count"
            and labels["endpoint"] == "/submit"
        ]
        assert submit_latency and submit_latency[0][1] == 2
        ((_, _, hit_rate),) = families["serve_dedupe_hit_rate"]["samples"]
        assert hit_rate == pytest.approx(0.5)

    def test_metrics_is_get_only(self, tmp_path):
        async def body(server, host, port):
            async with ServeClient(host, port) as client:
                return await client.request("POST", "/metrics")

        status, doc = run_with_server(tmp_path / "store", body)
        assert status == 405


# ------------------------------------------------------------ request tracing
class TestRequestTracing:
    def test_request_id_header_on_every_response(self, tmp_path):
        async def body(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            await writer.drain()
            await reader.readline()
            headers = {}
            while True:
                raw = await reader.readline()
                if raw in (b"\r\n", b"\n", b""):
                    break
                name, _, value = raw.decode().partition(":")
                headers[name.strip().lower()] = value.strip()
            writer.close()
            return headers

        headers = run_with_server(tmp_path / "store", body)
        assert REQUEST_ID_RE.match(headers["x-request-id"])

    def test_request_id_traces_submit_to_job_and_log(self, tmp_path):
        log_path = tmp_path / "access.jsonl"

        async def body(server, host, port):
            async with ServeClient(host, port) as client:
                response = await client.submit(smoke_doc())
                await client.wait(response["job"])
                frames = await client.stream_job(response["job"])
                job = await client.job(response["job"])
                return response, frames, job

        response, frames, job = run_with_server(
            tmp_path / "store", body, access_log=log_path
        )
        request_id = response["request"]
        assert REQUEST_ID_RE.match(request_id)
        # ... into the job document,
        assert request_id in job["requests"]
        # ... into the first stream frame,
        assert frames[0]["type"] == "job"
        assert frames[0]["request"] == request_id
        # ... and into the access log, which links back to the job.
        lines = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
            if line
        ]
        assert lines, "access log must have been written"
        assert all(
            {"ts", "request", "method", "path", "status", "bytes", "ms"}
            <= set(line)
            for line in lines
        )
        submit_lines = [l for l in lines if l["path"] == "/submit"]
        assert submit_lines[0]["request"] == request_id
        assert submit_lines[0]["job"] == response["job"]
        assert submit_lines[0]["status"] == 200
        ids = [line["request"] for line in lines]
        assert len(ids) == len(set(ids))

    def test_access_log_unit_appends_jsonl(self, tmp_path):
        path = tmp_path / "logs" / "a.jsonl"
        log = AccessLog(path)
        log.record({"request": "req-000001", "status": 200})
        log.record({"request": "req-000002", "status": 404})
        log.close()
        log.record({"request": "dropped"})  # after close: silently ignored
        reopened = AccessLog(path)  # append, not truncate
        reopened.record({"request": "req-000003", "status": 200})
        reopened.close()
        docs = [json.loads(l) for l in path.read_text().splitlines()]
        assert [d["request"] for d in docs] == [
            "req-000001", "req-000002", "req-000003",
        ]


# ------------------------------------------------------------ fleet dashboard
class TestFleetDashboard:
    def test_served_dashboard_is_self_contained(self, tmp_path):
        async def body(server, host, port):
            async with ServeClient(host, port) as client:
                response = await client.submit(smoke_doc())
                await client.wait(response["job"])
                return await client.request("GET", "/dashboard")

        status, raw = run_with_server(tmp_path / "store", body, lanes=3)
        assert status == 200
        html = raw.decode("utf-8")
        assert html.startswith("<!DOCTYPE html>")
        assert "fleet dashboard" in html
        for banned in BANNED_DASHBOARD_SUBSTRINGS:
            assert banned not in html, banned
        assert "3 lane(s)" in html
        assert "<svg" in html  # sparklines render inline

    def test_render_covers_fleet_stats(self):
        telemetry = ServiceTelemetry()
        telemetry.record_request("/submit", "POST", 200, 8.0, 1.0)
        telemetry.record_request("/queue", "GET", 500, 2.0, 2.0)
        html = render_fleet_dashboard(
            telemetry,
            stats={
                "submitted": 10,
                "deduped": 4,
                "cache_hits": 1,
                "executed": 5,
                "failed": 1,
            },
            queue_depth=2,
            lanes_busy=3,
            lanes_total=4,
            store_root="/tmp/store",
            uptime_s=61.0,
            now_s=3.0,
        )
        for expected in (
            "50.0%",          # dedupe hit rate (4+1)/10
            "3/4",            # lanes busy / total
            "queue depth",
            "/submit",        # endpoint table row
            "requests/s",     # sparkline labels
            "alerts/s",
        ):
            assert expected in html, expected
        for banned in BANNED_DASHBOARD_SUBSTRINGS:
            assert banned not in html, banned

    def test_dashboard_is_get_only(self, tmp_path):
        async def body(server, host, port):
            async with ServeClient(host, port) as client:
                return await client.request("POST", "/dashboard")

        status, _ = run_with_server(tmp_path / "store", body)
        assert status == 405


# ---------------------------------------------------------------------- lanes
class TestParallelLanes:
    def test_concurrent_streamed_alerts_equal_reports(self, tmp_path):
        """streamed ≡ stored must hold per job under 4 concurrent lanes.

        Four distinct alerting scenarios run at once, each lane scoping
        its own StreamingSink/MonitorSet; every job's streamed alert
        sequence must still canonicalize to exactly its own stored
        report — no frame may leak into another job's stream.
        """
        store_root = tmp_path / "store"
        seeds = (3, 5, 7, 11)

        async def one(host, port, seed):
            async with ServeClient(host, port) as client:
                response = await client.submit(scenario_doc(seed))
                frames = await client.stream_job(response["job"])
                job = await client.job(response["job"])
                return seed, frames, job

        async def body(server, host, port):
            return await asyncio.gather(
                *(one(host, port, seed) for seed in seeds)
            )

        results = run_with_server(store_root, body, lanes=4)
        lanes_used = set()
        for seed, frames, job in results:
            scenario = alerting_scenario(seed)
            streamed = [f["alert"] for f in frames if f["type"] == "alert"]
            assert streamed, f"seed {seed} must alert for this test to bite"
            report = load_run_report(
                store_root
                / "scenarios"
                / scenario.scenario_hash[:16]
                / "report.json"
            )
            canonical = sorted(
                streamed,
                key=lambda a: (a["epoch"], a["cycle"], a["monitor"]),
            )
            assert canonical == report.alerts
            done = frames[-1]
            assert done["type"] == "done" and done["state"] == "done"
            assert (
                done["result"]["fingerprint"] == report.summary["fingerprint"]
            )
            assert job["lane"] in range(4)
            lanes_used.add(job["lane"])
        # Four simultaneous distinct jobs on four lanes must overlap.
        assert len(lanes_used) >= 2

    def test_lanes_overlap_blocking_execution(self, tmp_path):
        """4 lanes clear a batch of blocking jobs much faster than 1.

        The executor is replaced with a GIL-releasing sleep (the same
        shape as blocking store/backend I/O), so the measured speedup
        isolates the lane machinery from single-core sim CPU.
        """
        delay, jobs = 0.05, 8
        docs = [scenario_doc(100 + i) for i in range(jobs)]

        def measure(lanes, root):
            async def body(server, host, port):
                def fake_execute(job):
                    time.sleep(delay)
                    return {"kind": "scenario", "stub": True}

                server.queue._execute = fake_execute

                async def one(doc):
                    async with ServeClient(host, port) as client:
                        response = await client.submit(doc)
                        return await client.wait(response["job"])

                t0 = time.monotonic()  # blitzlint: disable=D1 — wall timing
                done = await asyncio.gather(*(one(d) for d in docs))
                elapsed = time.monotonic() - t0  # blitzlint: disable=D1
                assert all(d["state"] == "done" for d in done)
                return elapsed

            return run_with_server(root, body, lanes=lanes)

        serial = measure(1, tmp_path / "s1")
        parallel = measure(4, tmp_path / "s4")
        assert serial >= jobs * delay  # one lane really serializes
        assert parallel < serial * 0.7, (serial, parallel)

    def test_queue_depth_and_cancel_accounting(self, tmp_path):
        async def body():
            queue_store = CampaignStore(tmp_path / "store")
            from repro.serve.jobs import JobQueue
            from repro.serve.protocol import parse_submission

            queue = JobQueue(
                queue_store, loop=asyncio.get_running_loop(), lanes=4
            )
            # No lanes started: jobs stay queued for inspection.
            first, _ = queue.submit(
                parse_submission(scenario_doc(1)), request_id="req-000001"
            )
            queue.submit(parse_submission(scenario_doc(2)))
            assert queue.queue_depth() == 2
            assert queue.busy_lanes() == 0
            queue.cancel(first.id)
            assert queue.queue_depth() == 1
            assert first.requests == ["req-000001"]
            await queue.close()

        asyncio.run(body())
