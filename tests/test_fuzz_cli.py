"""CLI tests for the ``fuzz`` subcommand family and its error paths.

Error paths must exit with code 2 and a one-line stderr message —
never a traceback.  The happy paths double as the end-to-end check of
the replay contract: ``fuzz run`` files a repro bundle, ``fuzz
replay`` reproduces it bit-identically, ``fuzz shrink`` minimizes it
in place.
"""

import json

import pytest

from repro.cli import main
from repro.fuzz.cli import parse_seed_spec
from repro.fuzz.corpus import ReproBundle
from repro.fuzz.oracles import run_oracles
from repro.fuzz.scenario import FuzzError, Scenario, SocSection


def run_cli(capsys, argv):
    rc = main(argv)
    captured = capsys.readouterr()
    return rc, captured.out, captured.err


def hang_scenario() -> Scenario:
    return Scenario(
        kind="soc",
        seed=2,
        max_cycles=5_000,
        soc=SocSection(
            preset="3x3",
            budget_mw=120,
            tasks=(("a", "FFT", 10_000_000, (), None),),
        ),
    )


def write_hang_bundle(path) -> ReproBundle:
    scenario = hang_scenario()
    outcome = run_oracles(scenario)
    bundle = ReproBundle(
        scenario, outcome.failures[0], outcome.fingerprint
    )
    path.write_text(bundle.to_json())
    return bundle


class TestSeedSpec:
    def test_single_and_range(self):
        assert parse_seed_spec("7") == [7]
        assert parse_seed_spec("3..6") == [3, 4, 5, 6]
        assert parse_seed_spec(" 4 ") == [4]

    @pytest.mark.parametrize(
        "spec", ["banana", "5..x", "6..3", "-1", "1..-2", "0..9999"]
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(FuzzError, match="bad seed spec"):
            parse_seed_spec(spec)


class TestErrorPaths:
    def test_bad_seed_spec_is_rc2_one_line(self, capsys, tmp_path):
        rc, out, err = run_cli(
            capsys,
            ["fuzz", "run", "--seeds", "banana",
             "--corpus", str(tmp_path / "c")],
        )
        assert rc == 2
        assert err.count("\n") == 1
        assert "bad seed spec" in err
        assert "Traceback" not in err

    def test_missing_bundle_is_rc2_one_line(self, capsys, tmp_path):
        rc, out, err = run_cli(
            capsys, ["fuzz", "replay", str(tmp_path / "nope.json")]
        )
        assert rc == 2
        assert err.count("\n") == 1
        assert "cannot read repro bundle" in err

    def test_corrupt_bundle_is_rc2_one_line(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        rc, out, err = run_cli(capsys, ["fuzz", "replay", str(bad)])
        assert rc == 2
        assert err.count("\n") == 1
        assert "not valid JSON" in err

    def test_corrupt_corpus_manifest_is_rc2_one_line(self, capsys, tmp_path):
        root = tmp_path / "c"
        root.mkdir()
        (root / "manifest.json").write_text("{broken")
        rc, out, err = run_cli(
            capsys, ["fuzz", "corpus", "--corpus", str(root)]
        )
        assert rc == 2
        assert err.count("\n") == 1
        assert "corrupt corpus manifest" in err

    def test_corrupt_corpus_entry_is_rc2_one_line(self, capsys, tmp_path):
        root = tmp_path / "c"
        rc, _, _ = run_cli(
            capsys,
            ["fuzz", "run", "--seeds", "11", "--budget", "2",
             "--corpus", str(root)],
        )
        assert rc == 0
        manifest = json.loads((root / "manifest.json").read_text())
        digest = sorted(manifest["entries"])[0]
        entry = root / "entries" / f"{digest}.json"
        doc = json.loads(entry.read_text())
        doc["seed"] = 4242  # silent corruption: hash no longer matches
        entry.write_text(json.dumps(doc))
        rc, out, err = run_cli(
            capsys, ["fuzz", "replay", "--corpus", str(root)]
        )
        assert rc == 2
        assert err.count("\n") == 1
        assert "corrupt" in err

    def test_replay_without_target_is_rc2(self, capsys):
        rc, out, err = run_cli(capsys, ["fuzz", "replay"])
        assert rc == 2
        assert "BUNDLE path or --corpus" in err

    def test_shrink_stale_bundle_is_rc2(self, capsys, tmp_path):
        # bundle whose scenario no longer trips the recorded failure
        scenario = hang_scenario()
        from repro.fuzz.oracles import Failure

        bundle = ReproBundle(
            scenario,
            Failure(oracle="monitor", key="monitor:starvation", detail=""),
            "0" * 32,
        )
        path = tmp_path / "stale.json"
        path.write_text(bundle.to_json())
        rc, out, err = run_cli(capsys, ["fuzz", "shrink", str(path)])
        assert rc == 2
        assert "does not reproduce" in err


class TestHappyPaths:
    def test_run_then_corpus_then_replay(self, capsys, tmp_path):
        root = tmp_path / "c"
        rc, out, _ = run_cli(
            capsys,
            ["fuzz", "run", "--seeds", "11", "--budget", "3",
             "--corpus", str(root)],
        )
        assert rc == 0
        assert "seed 11:" in out
        rc, out, _ = run_cli(
            capsys, ["fuzz", "corpus", "--corpus", str(root)]
        )
        assert rc == 0
        assert "coverage tokens" in out
        rc, out, _ = run_cli(
            capsys, ["fuzz", "replay", "--corpus", str(root)]
        )
        assert rc == 0
        assert "replayed clean" in out

    def test_replay_bundle_reproduces(self, capsys, tmp_path):
        path = tmp_path / "bundle.json"
        write_hang_bundle(path)
        rc, out, _ = run_cli(capsys, ["fuzz", "replay", str(path)])
        assert rc == 0
        assert "reproduced bit-identically" in out

    def test_replay_flags_fingerprint_mismatch(self, capsys, tmp_path):
        path = tmp_path / "bundle.json"
        bundle = write_hang_bundle(path)
        doc = json.loads(path.read_text())
        doc["fingerprint"] = "0" * 32
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        rc, out, err = run_cli(capsys, ["fuzz", "replay", str(path)])
        assert rc == 1
        assert "DID NOT reproduce" in err
        assert bundle.failure.key in out

    def test_shrink_in_place(self, capsys, tmp_path):
        path = tmp_path / "bundle.json"
        write_hang_bundle(path)
        before = path.read_bytes()
        rc, out, _ = run_cli(capsys, ["fuzz", "shrink", str(path)])
        assert rc == 0
        assert "shrunk" in out
        after = ReproBundle.from_json(path.read_text())
        assert after.failure.key == "hang:workload"
        # shrunk output stays a valid, replayable bundle
        rc, out, _ = run_cli(capsys, ["fuzz", "replay", str(path)])
        assert rc == 0
