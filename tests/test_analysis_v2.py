"""blitzlint v2: dataflow engine, D2/U2/C2/P1, SARIF, baseline, cache."""

import ast
import json
from pathlib import Path

import pytest

from repro.analysis.__main__ import main as lint_main
from repro.analysis.baseline import (
    BaselineError,
    diff_against_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.cache import CacheError, ResultCache
from repro.analysis.dataflow import (
    CFG,
    FixpointDiverged,
    TaintEnv,
    UnitEnv,
    build_cfg,
    functions_in,
    iter_acyclic_paths,
    solve_forward,
)
from repro.analysis.lint import LintError, lint_paths, lint_source
from repro.analysis.sarif import to_sarif, validate_sarif

FIXTURES = Path(__file__).parent / "fixtures" / "lint"


def codes(findings):
    return sorted({f.code for f in findings})


def only(findings, code):
    return [f for f in findings if f.code == code]


# ===================================================================== core
class TestCFG:
    def _fn(self, src):
        return ast.parse(src).body[0]

    def test_straight_line_is_one_path(self):
        cfg = build_cfg(self._fn("def f():\n    a = 1\n    b = 2\n"))
        paths = list(iter_acyclic_paths(cfg))
        assert len(paths) == 1

    def test_if_else_makes_two_paths(self):
        cfg = build_cfg(
            self._fn(
                "def f(x):\n"
                "    if x:\n"
                "        a = 1\n"
                "    else:\n"
                "        a = 2\n"
                "    return a\n"
            )
        )
        assert len(list(iter_acyclic_paths(cfg))) == 2

    def test_early_return_paths(self):
        cfg = build_cfg(
            self._fn(
                "def f(x):\n"
                "    if x:\n"
                "        return 1\n"
                "    return 2\n"
            )
        )
        assert len(list(iter_acyclic_paths(cfg))) == 2

    def test_loop_has_back_edge_and_stays_acyclic(self):
        cfg = build_cfg(
            self._fn(
                "def f(xs):\n"
                "    total = 0\n"
                "    for x in xs:\n"
                "        total += x\n"
                "    return total\n"
            )
        )
        # Back edge exists in the graph...
        assert any(
            b in cfg.blocks[s].succs
            for b in cfg.blocks
            for s in cfg.blocks[b].succs
        )
        # ...but enumeration never revisits a block.
        for path in iter_acyclic_paths(cfg):
            bids = [b.bid for b in path]
            assert len(bids) == len(set(bids))

    def test_path_enumeration_capped(self):
        # 20 sequential ifs -> 2**20 paths; the cap must bound the walk.
        src = "def f(x):\n" + "".join(
            f"    if x == {i}:\n        x += 1\n" for i in range(20)
        ) + "    return x\n"
        cfg = build_cfg(self._fn(src))
        assert len(list(iter_acyclic_paths(cfg, limit=64))) <= 64

    def test_rpo_starts_at_entry(self):
        cfg = build_cfg(self._fn("def f():\n    a = 1\n"))
        assert cfg.rpo()[0] == cfg.entry

    def test_functions_in_finds_nested_and_methods(self):
        tree = ast.parse(
            "class A:\n"
            "    def m(self):\n"
            "        def inner():\n"
            "            pass\n"
        )
        units = {u.qualname: u for u in functions_in(tree)}
        assert "A.m" in units
        assert units["A.m"].depth == 0
        inner = [u for u in units.values() if u.node.name == "inner"][0]
        assert inner.depth == 1
        assert inner.parent == "A.m"


class TestSolver:
    def test_taint_env_join_is_union(self):
        from repro.analysis.dataflow import Taint

        a, b = TaintEnv(), TaintEnv()
        t1, t2 = Taint("rng", 1, "x"), Taint("wall-clock", 2, "y")
        a.set("v", frozenset([t1]))
        b.set("v", frozenset([t2]))
        assert a.join(b).get("v") == frozenset([t1, t2])

    def test_unit_env_join_keeps_agreement_only(self):
        a, b = UnitEnv(), UnitEnv()
        a.set("p", "mW")
        a.set("q", "J")
        b.set("p", "mW")
        b.set("q", "W")
        j = a.join(b)
        assert j.get("p") == "mW"
        assert j.get("q") is None

    def test_divergence_guard(self):
        fn = ast.parse(
            "def f(xs):\n    while xs:\n        xs = g(xs)\n"
        ).body[0]
        cfg = build_cfg(fn)

        class Grow:
            def __init__(self, n=0):
                self.n = n

            def join(self, other):
                return Grow(max(self.n, other.n))

            def copy(self):
                return Grow(self.n)

            def __eq__(self, other):
                return False  # never converges

        with pytest.raises(FixpointDiverged):
            solve_forward(
                cfg,
                Grow(),
                lambda stmt, st: Grow(st.n + 1),
                lambda a, b: a.join(b),
                lambda s: s.copy(),
                max_visits_per_block=4,
            )


# ================================================================== rule D2
class TestRuleD2RngTaint:
    def test_wall_clock_into_schedule_delay(self):
        findings = lint_source(
            "import time\n"
            "def f(sim, h):\n"
            "    t = time.time()\n"
            "    d = int(t) % 5\n"
            "    sim.schedule(d, h)\n",
            module="repro.sim.x",
        )
        assert "D2" in codes(findings)

    def test_entropy_into_seed_function(self):
        findings = lint_source(
            "import os\n"
            "def f():\n"
            "    raw = os.urandom(4)\n"
            "    return spawn_rng(raw, 2)\n",
            module="repro.campaign.x",
        )
        assert "D2" in codes(findings)

    def test_iter_order_taint_reaches_sink(self):
        findings = lint_source(
            "def f(tiles):\n"
            "    first = [t for t in {x for x in tiles}][0]\n"
            "    return rng_for(first, 'a')\n",
            module="repro.campaign.x",
        )
        assert "D2" in codes(findings)

    def test_sorted_launders_iter_order(self):
        findings = lint_source(
            "def f(tiles):\n"
            "    first = sorted({x for x in tiles})[0]\n"
            "    return rng_for(first, 'a')\n",
            module="repro.campaign.x",
        )
        assert only(findings, "D2") == []

    def test_id_into_sim_state_write(self):
        findings = lint_source(
            "def f(self, pkt):\n"
            "    tag = id(pkt)\n"
            "    self.state = tag\n",
            module="repro.core.x",
        )
        assert "D2" in codes(findings)

    def test_taint_joins_across_branches(self):
        findings = lint_source(
            "import time\n"
            "def f(sim, h, flag):\n"
            "    if flag:\n"
            "        d = 3\n"
            "    else:\n"
            "        d = int(time.time())\n"
            "    sim.schedule(d, h)\n",
            module="repro.sim.x",
        )
        assert "D2" in codes(findings)

    def test_clean_seeded_flow(self):
        findings = lint_source(
            "def f(sim, h, seed):\n"
            "    rng = spawn_rng(seed, 3)\n"
            "    sim.schedule(7, h)\n",
            module="repro.sim.x",
        )
        assert only(findings, "D2") == []


# ================================================================== rule U2
class TestRuleU2UnitsFlow:
    def test_mixed_unit_add(self):
        findings = lint_source(
            "def f(power_mw, energy_j):\n"
            "    return power_mw + energy_j\n",
            module="repro.power.x",
        )
        assert "U2" in codes(findings)

    def test_unit_dropping_return(self):
        findings = lint_source(
            "def f(energy_j):\n"
            '    """Budget in mW."""\n'
            "    return energy_j\n",
            module="repro.power.x",
        )
        assert "U2" in codes(findings)

    def test_same_unit_add_clean(self):
        findings = lint_source(
            "def f(a_mw, b_mw):\n"
            "    return a_mw + b_mw\n",
            module="repro.power.x",
        )
        assert only(findings, "U2") == []

    def test_unit_preserving_calls_clean(self):
        findings = lint_source(
            "def f(a_mw, b_mw):\n"
            "    return max(a_mw, abs(b_mw))\n",
            module="repro.power.x",
        )
        assert only(findings, "U2") == []

    def test_mixed_unit_comparison(self):
        findings = lint_source(
            "def f(a_mw, b_j):\n"
            "    return a_mw < b_j\n",
            module="repro.power.x",
        )
        assert "U2" in codes(findings)

    def test_units_propagate_through_assignment(self):
        findings = lint_source(
            "def f(a_mw, b_j):\n"
            "    x = a_mw\n"
            "    y = b_j\n"
            "    return x + y\n",
            module="repro.power.x",
        )
        assert "U2" in codes(findings)

    def test_out_of_scope_module_ignored(self):
        findings = lint_source(
            "def f(a_mw, b_j):\n"
            "    return a_mw + b_j\n",
            module="repro.report.x",
        )
        assert only(findings, "U2") == []


# ================================================================== rule C2
class TestRuleC2CoinFlow:
    def test_dropped_partner_delta(self):
        findings = lint_source(
            "class E:\n"
            "    def go(self, result, a, b, flag):\n"
            "        da, db = result.deltas\n"
            "        self._apply_delta(a, da)\n"
            "        if flag:\n"
            "            self._apply_delta(b, db)\n",
            module="repro.core.x",
        )
        assert "C2" in codes(findings)

    def test_full_unpack_applied_clean(self):
        findings = lint_source(
            "class E:\n"
            "    def go(self, result, a, b):\n"
            "        da, db = result.deltas\n"
            "        self._apply_delta(a, da)\n"
            "        self._in_flight += db\n",
            module="repro.core.x",
        )
        assert only(findings, "C2") == []

    def test_zip_slice_loop_balances(self):
        findings = lint_source(
            "class E:\n"
            "    def go(self, result, center, order):\n"
            "        deltas = result.deltas\n"
            "        self._apply_delta(center, deltas[0])\n"
            "        for nb, d in zip(order, deltas[1:]):\n"
            "            self._in_flight += d\n",
            module="repro.core.x",
        )
        assert only(findings, "C2") == []

    def test_in_flight_handoff_clean(self):
        findings = lint_source(
            "class E:\n"
            "    def on_update(self, dst, delta):\n"
            "        self._in_flight -= delta\n"
            "        self._apply_delta(dst, delta)\n",
            module="repro.core.x",
        )
        assert only(findings, "C2") == []

    def test_loss_booking_clean(self):
        findings = lint_source(
            "class E:\n"
            "    def confiscate(self, tid, held):\n"
            "        self._apply_delta(tid, -held)\n"
            "        self._book_loss(held, prefer=None)\n",
            module="repro.core.x",
        )
        assert only(findings, "C2") == []

    def test_one_sided_loss_flags(self):
        findings = lint_source(
            "class E:\n"
            "    def vanish(self, tid, held):\n"
            "        self._apply_delta(tid, -held)\n",
            module="repro.core.x",
        )
        assert "C2" in codes(findings)

    def test_primitives_exempt(self):
        findings = lint_source(
            "class E:\n"
            "    def _apply_delta(self, tid, delta):\n"
            "        self.fsm[tid].coins.has += delta\n",
            module="repro.core.x",
        )
        assert only(findings, "C2") == []

    def test_ordinary_loop_body_must_balance(self):
        findings = lint_source(
            "class E:\n"
            "    def drain(self, tids):\n"
            "        for t in tids:\n"
            "            self._apply_delta(t, 1)\n",
            module="repro.core.x",
        )
        assert "C2" in codes(findings)

    def test_closure_shares_families(self):
        findings = lint_source(
            "class E:\n"
            "    def go(self, sim, result, a, b):\n"
            "        da, db = result.deltas\n"
            "        def apply():\n"
            "            self._apply_delta(a, da)\n"
            "            self._in_flight += db\n"
            "        sim.schedule(3, apply)\n",
            module="repro.core.x",
        )
        assert only(findings, "C2") == []

    def test_out_of_scope_module_ignored(self):
        findings = lint_source(
            "class E:\n"
            "    def vanish(self, tid, held):\n"
            "        self._apply_delta(tid, -held)\n",
            module="repro.obs.x",
        )
        assert only(findings, "C2") == []


# ================================================================== rule P1
class TestRuleP1ParallelSafety:
    def test_mutated_module_global(self):
        findings = lint_source(
            "_CACHE = {}\n"
            "def run(u):\n"
            "    _CACHE[u] = 1\n",
            module="repro.campaign.x",
        )
        assert "P1" in codes(findings)

    def test_read_only_module_table_clean(self):
        findings = lint_source(
            "_TABLE = {'a': 1}\n"
            "def run(u):\n"
            "    return _TABLE.get(u)\n",
            module="repro.campaign.x",
        )
        assert only(findings, "P1") == []

    def test_lambda_submission(self):
        findings = lint_source(
            "def drive(pool, xs):\n"
            "    return pool.map(lambda x: x + 1, xs)\n",
            module="repro.campaign.x",
        )
        assert "P1" in codes(findings)

    def test_local_closure_submission(self):
        findings = lint_source(
            "def drive(pool, xs):\n"
            "    def work(x):\n"
            "        return x + 1\n"
            "    return pool.map(work, xs)\n",
            module="repro.campaign.x",
        )
        assert "P1" in codes(findings)

    def test_module_function_submission_clean(self):
        findings = lint_source(
            "def work(x):\n"
            "    return x + 1\n"
            "def drive(pool, xs):\n"
            "    return pool.map(work, xs)\n",
            module="repro.campaign.x",
        )
        assert only(findings, "P1") == []

    def test_fork_start_method(self):
        findings = lint_source(
            "import multiprocessing\n"
            "def setup():\n"
            "    multiprocessing.set_start_method('fork')\n",
            module="repro.campaign.x",
        )
        assert "P1" in codes(findings)

    def test_import_time_pool(self):
        findings = lint_source(
            "from concurrent.futures import ProcessPoolExecutor\n"
            "_POOL = ProcessPoolExecutor(2)\n",
            module="repro.campaign.x",
        )
        assert "P1" in codes(findings)

    def test_out_of_scope_module_ignored(self):
        findings = lint_source(
            "_CACHE = {}\n"
            "def run(u):\n"
            "    _CACHE[u] = 1\n",
            module="repro.core.x",
        )
        assert only(findings, "P1") == []


class TestRuleP1ScopedRuntimeWrites:
    """The scope-free check: never assign the scoped runtime flags."""

    def test_direct_sink_write_flagged_anywhere(self):
        # Scope-free: repro.core is NOT a parallel scope, yet the
        # write is still flagged — the scoped runtime's integrity is
        # a whole-process property.
        findings = lint_source(
            "from repro.obs import runtime\n"
            "def hijack(s):\n"
            "    runtime.sink = s\n",
            module="repro.core.x",
        )
        assert "P1" in codes(findings)
        assert "bypasses the scoped runtime" in findings[0].message

    def test_aliased_import_write_flagged(self):
        findings = lint_source(
            "from repro.obs import runtime as _obs\n"
            "def hijack(s):\n"
            "    _obs.sink = s\n",
            module="repro.serve.x",
        )
        assert "P1" in codes(findings)

    def test_full_dotted_write_flagged(self):
        findings = lint_source(
            "import repro.obs.runtime\n"
            "def hijack(s):\n"
            "    repro.obs.runtime.sink = s\n",
            module="repro.core.x",
        )
        assert "P1" in codes(findings)

    def test_injector_write_and_delete_flagged(self):
        findings = lint_source(
            "from repro.faults import runtime as _faults\n"
            "def hijack(inj):\n"
            "    _faults.injector = inj\n"
            "    del _faults.injector\n",
            module="repro.noc.x",
        )
        assert len(only(findings, "P1")) == 2

    def test_reads_and_api_calls_clean(self):
        findings = lint_source(
            "from repro.obs import runtime as _obs\n"
            "from repro.obs.runtime import install, uninstall\n"
            "def emit(now):\n"
            "    if _obs.sink is not None:\n"
            "        _obs.sink.inc('x', now)\n"
            "def scope(s):\n"
            "    install(s)\n"
            "    uninstall()\n",
            module="repro.engine.x",
        )
        assert only(findings, "P1") == []

    def test_unrelated_sink_attribute_clean(self):
        # An object that merely has a `.sink` attribute is untouched —
        # the check resolves the import alias to the runtime module.
        findings = lint_source(
            "def set_sink(pipeline, s):\n"
            "    pipeline.sink = s\n",
            module="repro.core.x",
        )
        assert only(findings, "P1") == []

    def test_runtime_module_itself_exempt(self):
        findings = lint_source(
            "import sys\n"
            "def uninstall():\n"
            "    sys.modules[__name__].sink = None\n",
            module="repro.obs.runtime",
        )
        assert only(findings, "P1") == []


# ============================================================= suppressions
class TestSuppressionEdgeCases:
    def test_multi_rule_disable_on_one_line(self):
        findings = lint_source(
            "def f(a_mw, b_j):\n"
            "    return a_mw + b_j  # blitzlint: disable=U2,D1\n",
            module="repro.power.x",
        )
        assert findings == []

    def test_standalone_pragma_covers_next_line(self):
        findings = lint_source(
            "import time\n"
            "def f():\n"
            "    # blitzlint: disable=D1\n"
            "    return time.time()\n",
            module="repro.power.x",
        )
        assert findings == []

    def test_standalone_pragma_does_not_leak_past_next_line(self):
        findings = lint_source(
            "import time  # blitzlint: disable=D1\n"
            "def f():\n"
            "    # blitzlint: disable=D1\n"
            "    a = time.time()\n"
            "    return time.time()\n",
            module="repro.power.x",
        )
        assert [f.line for f in findings] == [5]

    def test_unknown_rule_name_in_pragma_is_inert(self):
        findings = lint_source(
            "import random  # blitzlint: disable=ZZ9\n",
            module="repro.power.x",
        )
        assert codes(findings) == ["D1"]

    def test_unknown_plus_known_still_suppresses_known(self):
        findings = lint_source(
            "import time  # blitzlint: disable=ZZ9,D1\n",
            module="repro.power.x",
        )
        assert findings == []

    def test_disable_file_pragma(self):
        findings = lint_source(
            "# blitzlint: disable-file=D1\n"
            "import time\n"
            "def f():\n"
            "    return time.time()\n",
            module="repro.power.x",
        )
        assert findings == []

    def test_disable_file_leaves_other_rules(self):
        findings = lint_source(
            "# blitzlint: disable-file=D1\n"
            "import time\n"
            "def f(a_mw, b_j):\n"
            "    return a_mw + b_j\n",
            module="repro.power.x",
        )
        assert codes(findings) == ["U2"]

    def test_pragma_inside_string_is_inert(self):
        findings = lint_source(
            'SNIPPET = """\n'
            "# blitzlint: scope=repro.core.coins\n"
            '"""\n'
            "x = 1 / 2\n",
            module="",
        )
        assert findings == []

    def test_disable_pragma_inside_string_is_inert(self):
        findings = lint_source(
            'S = "# blitzlint: disable=D1"\n'
            "import random\n",
            module="repro.power.x",
        )
        assert codes(findings) == ["D1"]


# ================================================================= CLI / rc
class TestCliErrorPaths:
    def test_missing_baseline_is_one_line_rc2(self, tmp_path, capsys):
        rc = lint_main(
            [str(FIXTURES / "bad_d1.py"), "--baseline",
             str(tmp_path / "nope.json")]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert len(err.strip().splitlines()) == 1
        assert err.startswith("blitzlint: error:")
        assert "Traceback" not in err

    def test_corrupt_cache_is_one_line_rc2(self, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        cache.write_text("{ not json", encoding="utf-8")
        rc = lint_main(
            [str(FIXTURES / "bad_d1.py"), "--cache", str(cache)]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert len(err.strip().splitlines()) == 1
        assert err.startswith("blitzlint: error:")
        assert "Traceback" not in err

    def test_unwritable_out_is_one_line_rc2(self, tmp_path, capsys):
        blocker = tmp_path / "plainfile"
        blocker.write_text("", encoding="utf-8")
        rc = lint_main(
            [str(FIXTURES / "bad_d1.py"), "--format", "sarif",
             "--out", str(blocker / "report.sarif")]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert len(err.strip().splitlines()) == 1
        assert err.startswith("blitzlint: error:")
        assert "Traceback" not in err

    def test_missing_path_still_rc2(self, capsys):
        rc = lint_main(["/no/such/dir"])
        assert rc == 2
        assert capsys.readouterr().err.startswith("blitzlint: error:")

    def test_sarif_to_stdout(self, capsys):
        rc = lint_main([str(FIXTURES / "bad_u1.py"), "--format", "sarif"])
        assert rc == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert validate_sarif(log) == []


# ==================================================================== SARIF
class TestSarif:
    def _findings(self):
        return lint_source(
            "import time\n"
            "def f(a_mw, b_j):\n"
            "    return a_mw + b_j\n",
            path="src/repro/power/x.py",
            module="repro.power.x",
        )

    def test_log_validates_against_schema(self):
        assert validate_sarif(to_sarif(self._findings())) == []

    def test_jsonschema_validation_when_available(self):
        jsonschema = pytest.importorskip("jsonschema")
        from repro.analysis.sarif import SARIF_SCHEMA

        jsonschema.validate(to_sarif(self._findings()), SARIF_SCHEMA)

    def test_empty_log_validates(self):
        assert validate_sarif(to_sarif([])) == []

    def test_columns_are_one_based(self):
        log = to_sarif(self._findings())
        for res in log["runs"][0]["results"]:
            region = res["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1

    def test_results_carry_fingerprints(self):
        log = to_sarif(self._findings())
        for res in log["runs"][0]["results"]:
            assert "blitzlintFingerprint/v1" in res["partialFingerprints"]

    def test_rule_catalog_lists_all_rules(self):
        from repro.analysis.lint import RULES

        log = to_sarif([])
        ids = {r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]}
        assert ids == set(RULES)

    def test_broken_log_reports_errors(self):
        assert validate_sarif({"version": "1.0.0", "runs": []}) != []


# ================================================================= baseline
class TestBaseline:
    SRC_V1 = (
        "import time\n"
        "def f():\n"
        "    return time.time()\n"
    )
    # Same finding, shifted down by an unrelated edit above it.
    SRC_V2 = (
        "import os\n"
        "import time\n"
        "def f():\n"
        "    return time.time()\n"
    )

    def test_roundtrip_gates_to_zero(self, tmp_path):
        findings = lint_source(self.SRC_V1, module="repro.power.x")
        bl = tmp_path / "bl.json"
        write_baseline(bl, findings, {"<string>": self.SRC_V1})
        new, known, fixed = diff_against_baseline(
            findings, load_baseline(bl), {"<string>": self.SRC_V1}
        )
        assert new == []
        assert len(known) == len(findings)
        assert fixed == []

    def test_fingerprint_survives_line_drift(self, tmp_path):
        bl = tmp_path / "bl.json"
        write_baseline(
            bl,
            lint_source(self.SRC_V1, module="repro.power.x"),
            {"<string>": self.SRC_V1},
        )
        drifted = lint_source(self.SRC_V2, module="repro.power.x")
        new, known, _ = diff_against_baseline(
            drifted, load_baseline(bl), {"<string>": self.SRC_V2}
        )
        assert new == []
        assert len(known) == len(drifted)

    def test_new_finding_gates(self, tmp_path):
        bl = tmp_path / "bl.json"
        write_baseline(
            bl,
            lint_source(self.SRC_V1, module="repro.power.x"),
            {"<string>": self.SRC_V1},
        )
        src = self.SRC_V1 + "def g():\n    return time.perf_counter()\n"
        new, known, _ = diff_against_baseline(
            lint_source(src, module="repro.power.x"),
            load_baseline(bl),
            {"<string>": src},
        )
        assert len(new) == 1
        assert "perf_counter" in new[0].message

    def test_fixed_findings_reported(self, tmp_path):
        bl = tmp_path / "bl.json"
        write_baseline(
            bl,
            lint_source(self.SRC_V1, module="repro.power.x"),
            {"<string>": self.SRC_V1},
        )
        _, _, fixed = diff_against_baseline([], load_baseline(bl), {})
        assert fixed  # every baselined hint is now gone

    def test_malformed_baseline_raises(self, tmp_path):
        bl = tmp_path / "bl.json"
        bl.write_text('{"fingerprints": []}', encoding="utf-8")
        with pytest.raises(BaselineError):
            load_baseline(bl)

    def test_repo_baseline_is_clean_at_head(self, capsys):
        repo = Path(__file__).resolve().parent.parent
        rc = lint_main(
            [
                str(repo / "src" / "repro"),
                "--baseline",
                str(repo / "lint-baseline.json"),
            ]
        )
        capsys.readouterr()
        assert rc == 0


# ==================================================================== cache
class TestResultCache:
    def test_warm_hit_returns_same_findings(self, tmp_path):
        cache = ResultCache(tmp_path / "c.json")
        f = tmp_path / "m.py"
        f.write_text("import random\n", encoding="utf-8")
        # blitzlint scope comes from the path (not under repro) -> D1 only
        cold = lint_paths([str(f)], cache=cache)
        cache.save()
        warm_cache = ResultCache(tmp_path / "c.json")
        warm = lint_paths([str(f)], cache=warm_cache)
        assert [x.to_dict() for x in warm] == [x.to_dict() for x in cold]

    def test_content_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path / "c.json")
        f = tmp_path / "m.py"
        f.write_text("import random\n", encoding="utf-8")
        assert lint_paths([str(f)], cache=cache)
        f.write_text("x = 1\n", encoding="utf-8")
        assert lint_paths([str(f)], cache=cache) == []

    def test_rule_selection_part_of_key(self, tmp_path):
        cache = ResultCache(tmp_path / "c.json")
        f = tmp_path / "m.py"
        f.write_text("import random\n", encoding="utf-8")
        all_rules = lint_paths([str(f)], cache=cache)
        only_u1 = lint_paths([str(f)], rules=["U1"], cache=cache)
        assert all_rules and only_u1 == []

    def test_corrupt_cache_raises_cache_error(self, tmp_path):
        p = tmp_path / "c.json"
        p.write_text("{broken", encoding="utf-8")
        with pytest.raises(CacheError):
            ResultCache(p)

    def test_exclude_globs(self, tmp_path):
        keep = tmp_path / "keep.py"
        skip = tmp_path / "skip_me.py"
        keep.write_text("import random\n", encoding="utf-8")
        skip.write_text("import random\n", encoding="utf-8")
        findings = lint_paths([str(tmp_path)], exclude=["skip_*"])
        assert {Path(f.path).name for f in findings} == {"keep.py"}


# =============================================================== clean tree
class TestCleanTree:
    def test_new_rules_clean_on_src(self):
        repo = Path(__file__).resolve().parent.parent
        findings = lint_paths(
            [str(repo / "src" / "repro")], rules=["D2", "U2", "C2", "P1"]
        )
        assert findings == []

    def test_tests_and_benchmarks_clean(self):
        repo = Path(__file__).resolve().parent.parent
        findings = lint_paths(
            [str(repo / "tests"), str(repo / "benchmarks")],
            exclude=["*/fixtures/lint/*"],
        )
        assert findings == []
