"""Tests for tile specs, SoC configs, and the three presets."""

import pytest

from repro.soc.presets import soc_3x3, soc_4x4, soc_6x6_chip
from repro.soc.tile import (
    SocConfig,
    SocConfigError,
    TileKind,
    TileSpec,
)


class TestTileSpec:
    def test_accelerator_requires_class(self):
        with pytest.raises(SocConfigError):
            TileSpec(kind=TileKind.ACCELERATOR)

    def test_unknown_accelerator_class_rejected(self):
        with pytest.raises(SocConfigError):
            TileSpec(kind=TileKind.ACCELERATOR, acc_class="TPU")

    def test_non_accelerator_cannot_have_class(self):
        with pytest.raises(SocConfigError):
            TileSpec(kind=TileKind.CPU, acc_class="FFT")

    def test_managed_accelerator_flag(self):
        managed = TileSpec(kind=TileKind.ACCELERATOR, acc_class="FFT")
        unmanaged = TileSpec(
            kind=TileKind.ACCELERATOR, acc_class="FFT", pm_enabled=False
        )
        assert managed.is_managed_accelerator
        assert not unmanaged.is_managed_accelerator


class TestSocConfig:
    def test_cpu_required(self):
        with pytest.raises(SocConfigError):
            SocConfig(
                name="x",
                width=2,
                height=2,
                tiles={0: TileSpec(kind=TileKind.MEM)},
            )

    def test_tile_id_bounds_checked(self):
        with pytest.raises(SocConfigError):
            SocConfig(
                name="x",
                width=2,
                height=2,
                tiles={5: TileSpec(kind=TileKind.CPU)},
            )

    def test_unlisted_slots_default_to_aux(self):
        cfg = SocConfig(
            name="x",
            width=2,
            height=2,
            tiles={0: TileSpec(kind=TileKind.CPU)},
        )
        assert cfg.spec(3).kind is TileKind.AUX


class TestPresets:
    def test_3x3_inventory_matches_fig12(self):
        cfg = soc_3x3()
        assert cfg.topology.n_tiles == 9
        classes = [cfg.class_of(t) for t in cfg.managed_accelerators()]
        assert sorted(classes) == sorted(
            ["FFT", "FFT", "FFT", "Viterbi", "Viterbi", "NVDLA"]
        )

    def test_4x4_inventory_matches_fig12(self):
        cfg = soc_4x4()
        assert cfg.topology.n_tiles == 16
        assert len(cfg.managed_accelerators()) == 13
        classes = [cfg.class_of(t) for t in cfg.managed_accelerators()]
        assert classes.count("GEMM") == 5
        assert classes.count("Conv2D") == 4
        assert classes.count("Vision") == 4

    def test_6x6_chip_matches_fig15(self):
        cfg = soc_6x6_chip()
        assert cfg.topology.n_tiles == 36
        # 10-tile PM cluster.
        assert len(cfg.managed_accelerators()) == 10
        # 8 accelerators outside the PM domain, including FFT No-PM.
        unmanaged = set(cfg.accelerators()) - set(cfg.managed_accelerators())
        assert len(unmanaged) == 8
        labels = {cfg.spec(t).label for t in unmanaged}
        assert "fft-no-pm" in labels
        # 4 CPUs, 4 memory tiles, 4 scratchpads, 1 IO.
        kinds = [s.kind for s in cfg.tiles.values()]
        assert kinds.count(TileKind.CPU) == 4
        assert kinds.count(TileKind.MEM) == 4
        assert kinds.count(TileKind.SCRATCHPAD) == 4
        assert kinds.count(TileKind.IO) == 1

    def test_pm_cluster_can_host_the_7_acc_workload(self):
        cfg = soc_6x6_chip()
        classes = [cfg.class_of(t) for t in cfg.managed_accelerators()]
        assert classes.count("NVDLA") >= 1
        assert classes.count("FFT") >= 2
        assert classes.count("Viterbi") >= 4

    def test_tiles_of_class(self):
        cfg = soc_3x3()
        assert len(cfg.tiles_of_class("FFT")) == 3
        assert cfg.tiles_of_class("GEMM") == []

    def test_class_of_non_accelerator_rejected(self):
        cfg = soc_3x3()
        with pytest.raises(SocConfigError):
            cfg.class_of(cfg.cpu_tile())

    def test_fixed_power_positive(self):
        assert soc_3x3().fixed_power_mw() > 0
