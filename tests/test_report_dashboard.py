"""Dashboard rendering: one self-contained HTML file, no externals.

The contract the tests pin down: the output is a single document with
inline CSS and SVG only — no scripts, no stylesheets, no images, no
network references of any kind — and it renders the budget reference
line, the per-tile heatmaps, and the alert timeline from a *real*
fig16 run, not a synthetic fixture.
"""

import re

import pytest

from repro.experiments.fig16_power_traces import run_reported
from repro.report.dashboard import render_dashboard, write_dashboard
from repro.report.run_report import RunReport


@pytest.fixture(scope="module")
def fig16_report():
    return run_reported()


@pytest.fixture(scope="module")
def html(fig16_report):
    return render_dashboard(fig16_report)


class TestSelfContained:
    def test_single_complete_document(self, html):
        assert html.startswith("<!DOCTYPE html>")
        assert html.count("<html") == html.count("</html>") == 1
        assert "charset" in html

    def test_no_external_references(self, html):
        for banned in (
            "http://", "https://", "<script", "<link", "src=", "@import",
            "url(",
        ):
            assert banned not in html, f"external reference: {banned!r}"

    def test_dark_mode_and_palette_inline(self, html):
        assert "prefers-color-scheme: dark" in html
        assert "--series-1" in html and "--status-critical" in html

    def test_write_is_one_file(self, tmp_path, fig16_report):
        out = tmp_path / "dash.html"
        write_dashboard(fig16_report, out)
        assert out.read_text() == render_dashboard(fig16_report)
        assert [p.name for p in tmp_path.iterdir()] == ["dash.html"]


class TestContent:
    def test_power_chart_with_budget_line(self, html):
        assert "<svg" in html
        assert "budget 120 mW" in html
        assert "stroke-dasharray" in html  # the reference line style

    def test_heatmaps_from_real_grid(self, html):
        assert "mean power" in html
        assert "final coins" in html
        # 3x3 grid -> 9 cells per heatmap, each with a hover tooltip
        assert html.count("<title>") >= 9

    def test_alert_section_renders(self, html, fig16_report):
        assert "<h2>Alerts</h2>" in html
        if fig16_report.alerts:
            assert fig16_report.alerts[0]["monitor"] in html

    def test_table_fallback_views_exist(self, html):
        assert html.count("<table") >= 2  # tiles + summary at minimum

    def test_title_names_the_run(self, html, fig16_report):
        assert f"BlitzCoin run report: {fig16_report.label}" in html

    def test_values_are_escaped(self):
        report = RunReport(
            kind="soc",
            label="<x>&amp",
            config={},
            summary={"makespan_us": 1.0},
        )
        html = render_dashboard(report)
        assert "<x>&amp" not in html
        assert "&lt;x&gt;" in html


class TestEmptyReport:
    def test_minimal_report_still_renders(self):
        report = RunReport(
            kind="convergence", label="bare", config={}, summary={"trials": 1}
        )
        html = render_dashboard(report)
        assert html.startswith("<!DOCTYPE html>")
        assert "Power vs budget" not in html  # section omitted, not broken
        assert "no tile grid" in html
        assert "every online monitor stayed" in html

    def test_no_unsubstituted_placeholders(self):
        report = RunReport(
            kind="convergence", label="bare", config={}, summary={"trials": 1}
        )
        assert not re.search(r"\{[a-z_]+\}", render_dashboard(report))
