"""Tests for the sustained-load experiment driver (reduced scale)."""

import pytest

from repro.experiments.sustained_load import (
    SustainedLoadResult,
    format_rows,
    keepup_sweep,
    run_sustained,
)


class TestRunSustained:
    def test_slow_churn_keeps_up(self):
        r = run_sustained(3, t_w_us=400.0, seed=1, horizon_us=1_000.0)
        assert isinstance(r, SustainedLoadResult)
        assert r.n_tiles == 9
        assert r.converged_fraction > 0.5
        assert r.keeps_up

    def test_frantic_churn_falls_behind(self):
        r = run_sustained(4, t_w_us=3.0, seed=1, horizon_us=150.0)
        assert r.converged_fraction < 0.5
        assert not r.keeps_up

    def test_change_counting(self):
        r = run_sustained(4, t_w_us=100.0, seed=2, horizon_us=500.0)
        assert r.n_changes > 0
        assert r.mean_interval_us > 0

    def test_deterministic_by_seed(self):
        a = run_sustained(4, t_w_us=100.0, seed=3, horizon_us=400.0)
        b = run_sustained(4, t_w_us=100.0, seed=3, horizon_us=400.0)
        assert a == b

    def test_default_horizon_scales_with_tw(self):
        r = run_sustained(3, t_w_us=100.0, seed=0)
        assert r.horizon_us >= 500.0


class TestSweep:
    def test_fraction_monotone_in_tw(self):
        results = keepup_sweep(3, [10.0, 300.0], seed=4)
        fractions = [r.converged_fraction for r in results]
        assert fractions[0] <= fractions[-1]

    def test_format_rows(self):
        results = keepup_sweep(3, [50.0], seed=0)
        rows = format_rows(results)
        assert len(rows) == 1
        assert "N=" in rows[0]
