"""Tests for seeded RNG management."""

import numpy as np
import pytest

from repro.sim.rng import SeedSequenceError, rng_for, spawn_rng


class TestSpawn:
    def test_same_seed_same_streams(self):
        a = spawn_rng(42, 3)
        b = spawn_rng(42, 3)
        for ga, gb in zip(a, b):
            assert ga.integers(0, 1000) == gb.integers(0, 1000)

    def test_different_seeds_differ(self):
        a = spawn_rng(1, 1)[0]
        b = spawn_rng(2, 1)[0]
        assert list(a.integers(0, 10**9, 8)) != list(b.integers(0, 10**9, 8))

    def test_spawned_streams_are_independent(self):
        a, b = spawn_rng(7, 2)
        assert list(a.integers(0, 10**9, 8)) != list(b.integers(0, 10**9, 8))

    def test_invalid_counts_rejected(self):
        with pytest.raises(SeedSequenceError):
            spawn_rng(1, 0)
        with pytest.raises(SeedSequenceError):
            spawn_rng(-1, 1)


class TestRngFor:
    def test_deterministic_by_tags(self):
        a = rng_for(5, 1, 2)
        b = rng_for(5, 1, 2)
        assert a.integers(0, 10**9) == b.integers(0, 10**9)

    def test_distinct_tags_distinct_streams(self):
        a = rng_for(5, 1, 2)
        b = rng_for(5, 2, 1)
        assert list(a.integers(0, 10**9, 8)) != list(b.integers(0, 10**9, 8))

    def test_negative_tags_rejected(self):
        with pytest.raises(SeedSequenceError):
            rng_for(5, -1)

    def test_returns_numpy_generator(self):
        assert isinstance(rng_for(0), np.random.Generator)
