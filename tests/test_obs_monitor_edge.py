"""Monitor alert edge cases the main detector tests skip past.

Three boundary behaviors matter to the fuzzer's alert oracle: alerts
stamped at simulation cycle 0 (a run can be born violating), two
different detectors firing on the *same* tile in the same run (the
alert list must keep both, deterministically ordered), and the
zero-alert case flowing into RunReport ``alert_counts`` with every
monitor present at count 0 (so a quiet run is distinguishable from an
unmonitored one).
"""

from repro.core.config import preferred_embodiment
from repro.core.runner import run_convergence_trial
from repro.obs.monitor import (
    BudgetOvershootMonitor,
    MonitorSet,
    ReconcileBacklogMonitor,
    StarvationMonitor,
    default_monitors,
)
from repro.report.run_report import convergence_report


def _apply(monitor, time, tile, delta, has):
    monitor.on_event(
        "apply", time, "engine", tile, {"delta": delta, "has": has}
    )


class TestAlertAtCycleZero:
    def test_overshoot_open_at_cycle_zero_is_stamped_zero(self):
        monitor = BudgetOvershootMonitor(100.0, grace_cycles=50)
        monitor.on_sample("soc.power_mw", 0, 150.0, 0)
        monitor.on_sample("soc.power_mw", 500, 10.0, 0)
        assert len(monitor.alerts) == 1
        assert monitor.alerts[0].cycle == 0
        assert monitor.alerts[0].data["duration_cycles"] == 500

    def test_starvation_from_cycle_zero_is_stamped_zero(self):
        monitor = StarvationMonitor(window_cycles=100)
        monitor.on_event("tile_start", 0, "pm", 3, {})
        _apply(monitor, 0, 3, -2, 0)  # born starved
        _apply(monitor, 300, 5, 1, 4)  # liveness proof elsewhere
        assert len(monitor.alerts) == 1
        assert monitor.alerts[0].cycle == 0
        assert monitor.alerts[0].tile == 3

    def test_backlog_crossed_at_cycle_zero_alerts_immediately(self):
        monitor = ReconcileBacklogMonitor(max_backlog=8)
        monitor.on_inc("engine.coins_lost", 0, 40, {})
        assert len(monitor.alerts) == 1
        assert monitor.alerts[0].cycle == 0
        assert monitor.alerts[0].data["backlog"] == 40

    def test_zero_duration_overshoot_respects_grace(self):
        """An excursion that opens and closes at the same cycle has
        duration 0 and must never beat a grace window."""
        monitor = BudgetOvershootMonitor(100.0, grace_cycles=0)
        monitor.on_sample("soc.power_mw", 0, 150.0, 0)
        monitor.on_sample("soc.power_mw", 0, 10.0, 0)
        monitor.flush(0)
        assert monitor.alerts == []


class TestSimultaneousAlertsOneTile:
    def _drive(self, monitors):
        """Tile 2 both starves and carries a sustained overshoot."""
        monitor_set = MonitorSet(monitors=monitors)
        monitor_set.event("tile_start", 0, cat="pm", track=2)
        monitor_set.sample("soc.power_mw", 5, 200.0, track=2)
        monitor_set.event(
            "apply", 10, cat="engine", track=2,
            args={"delta": -2, "has": 0},
        )
        # liveness applies elsewhere keep the starvation sweep running
        monitor_set.event(
            "apply", 600, cat="engine", track=5,
            args={"delta": 1, "has": 4},
        )
        monitor_set.sample("soc.power_mw", 700, 10.0, track=2)
        monitor_set.finish()
        return monitor_set

    def test_both_detectors_fire_on_the_same_tile(self):
        monitor_set = self._drive(
            [
                BudgetOvershootMonitor(100.0, grace_cycles=50),
                StarvationMonitor(window_cycles=100),
            ]
        )
        alerts = monitor_set.alerts()
        assert [a.monitor for a in alerts] == [
            "budget_overshoot",
            "starvation",
        ]
        assert all(a.tile == 2 for a in alerts)
        assert all(a.severity == "error" for a in alerts)
        assert monitor_set.alert_counts() == {
            "budget_overshoot": 1,
            "starvation": 1,
        }

    def test_same_cycle_alerts_order_by_monitor_name(self):
        """Two alerts stamped at the same cycle sort by monitor name —
        the tiebreak the report layer's determinism relies on."""
        overshoot = BudgetOvershootMonitor(100.0, grace_cycles=1)
        starvation = StarvationMonitor(window_cycles=100)
        monitor_set = MonitorSet(monitors=[starvation, overshoot])
        monitor_set.event("tile_start", 0, cat="pm", track=2)
        monitor_set.event(
            "apply", 0, cat="engine", track=2,
            args={"delta": -2, "has": 0},
        )
        monitor_set.sample("soc.power_mw", 0, 200.0, track=2)
        monitor_set.event(
            "apply", 500, cat="engine", track=5,
            args={"delta": 1, "has": 4},
        )
        monitor_set.sample("soc.power_mw", 500, 10.0, track=2)
        monitor_set.finish()
        alerts = monitor_set.alerts()
        assert len(alerts) == 2
        assert all(a.cycle == 0 for a in alerts)
        assert [a.monitor for a in alerts] == [
            "budget_overshoot",
            "starvation",
        ]


class TestZeroAlertRunReport:
    def test_quiet_monitor_set_reports_all_zero_counts(self):
        monitors = MonitorSet(monitors=default_monitors(100.0))
        trial = run_convergence_trial(
            3, preferred_embodiment(), seed=0, max_cycles=20_000
        )
        report = convergence_report(
            [trial], label="quiet", d=3, monitors=monitors
        )
        assert report.alerts == []
        assert report.alert_counts == {
            "budget_overshoot": 0,
            "starvation": 0,
            "coin_oscillation": 0,
            "convergence_stall": 0,
            "reconcile_backlog": 0,
        }

    def test_zero_counts_survive_the_dict_round_trip(self):
        monitors = MonitorSet(monitors=default_monitors())
        trial = run_convergence_trial(
            3, preferred_embodiment(), seed=1, max_cycles=20_000
        )
        report = convergence_report(
            [trial], label="quiet", d=3, monitors=monitors
        )
        doc = report.to_dict()
        assert doc["alerts"] == []
        assert set(doc["alert_counts"]) == {
            m.name for m in monitors.monitors
        }
        assert all(v == 0 for v in doc["alert_counts"].values())

    def test_no_monitors_means_empty_counts_not_zero_counts(self):
        """Without a MonitorSet the report cannot claim monitors ran:
        counts are absent entirely, not fabricated zeros."""
        trial = run_convergence_trial(
            3, preferred_embodiment(), seed=2, max_cycles=20_000
        )
        report = convergence_report([trial], label="bare", d=3)
        assert report.alerts == []
        assert report.alert_counts == {}
