"""CLI contract for ``blitzcoin-repro report`` and ``... diff``.

Error discipline first: every bad input — missing file, wrong schema,
malformed threshold JSON — exits rc 2 with a one-line ``error:``
diagnostic on stderr and never a traceback.  Then the regression gate:
self-diff is rc 0, a seeded regression is rc 3 (distinct from rc 2 so
CI can tell "worse" from "broken").
"""

import json

import pytest

from repro.cli import main
from repro.report.run_report import (
    REPORT_SCHEMA,
    RunReport,
    write_run_report,
)


def run_cli(*argv):
    return main(list(argv))


def _write(tmp_path, name, summary, *, alert_counts=None, kind="convergence"):
    report = RunReport(
        kind=kind,
        label=name,
        config={"d": 3},
        summary=summary,
        alert_counts=alert_counts or {},
    )
    path = tmp_path / f"{name}.json"
    write_run_report(report, path)
    return str(path)


BASE_SUMMARY = {"trials": 4, "convergence_rate": 1.0, "cycles": {"mean": 200.0}}


@pytest.fixture
def baseline(tmp_path):
    return _write(tmp_path, "baseline", BASE_SUMMARY)


class TestReportCommand:
    def test_convergence_report_writes_json_and_html(self, capsys, tmp_path):
        out = tmp_path / "r.json"
        html = tmp_path / "r.html"
        rc = run_cli(
            "report", "convergence", "--dim", "3", "--trials", "2",
            "--out", str(out), "--html", str(html),
        )
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "kind=convergence" in stdout and "alerts=" in stdout
        doc = json.loads(out.read_text())
        assert doc["schema"] == REPORT_SCHEMA
        assert html.read_text().startswith("<!DOCTYPE html>")

    def test_unwritable_destination_is_rc2(self, capsys, tmp_path):
        blocker = tmp_path / "flat"
        blocker.write_text("")
        rc = run_cli(
            "report", "convergence", "--dim", "3", "--trials", "1",
            "--out", str(blocker / "r.json"),
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "Traceback" not in err


class TestDiffCommand:
    def test_self_diff_rc0(self, capsys, baseline):
        rc = run_cli("diff", baseline, baseline)
        assert rc == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_rc3(self, capsys, tmp_path, baseline):
        worse = _write(
            tmp_path,
            "worse",
            {**BASE_SUMMARY, "cycles": {"mean": 300.0}},
            alert_counts={"starvation": 1},
        )
        rc = run_cli("diff", baseline, worse)
        assert rc == 3
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "! cycles.mean" in out

    def test_directory_resolves_to_report_json(self, capsys, tmp_path, baseline):
        spec_dir = tmp_path / "campaign-dir"
        spec_dir.mkdir()
        (spec_dir / "report.json").write_text(
            open(baseline).read()
        )
        assert run_cli("diff", baseline, str(spec_dir)) == 0

    def test_custom_thresholds_change_the_verdict(
        self, capsys, tmp_path, baseline
    ):
        worse = _write(
            tmp_path, "worse", {**BASE_SUMMARY, "cycles": {"mean": 300.0}}
        )
        lax = tmp_path / "lax.json"
        lax.write_text(json.dumps({"default": {"rel": 0.9}}))
        assert run_cli("diff", baseline, worse, "--thresholds", str(lax)) == 0
        capsys.readouterr()
        assert run_cli("diff", baseline, worse) == 3

    def test_only_changed_hides_ok_rows(self, capsys, baseline):
        rc = run_cli("diff", baseline, baseline, "--only-changed")
        assert rc == 0
        out = capsys.readouterr().out
        assert "cycles.mean" not in out


class TestDiffErrors:
    def _expect_rc2(self, capsys, *argv):
        assert run_cli(*argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err
        assert err.count("\n") == 1  # exactly one line

    def test_missing_baseline(self, capsys, tmp_path, baseline):
        self._expect_rc2(
            capsys, "diff", str(tmp_path / "absent.json"), baseline
        )

    def test_missing_candidate(self, capsys, tmp_path, baseline):
        self._expect_rc2(
            capsys, "diff", baseline, str(tmp_path / "absent.json")
        )

    def test_corrupt_report(self, capsys, tmp_path, baseline):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        self._expect_rc2(capsys, "diff", baseline, str(bad))

    def test_schema_mismatch(self, capsys, tmp_path, baseline):
        future = tmp_path / "future.json"
        future.write_text(json.dumps({"schema": 99, "kind": "convergence"}))
        self._expect_rc2(capsys, "diff", baseline, str(future))

    def test_kind_mismatch(self, capsys, tmp_path, baseline):
        soc = _write(
            tmp_path, "soc", {"makespan_us": 5.0}, kind="soc"
        )
        self._expect_rc2(capsys, "diff", baseline, soc)

    def test_bad_threshold_json(self, capsys, tmp_path, baseline):
        bad = tmp_path / "t.json"
        bad.write_text("{nope")
        self._expect_rc2(
            capsys, "diff", baseline, baseline, "--thresholds", str(bad)
        )

    def test_unknown_threshold_keys(self, capsys, tmp_path, baseline):
        bad = tmp_path / "t.json"
        bad.write_text(json.dumps({"default": {"relative": 0.5}}))
        self._expect_rc2(
            capsys, "diff", baseline, baseline, "--thresholds", str(bad)
        )

    def test_missing_thresholds_file(self, capsys, tmp_path, baseline):
        self._expect_rc2(
            capsys, "diff", baseline, baseline,
            "--thresholds", str(tmp_path / "absent.json"),
        )
