"""Enabling observability must never change simulation results.

This is the load-bearing guarantee of repro.obs (and the reason every
timestamp is a simulation cycle): sinks observe, they never schedule.
The tests compare full convergence runs bit-for-bit with the sink on
and off, with and without the runtime sanitizer stacked on top.
"""

import dataclasses

import pytest

from repro.core.config import preferred_embodiment
from repro.core.runner import run_convergence_trial
from repro.obs import observing
from repro.soc import PMKind, Soc, WorkloadExecutor, build_pm
from repro.soc.presets import soc_3x3
from repro.workloads.apps import pm_cluster_workload


def _trial(seed: int):
    return run_convergence_trial(
        4, preferred_embodiment(), seed=seed, threshold=0.5
    )


class TestConvergenceIdentity:
    @pytest.mark.parametrize("seed", [0, 3])
    def test_traced_trial_bit_identical(self, seed):
        base = _trial(seed)
        with observing():
            traced = _trial(seed)
        assert traced == base

    def test_traced_and_sanitized_trial_bit_identical(self):
        base = _trial(3)
        config = dataclasses.replace(preferred_embodiment(), sanitize=True)
        with observing() as session:
            traced = run_convergence_trial(4, config, seed=3, threshold=0.5)
        assert traced == base
        # The sanitizer's wrapper must not hide callback identities from
        # the profiler: sites still resolve to engine/noc qualnames.
        assert session.profile.events_total > 0
        assert all(
            "checked" not in site for site in session.profile.sites
        )

    def test_observation_actually_collected(self):
        with observing() as session:
            _trial(0)
        assert session.registry.value("engine.exchanges_initiated") > 0
        assert session.registry.value("noc.packets", kind="coin_status") > 0
        hops = session.registry.get("noc.hop_histogram")
        assert hops is not None and hops.count > 0
        assert any(s.cat == "engine" for s in session.trace.spans)
        assert any(s.cat == "noc" for s in session.trace.spans)


class TestSocRunIdentity:
    def _run(self):
        soc = Soc(soc_3x3())
        pm = build_pm(PMKind.BLITZCOIN, soc, 120.0)
        result = WorkloadExecutor(soc, pm_cluster_workload(3), pm).run()
        return result.makespan_cycles, dict(result.task_finish_cycles)

    def test_traced_soc_run_bit_identical(self):
        base = self._run()
        with observing() as session:
            traced = self._run()
        assert traced == base
        assert session.registry.value("exec.tasks_started") == 3
        assert session.registry.value("exec.tasks_finished") == 3
        assert session.registry.value("pm.activity_edges", edge="start") == 3
        assert session.registry.value("dvfs.ldo_transitions") >= 0
        assert any(s.cat == "task" for s in session.trace.spans)
