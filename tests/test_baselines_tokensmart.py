"""Tests for the TokenSmart ring baseline."""

import pytest

from repro.baselines.tokensmart import (
    TokenSmartConfig,
    TokenSmartSim,
    run_tokensmart_trial,
)
from repro.core.runner import homogeneous_scenario
from repro.noc.topology import MeshTopology


def make_sim(d=3, max_per_tile=8, initial=None, config=None):
    topo = MeshTopology(d, d)
    n = topo.n_tiles
    if initial is None:
        initial = [max_per_tile] * n
    return TokenSmartSim(
        topo,
        config or TokenSmartConfig(),
        [max_per_tile] * n,
        initial,
    )


class TestConfig:
    def test_defaults_valid(self):
        cfg = TokenSmartConfig()
        assert cfg.hop_cycles >= 1

    def test_invalid_timing_rejected(self):
        with pytest.raises(ValueError):
            TokenSmartConfig(hop_cycles=0)
        with pytest.raises(ValueError):
            TokenSmartConfig(starvation_passes=0)


class TestRingWalk:
    def test_fair_state_converges_immediately(self):
        sim = make_sim()
        assert sim.run_until_converged(10_000) == 0

    def test_concentrated_tokens_redistribute(self):
        initial = [0] * 9
        initial[0] = 54  # 0.75 utilization of 9*8
        sim = make_sim(initial=initial)
        cycles = sim.run_until_converged(500_000)
        assert cycles is not None
        sim.check_conservation()
        # Fair share is alpha*8 = 6 per tile.
        assert all(abs(h - 6) <= 2 for h in sim.has)

    def test_conservation_always_holds(self):
        initial = [0] * 9
        initial[4] = 54
        sim = make_sim(initial=initial)
        sim.run_until_converged(500_000)
        sim.check_conservation()

    def test_inactive_tiles_relinquish_to_pool(self):
        topo = MeshTopology(2, 2)
        cfg = TokenSmartConfig()
        sim = TokenSmartSim(topo, cfg, [0, 8, 8, 8], [12, 0, 0, 0])
        sim.run_until_converged(100_000)
        assert sim.has[0] == 0

    def test_visits_accumulate_time(self):
        initial = [0] * 9
        initial[0] = 54
        sim = make_sim(initial=initial)
        sim.run_until_converged(500_000)
        cfg = TokenSmartConfig()
        assert sim.now >= sim.visits * cfg.process_cycles


class TestModes:
    def test_starvation_triggers_fair_mode(self):
        # Pool smaller than greedy demand: greedy mode starves tiles.
        initial = [0] * 9
        initial[0] = 36  # 0.5 utilization
        sim = make_sim(initial=initial)
        sim.run_until_converged(2_000_000)
        assert sim.mode_switches > 0

    def test_trial_runner_reports(self):
        r = run_tokensmart_trial(4, seed=0, threshold=1.5)
        assert r.converged
        assert r.visits > 0

    def test_trial_deterministic(self):
        a = run_tokensmart_trial(4, seed=3, threshold=1.5)
        b = run_tokensmart_trial(4, seed=3, threshold=1.5)
        assert a == b


class TestScaling:
    def test_convergence_scales_superlinearly_with_n(self):
        """TS walks the whole ring, so cycles grow ~O(N) (Fig. 4)."""
        small = [
            run_tokensmart_trial(4, seed=s, threshold=1.5).cycles
            for s in range(3)
        ]
        large = [
            run_tokensmart_trial(12, seed=s, threshold=1.5).cycles
            for s in range(3)
        ]
        mean_small = sum(small) / len(small)
        mean_large = sum(large) / len(large)
        # N grows 9x; expect at least ~4x growth in cycles.
        assert mean_large > 4 * mean_small
