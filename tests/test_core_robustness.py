"""Robustness tests: the engine must stay live under packet loss.

The real NoC never drops packets, but a robust FSM must not rely on
that: a misrouted/corrupted message (or a powered-down partner) should
cost at most one abandoned exchange, never a wedged tile.
"""

import dataclasses

import pytest

from repro.core.config import plain_four_way, preferred_embodiment
from repro.noc.behavioral import BehavioralNoc
from repro.noc.packet import MessageType, Packet
from tests.conftest import build_engine_rig


class LossyNoc(BehavioralNoc):
    """Behavioral NoC that drops a deterministic subset of packets."""

    def __init__(self, sim, topology, *, drop_types, drop_every=7):
        super().__init__(sim, topology)
        self.drop_types = set(drop_types)
        self.drop_every = drop_every
        self.dropped = 0
        self._counter = 0

    def _transport(self, packet: Packet) -> None:
        if packet.msg_type in self.drop_types:
            self._counter += 1
            if self._counter % self.drop_every == 0:
                self.dropped += 1
                return  # swallowed by the fabric
        super()._transport(packet)


def build(drop_types, config=None, d=3, drop_every=7):
    n = d * d
    initial = [0] * n
    initial[0] = 8 * n
    return tuple(
        build_engine_rig(
            d,
            config=config
            or dataclasses.replace(
                preferred_embodiment(), exchange_timeout_cycles=512
            ),
            max_per_tile=8,
            initial=initial,
            noc_cls=LossyNoc,
            noc_kwargs={
                "drop_types": drop_types,
                "drop_every": drop_every,
            },
            seed=13,
            start=True,
        )
    )


class TestLostStatuses:
    def test_engine_stays_live_and_converges(self):
        sim, noc, engine = build({MessageType.COIN_STATUS})
        converged = engine.run_until_converged(500_000)
        assert noc.dropped > 0
        assert converged is not None
        # Lost statuses carry no coins: conservation is exact.
        engine.check_conservation()

    def test_timeouts_are_counted(self):
        sim, noc, engine = build({MessageType.COIN_STATUS}, drop_every=3)
        sim.run_for(100_000)
        assert engine.exchanges_timed_out > 0

    def test_no_tile_stays_busy_forever(self):
        sim, noc, engine = build({MessageType.COIN_STATUS}, drop_every=3)
        sim.run_for(50_000)
        persistent = None
        for _ in range(4):
            busy_now = {
                (t, f.pending_uid)
                for t, f in engine.fsm.items()
                if f.busy
            }
            persistent = busy_now if persistent is None else persistent & busy_now
            sim.run_for(2_000)
        assert not persistent


class TestLostUpdates:
    def test_engine_stays_live_with_stranded_coins_accounted(self):
        """A lost update strands its coins as permanently in-flight; the
        accounting still balances and the FSMs keep running."""
        sim, noc, engine = build({MessageType.COIN_UPDATE}, drop_every=11)
        sim.run_for(200_000)
        assert noc.dropped > 0
        engine.check_conservation()  # tiles + in-flight == pool, always
        assert engine.exchanges_started > 100  # nothing wedged


class TestFourWayLoss:
    def test_lost_requests_do_not_wedge_participants(self):
        config = dataclasses.replace(
            plain_four_way(), exchange_timeout_cycles=512
        )
        sim, noc, engine = build(
            {MessageType.COIN_REQUEST}, config=config, drop_every=4
        )
        sim.run_for(100_000)
        assert noc.dropped > 0
        # Locks must clear: sample twice and require no persistent lock.
        persistent = None
        for _ in range(4):
            locked = {
                (t, f.lock_uid)
                for t, f in engine.fsm.items()
                if f.locked
            }
            persistent = locked if persistent is None else persistent & locked
            sim.run_for(2_000)
        assert not persistent
        engine.check_conservation()

    def test_lost_fourway_statuses_handled(self):
        config = dataclasses.replace(
            plain_four_way(), exchange_timeout_cycles=512
        )
        sim, noc, engine = build(
            {MessageType.COIN_STATUS}, config=config, drop_every=6
        )
        sim.run_for(100_000)
        assert engine.exchanges_timed_out > 0
        engine.check_conservation()


class TestWatchdogDisabled:
    def test_none_disables_the_watchdog(self):
        config = dataclasses.replace(
            preferred_embodiment(), exchange_timeout_cycles=None
        )
        sim, noc, engine = build(
            {MessageType.COIN_STATUS}, config=config, drop_every=2
        )
        sim.run_for(60_000)
        assert engine.exchanges_timed_out == 0
        # Without the watchdog, dropped statuses wedge initiators: some
        # tiles stay busy forever — the failure mode the watchdog fixes.
        assert any(f.busy for f in engine.fsm.values())
