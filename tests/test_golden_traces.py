"""Golden-trace regression tests for the figure experiments.

These pin the *exact* seeded outcomes (convergence cycles and coin
packets) of the Fig. 3 / Fig. 4 small configurations.  Any change to
the engine, NoC, RNG streams, or event ordering that shifts a single
cycle shows up here as a diff against ``tests/fixtures/golden/*.json``
— bit-level determinism is a core claim of the reproduction (and the
precondition for the fault layer's "null plan changes nothing" test).

Intentional behavior changes regenerate the fixtures with::

    pytest tests/test_golden_traces.py --update-golden
"""

import json
from pathlib import Path

import pytest

from repro.baselines.tokensmart import run_tokensmart_trial
from repro.core.config import (
    plain_four_way,
    plain_one_way,
    preferred_embodiment,
)
from repro.core.runner import run_convergence_trial

GOLDEN_DIR = Path(__file__).parent / "fixtures" / "golden"
THRESHOLD = 1.5
TRIALS = 3


def _fig03_case(technique: str, d: int):
    """Fig. 3 small config: seeded 1-way / 4-way trials at one d."""
    config = plain_one_way() if technique == "1-way" else plain_four_way()
    trials = []
    for k in range(TRIALS):
        seed = 3 * 1000 + k  # fig03's base_seed=3 convention
        r = run_convergence_trial(d, config, seed=seed, threshold=THRESHOLD)
        trials.append(
            {
                "seed": seed,
                "converged": r.converged,
                "cycles": r.cycles,
                "packets": r.packets,
                "exchanges": r.exchanges,
            }
        )
    return {"experiment": "fig03", "technique": technique, "d": d,
            "threshold": THRESHOLD, "trials": trials}


def _fig04_case(d: int):
    """Fig. 4 small config: BC (preferred) vs TokenSmart at one d."""
    config = preferred_embodiment()
    bc, ts = [], []
    for k in range(TRIALS):
        seed = 4 * 1000 + k  # fig04's base_seed=4 convention
        r = run_convergence_trial(d, config, seed=seed, threshold=THRESHOLD)
        bc.append(
            {
                "seed": seed,
                "converged": r.converged,
                "cycles": r.cycles,
                "packets": r.packets,
            }
        )
        t = run_tokensmart_trial(d, seed, threshold=THRESHOLD)
        ts.append(
            {"seed": seed, "converged": t.converged, "cycles": t.cycles}
        )
    return {"experiment": "fig04", "d": d, "threshold": THRESHOLD,
            "BC": bc, "TS": ts}


CASES = {
    "fig03_1way_d3": lambda: _fig03_case("1-way", 3),
    "fig03_1way_d4": lambda: _fig03_case("1-way", 4),
    "fig03_4way_d3": lambda: _fig03_case("4-way", 3),
    "fig03_4way_d4": lambda: _fig03_case("4-way", 4),
    "fig04_d4": lambda: _fig04_case(4),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_trace(name, update_golden):
    path = GOLDEN_DIR / f"{name}.json"
    actual = CASES[name]()
    if update_golden:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"missing golden fixture {path}; generate it with "
        f"pytest {__file__} --update-golden"
    )
    expected = json.loads(path.read_text())
    assert actual == expected, (
        f"seed-exact trace for {name} changed; if intentional, rerun "
        f"with --update-golden and review the fixture diff"
    )


def test_golden_fixtures_all_tracked():
    """Every golden fixture on disk corresponds to a known case."""
    on_disk = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    assert on_disk == set(CASES)
