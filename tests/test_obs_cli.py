"""Tests for the trace subcommand and the --obs/--trace-out flags."""

import json

from repro.cli import build_parser, main
from repro.obs import validate_chrome_trace


class TestParser:
    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "convergence"])
        assert args.experiment == "convergence"
        assert args.dim == 6
        assert args.out == "obs_trace"

    def test_obs_flags_on_existing_commands(self):
        args = build_parser().parse_args(
            ["convergence", "--obs", "--trace-out", "somewhere"]
        )
        assert args.obs
        assert args.trace_out == "somewhere"
        args = build_parser().parse_args(["soc-run", "--obs"])
        assert args.obs
        assert args.trace_out is None


class TestTraceCommand:
    def test_trace_convergence_exports_all_formats(self, tmp_path, capsys):
        rc = main(
            ["trace", "convergence", "--dim", "4",
             "--out", str(tmp_path / "t")]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "observability summary" in out
        assert "callback site" in out  # profiler table printed
        doc = json.loads((tmp_path / "t" / "trace.json").read_text())
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["time_unit"] == "noc-cycles"
        lines = (tmp_path / "t" / "events.jsonl").read_text().splitlines()
        assert json.loads(lines[0])["type"] == "meta"
        assert "summary" in (tmp_path / "t" / "summary.txt").read_text()

    def test_trace_convergence_epochs_per_trial(self, tmp_path, capsys):
        rc = main(
            ["trace", "convergence", "--dim", "4", "--trials", "2",
             "--out", str(tmp_path / "t")]
        )
        assert rc == 0
        doc = json.loads((tmp_path / "t" / "trace.json").read_text())
        processes = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert any(p.startswith("trial0:") for p in processes)
        assert any(p.startswith("trial1:") for p in processes)

    def test_trace_soc_includes_packet_stats(self, tmp_path, capsys):
        rc = main(
            ["trace", "soc", "--soc", "3x3", "--workload", "pm3",
             "--out", str(tmp_path / "t")]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "noc.stats.injected" in out
        assert "exec.tasks_started" in out


class TestObsFlags:
    def test_convergence_obs_prints_summary(self, capsys):
        rc = main(
            ["convergence", "--dim", "4", "--trials", "1", "--obs"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "observability summary" in out
        assert "engine.exchanges_initiated" in out

    def test_convergence_trace_out_writes_files(self, tmp_path, capsys):
        rc = main(
            ["convergence", "--dim", "4", "--trials", "1",
             "--trace-out", str(tmp_path / "out")]
        )
        assert rc == 0
        doc = json.loads((tmp_path / "out" / "trace.json").read_text())
        assert validate_chrome_trace(doc) == []
        # no --obs: the summary is written, not printed
        assert "observability summary" not in capsys.readouterr().out

    def test_soc_run_obs_summary(self, capsys):
        rc = main(
            ["soc-run", "--soc", "3x3", "--workload", "pm3",
             "--scheme", "BC", "--obs"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "pm.activity_edges" in out

    def test_without_flags_nothing_observed(self, capsys):
        rc = main(["convergence", "--dim", "4", "--trials", "1"])
        assert rc == 0
        assert "observability summary" not in capsys.readouterr().out
