"""Tests for the price-theory model and the static allocator."""

import pytest

from repro.baselines.pricetheory import (
    PriceTheoryModel,
    market_allocation,
    pm_overhead_fraction,
)
from repro.baselines.static import StaticAllocator


class TestPriceTheoryModel:
    def test_matches_published_midpoint(self):
        model = PriceTheoryModel(hardware_scaled=False)
        mid = (6.62e-3 + 11.4e-3) / 2
        assert model.response_time_s(256) == pytest.approx(mid, rel=1e-6)

    def test_hardware_scaling_reduces_response(self):
        sw = PriceTheoryModel(hardware_scaled=False)
        hw = PriceTheoryModel(hardware_scaled=True)
        assert hw.response_time_s(256) == pytest.approx(
            sw.response_time_s(256) / 10**2.5
        )

    def test_sublinear_scaling(self):
        model = PriceTheoryModel()
        ratio = model.response_time_s(512) / model.response_time_s(256)
        assert ratio < 2.0  # sub-linear in N

    def test_n_max_consistency(self):
        model = PriceTheoryModel()
        t_w = 10e-3
        n = model.n_max(t_w)
        assert model.response_time_s(n) == pytest.approx(t_w / n, rel=1e-6)

    def test_invalid_inputs_rejected(self):
        model = PriceTheoryModel()
        with pytest.raises(ValueError):
            model.response_time_s(0)
        with pytest.raises(ValueError):
            model.n_max(0.0)

    def test_overhead_fraction(self):
        model = PriceTheoryModel()
        frac = pm_overhead_fraction(model, 100, 10e-3)
        assert frac > 0


class TestMarketAllocation:
    def test_underdemanded_budget_satisfies_everyone(self):
        alloc, rounds = market_allocation({1: 10.0, 2: 20.0}, 100.0)
        assert alloc == {1: pytest.approx(10.0), 2: pytest.approx(20.0)}
        assert rounds <= 1

    def test_overdemanded_budget_clears_market(self):
        demands = {1: 100.0, 2: 100.0, 3: 100.0}
        alloc, rounds = market_allocation(demands, 120.0)
        assert sum(alloc.values()) <= 120.0 * (1 + 1e-6)
        assert rounds > 1

    def test_equal_demands_get_equal_shares(self):
        alloc, _ = market_allocation({1: 100.0, 2: 100.0}, 100.0)
        assert alloc[1] == pytest.approx(alloc[2])

    def test_idle_agents_get_nothing(self):
        alloc, _ = market_allocation({1: 100.0, 2: 0.0}, 50.0)
        assert alloc[2] == 0.0

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            market_allocation({1: 1.0}, 0.0)


class TestStaticAllocator:
    def test_applies_frozen_targets_once(self):
        applied = {}
        alloc = StaticAllocator(
            [1, 2],
            {1: 100.0, 2: 50.0},
            75.0,
            apply_target=lambda t, p: applied.__setitem__(t, p),
        )
        alloc.start()
        assert applied[1] == pytest.approx(50.0)
        assert applied[2] == pytest.approx(25.0)

    def test_activity_changes_ignored(self):
        applied = {}
        alloc = StaticAllocator(
            [1],
            {1: 100.0},
            50.0,
            apply_target=lambda t, p: applied.__setitem__(t, p),
        )
        alloc.start()
        before = dict(applied)
        alloc.on_activity_change(1)
        assert applied == before

    def test_double_start_rejected(self):
        alloc = StaticAllocator([1], {1: 10.0}, 5.0, lambda t, p: None)
        alloc.start()
        with pytest.raises(RuntimeError):
            alloc.start()

    def test_no_response_times(self):
        alloc = StaticAllocator([1], {1: 10.0}, 5.0, lambda t, p: None)
        assert alloc.mean_response_cycles == 0.0
