"""The ``blitzcoin-repro bench`` command group end to end."""

import json

import pytest

from repro.campaign.spec import canonical_json
from repro.cli import main
from repro.perf.artifact import (
    load_bench_artifact,
    strip_timing,
    write_bench_artifact,
)

#: The fastest core benchmark — CLI behavior tests don't need the suite.
QUICK = ["--bench", "obs.overhead_off", "--reps", "1", "--warmup", "0"]


def _run_quick(tmp_path, name="bench.json"):
    out = tmp_path / name
    rc = main(
        ["bench", "run", "--suite", "core", *QUICK,
         "--no-profile", "-q", "--out", str(out)]
    )
    assert rc == 0
    return out


class TestBenchRun:
    def test_writes_valid_artifact(self, tmp_path, capsys):
        out = _run_quick(tmp_path)
        doc = load_bench_artifact(out)
        assert doc["suite"] == "core"
        assert doc["benchmarks"][0]["name"] == "obs.overhead_off"
        assert f"wrote {out}" in capsys.readouterr().out

    def test_identity_bytes_stable_across_two_runs(self, tmp_path):
        a = _run_quick(tmp_path, "a.json")
        b = _run_quick(tmp_path, "b.json")
        ida = canonical_json(strip_timing(load_bench_artifact(a)))
        idb = canonical_json(strip_timing(load_bench_artifact(b)))
        assert ida == idb

    def test_unknown_suite_is_rc2(self, tmp_path, capsys):
        rc = main(["bench", "run", "--suite", "nope", "-q",
                   "--out", str(tmp_path / "x.json")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_bench_is_rc2(self, tmp_path, capsys):
        rc = main(["bench", "run", "--bench", "nope", "-q",
                   "--out", str(tmp_path / "x.json")])
        assert rc == 2
        assert "unknown benchmark" in capsys.readouterr().err


class TestBenchCompare:
    def test_self_compare_rc0(self, tmp_path, capsys):
        out = _run_quick(tmp_path)
        rc = main(["bench", "compare", str(out), str(out)])
        assert rc == 0
        assert "no regressions" in capsys.readouterr().out

    def test_injected_slowdown_rc3(self, tmp_path, capsys):
        out = _run_quick(tmp_path)
        doc = load_bench_artifact(out)
        timing = doc["benchmarks"][0]["timing"]
        timing["per_rep_s"] = [v * 3 for v in timing["per_rep_s"]]
        timing["wall_s"] = {
            k: v * 3 for k, v in timing["wall_s"].items()
        }
        slow = tmp_path / "slow.json"
        write_bench_artifact(doc, slow)
        rc = main(["bench", "compare", str(out), str(slow)])
        assert rc == 3
        assert "REGRESSED" in capsys.readouterr().out

    def test_corrupt_artifact_one_line_rc2(self, tmp_path, capsys):
        out = _run_quick(tmp_path)
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{definitely not json")
        rc = main(["bench", "compare", str(corrupt), str(out)])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1

    def test_missing_artifact_rc2(self, tmp_path, capsys):
        out = _run_quick(tmp_path)
        rc = main(
            ["bench", "compare", str(tmp_path / "absent.json"), str(out)]
        )
        assert rc == 2
        assert "not found" in capsys.readouterr().err

    def test_wall_rel_flag_tightens_gate(self, tmp_path):
        out = _run_quick(tmp_path)
        doc = load_bench_artifact(out)
        timing = doc["benchmarks"][0]["timing"]
        timing["per_rep_s"] = [v * 1.3 for v in timing["per_rep_s"]]
        timing["wall_s"] = {
            k: v * 1.3 for k, v in timing["wall_s"].items()
        }
        mild = tmp_path / "mild.json"
        write_bench_artifact(doc, mild)
        # +30% passes the default 50% tolerance...
        assert main(["bench", "compare", str(out), str(mild)]) == 0
        # ...and trips a 10% tolerance with no absolute floor.
        assert main(
            ["bench", "compare", str(out), str(mild),
             "--wall-rel", "0.1", "--wall-abs", "0"]
        ) == 3


class TestBenchListAndProfile:
    def test_list_names_core_suite(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert "engine.convergence" in out
        assert "suites=core" in out

    def test_profile_prints_phases_and_writes_trace(self, tmp_path, capsys):
        trace = tmp_path / "phase.json"
        rc = main(
            ["bench", "profile", "engine.convergence",
             "--trace-out", str(trace)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "phase profile:" in out
        assert "engine" in out
        from repro.obs.export import validate_chrome_trace

        assert validate_chrome_trace(json.loads(trace.read_text())) == []

    def test_profile_refuses_unprofileable(self, capsys):
        rc = main(["bench", "profile", "obs.overhead_on"])
        assert rc == 2
        assert "not profileable" in capsys.readouterr().err

    def test_profile_unknown_name_rc2(self, capsys):
        assert main(["bench", "profile", "nope"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err
