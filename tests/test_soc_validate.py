"""Tests for the run validator."""

import pytest

from repro.soc.executor import WorkloadExecutor
from repro.soc.pm import PMKind, build_pm
from repro.soc.presets import soc_3x3
from repro.soc.soc import Soc
from repro.soc.validate import RunValidator, Violation
from repro.workloads.apps import autonomous_vehicle_parallel


def run_validated(kind, budget=120.0, **validator_kwargs):
    soc = Soc(soc_3x3())
    pm = build_pm(kind, soc, budget)
    validator = RunValidator(soc, pm, budget, **validator_kwargs)
    executor = WorkloadExecutor(soc, autonomous_vehicle_parallel(), pm)
    validator.start()
    result = executor.run()
    return result, validator


class TestCleanRuns:
    @pytest.mark.parametrize(
        "kind", [PMKind.BLITZCOIN, PMKind.ROUND_ROBIN, PMKind.STATIC]
    )
    def test_healthy_schemes_validate_clean(self, kind):
        result, validator = run_validated(kind)
        assert validator.samples > 100
        assert validator.clean, validator.report()

    def test_report_format(self):
        _, validator = run_validated(PMKind.BLITZCOIN)
        assert "validation clean" in validator.report()


class TestViolationDetection:
    def test_cap_violation_detected_with_zero_slack_tiny_budget(self):
        """A validator told the budget is lower than the PM's actual
        target must flag cap violations — proving the check bites."""
        soc = Soc(soc_3x3())
        pm = build_pm(PMKind.BLITZCOIN, soc, 120.0)
        validator = RunValidator(soc, pm, budget_mw=50.0, cap_slack=0.0)
        executor = WorkloadExecutor(
            soc, autonomous_vehicle_parallel(), pm
        )
        validator.start()
        executor.run()
        assert not validator.clean
        assert any(v.kind == "power-cap" for v in validator.violations)
        assert "FAILED" in validator.report()

    def test_strict_mode_raises(self):
        soc = Soc(soc_3x3())
        pm = build_pm(PMKind.BLITZCOIN, soc, 120.0)
        validator = RunValidator(
            soc, pm, budget_mw=50.0, cap_slack=0.0, strict=True
        )
        executor = WorkloadExecutor(
            soc, autonomous_vehicle_parallel(), pm
        )
        validator.start()
        with pytest.raises(AssertionError):
            executor.run()

    def test_violation_records_cycle_and_kind(self):
        v = Violation(cycle=42, kind="power-cap", detail="x")
        assert v.cycle == 42

    def test_invalid_sample_period_rejected(self):
        soc = Soc(soc_3x3())
        pm = build_pm(PMKind.STATIC, soc, 120.0)
        validator = RunValidator(soc, pm, 120.0, sample_cycles=0)
        with pytest.raises(ValueError):
            validator.start()

    def test_double_start_rejected(self):
        soc = Soc(soc_3x3())
        pm = build_pm(PMKind.STATIC, soc, 120.0)
        validator = RunValidator(soc, pm, 120.0)
        validator.start()
        with pytest.raises(RuntimeError):
            validator.start()
