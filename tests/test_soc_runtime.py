"""Tests for the live SoC object and the workload executor."""

import pytest

from repro.soc.executor import ExecutorError, WorkloadExecutor
from repro.soc.pm import PMKind, StaticPM, build_pm
from repro.soc.soc import SocError
from repro.workloads.dag import Task, TaskGraph
from repro.workloads.scenarios import build_parallel, chain
from tests.conftest import build_soc


def small_graph():
    return build_parallel([("f", "FFT", 50_000), ("v", "Viterbi", 40_000)])


class TestSoc:
    def test_actuators_created_for_accelerators(self, soc3):
        soc = soc3
        assert set(soc.actuators) == set(soc.config.accelerators())

    def test_set_active_records_power_step(self, soc3):
        soc = soc3
        tid = soc.config.managed_accelerators()[0]
        soc.set_active(tid, True)
        assert soc.recorder.get(f"active/{tid}") is not None

    def test_set_active_on_non_accelerator_rejected(self, soc3):
        soc = soc3
        with pytest.raises(SocError):
            soc.set_active(soc.config.cpu_tile(), True)

    def test_unknown_noc_fidelity_rejected(self):
        with pytest.raises(SocError):
            build_soc("3x3", noc_fidelity="rtl")

    def test_cycle_noc_fidelity_available(self):
        soc = build_soc("3x3", noc_fidelity="cycle")
        assert soc.noc is not None

    def test_p_max_by_tile(self, soc3):
        soc = soc3
        p = soc.p_max_by_tile()
        assert len(p) == 6
        assert all(v > 0 for v in p.values())

    def test_managed_power_sums_tiles(self, soc3):
        soc = soc3
        idle_total = soc.managed_power_mw()
        assert idle_total > 0  # idle floors
        tid = soc.config.managed_accelerators()[0]
        soc.set_active(tid, True)
        soc.set_frequency_target(tid, 400e6)
        soc.sim.run_for(5_000)
        assert soc.managed_power_mw() > idle_total


class TestExecutorBinding:
    def test_tasks_bound_to_matching_class(self, soc3):
        soc = soc3
        pm = StaticPM(soc, 120.0)
        ex = WorkloadExecutor(soc, small_graph(), pm)
        assert soc.config.class_of(ex.binding["f"]) == "FFT"
        assert soc.config.class_of(ex.binding["v"]) == "Viterbi"

    def test_round_robin_across_same_class_tiles(self, soc3):
        soc = soc3
        pm = StaticPM(soc, 120.0)
        g = build_parallel(
            [("f1", "FFT", 10_000), ("f2", "FFT", 10_000), ("f3", "FFT", 10_000)]
        )
        ex = WorkloadExecutor(soc, g, pm)
        assert len(set(ex.binding.values())) == 3

    def test_unmappable_class_rejected(self, soc3):
        soc = soc3
        pm = StaticPM(soc, 120.0)
        g = build_parallel([("g", "GEMM", 10_000)])
        with pytest.raises(ExecutorError):
            WorkloadExecutor(soc, g, pm)

    def test_tile_hint_respected(self, soc3):
        soc = soc3
        pm = StaticPM(soc, 120.0)
        fft_tiles = soc.config.tiles_of_class("FFT")
        g = TaskGraph([Task("f", "FFT", 10_000, tile_hint=fft_tiles[-1])])
        ex = WorkloadExecutor(soc, g, pm)
        assert ex.binding["f"] == fft_tiles[-1]

    def test_bad_tile_hint_rejected(self, soc3):
        soc = soc3
        pm = StaticPM(soc, 120.0)
        g = TaskGraph([Task("f", "FFT", 10_000, tile_hint=99)])
        with pytest.raises(ExecutorError):
            WorkloadExecutor(soc, g, pm)


class TestExecution:
    def test_parallel_graph_completes(self, soc3):
        soc = soc3
        pm = StaticPM(soc, 120.0)
        result = WorkloadExecutor(soc, small_graph(), pm).run()
        assert set(result.task_finish_cycles) == {"f", "v"}
        assert result.makespan_cycles > 0

    def test_dependencies_serialize_execution(self, soc3):
        soc = soc3
        pm = StaticPM(soc, 120.0)
        g = chain([("a", "FFT", 50_000), ("b", "Viterbi", 50_000)])
        result = WorkloadExecutor(soc, g, pm).run()
        assert (
            result.task_start_cycles["b"] >= result.task_finish_cycles["a"]
        )

    def test_queued_tasks_share_a_tile(self, soc3):
        soc = soc3
        pm = StaticPM(soc, 120.0)
        g = build_parallel(
            [(f"n{k}", "NVDLA", 20_000) for k in range(3)]  # 1 NVDLA tile
        )
        result = WorkloadExecutor(soc, g, pm).run()
        finishes = sorted(result.task_finish_cycles.values())
        assert finishes[0] < finishes[1] < finishes[2]

    def test_timeout_reports_stuck_tasks(self, soc3):
        soc = soc3
        pm = StaticPM(soc, 120.0)
        ex = WorkloadExecutor(soc, small_graph(), pm)
        with pytest.raises(ExecutorError) as err:
            ex.run(max_cycles=10)
        assert "stuck" in str(err.value)

    def test_makespan_shrinks_with_budget(self):
        makespans = {}
        for budget in (60.0, 120.0):
            soc = build_soc("3x3")
            pm = build_pm(PMKind.BLITZCOIN, soc, budget)
            g = build_parallel(
                [("f", "FFT", 100_000), ("v", "Viterbi", 100_000)]
            )
            makespans[budget] = WorkloadExecutor(soc, g, pm).run().makespan_cycles
        assert makespans[120.0] < makespans[60.0]

    def test_work_conservation_against_frequency_trace(self):
        """A task's finish time must satisfy integral(f dt) = work."""
        soc = build_soc("3x3")
        pm = StaticPM(soc, 120.0)
        g = build_parallel([("f", "FFT", 80_000)])
        result = WorkloadExecutor(soc, g, pm).run()
        tile = [t for t in soc.config.tiles_of_class("FFT")][0]
        trace = soc.recorder.get(f"freq/{tile}")
        start = result.task_start_cycles["f"]
        finish = result.task_finish_cycles["f"]
        from repro.sim import NOC_FREQUENCY_HZ

        executed = trace.integral(start, finish) / NOC_FREQUENCY_HZ
        assert executed == pytest.approx(80_000, rel=0.02)


class TestRunResult:
    def test_power_series_shape(self, soc3):
        soc = soc3
        pm = StaticPM(soc, 120.0)
        result = WorkloadExecutor(soc, small_graph(), pm).run()
        times, power = result.power_series(50)
        assert len(times) == len(power) == 50
        assert power.max() > 0

    def test_energy_positive(self, soc3):
        soc = soc3
        pm = StaticPM(soc, 120.0)
        result = WorkloadExecutor(soc, small_graph(), pm).run()
        assert result.energy_mj() > 0

    def test_budget_violation_zero_for_static(self, soc3):
        soc = soc3
        pm = StaticPM(soc, 120.0)
        result = WorkloadExecutor(soc, small_graph(), pm).run()
        assert result.budget_violation_mw() == 0.0
