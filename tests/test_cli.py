"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_soc_run_defaults(self):
        args = build_parser().parse_args(["soc-run"])
        assert args.soc == "3x3"
        assert args.scheme == "BC"

    def test_invalid_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["soc-run", "--scheme", "magic"])


class TestCommands:
    def test_soc_run_prints_summary(self, capsys):
        rc = main(
            ["soc-run", "--soc", "3x3", "--workload", "av-par",
             "--scheme", "static"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "peak power" in out

    def test_soc_run_custom_budget(self, capsys):
        rc = main(
            ["soc-run", "--scheme", "static", "--budget", "90"]
        )
        assert rc == 0
        assert "budget=90" in capsys.readouterr().out

    def test_convergence_trials(self, capsys):
        rc = main(
            ["convergence", "--dim", "4", "--trials", "2",
             "--variant", "1way"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean:" in out
        assert "N=16" in out

    def test_figure_by_exact_name(self, capsys):
        rc = main(["figure", "fig01_scalability"])
        assert rc == 0
        assert "N_max" in capsys.readouterr().out

    def test_figure_by_prefix(self, capsys):
        rc = main(["figure", "fig13"])
        assert rc == 0
        assert "peak-power spread" in capsys.readouterr().out

    def test_unknown_figure_errors(self, capsys):
        rc = main(["figure", "fig99"])
        assert rc == 2
        assert "unknown figure" in capsys.readouterr().err
