"""Randomized stress tests: engine invariants under arbitrary activity.

These model a live SoC: tiles start and stop at random times while the
exchange runs.  Whatever the interleaving, coins must be conserved, the
protocol must stay live, and the system must converge once activity
stops changing.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import preferred_embodiment
from repro.sim.rng import rng_for
from tests.conftest import build_engine_rig


def build_engine(d, pool_per_tile=8):
    rig = build_engine_rig(
        d,
        config=preferred_embodiment(),
        max_per_tile=pool_per_tile,
        rng=rng_for(99, d),
        start=True,
    )
    return rig.sim, rig.engine


@given(
    st.integers(3, 5),
    st.lists(
        st.tuples(
            st.integers(0, 24),  # tile (mod n)
            st.integers(0, 32),  # new max
            st.integers(50, 2_000),  # cycles to run afterwards
        ),
        min_size=1,
        max_size=12,
    ),
)
@settings(max_examples=25, deadline=None)
def test_conservation_under_random_activity(d, ops):
    sim, engine = build_engine(d)
    n = d * d
    for tile, new_max, run_cycles in ops:
        engine.set_max(tile % n, new_max)
        sim.run_for(run_cycles)
        engine.check_conservation()


@given(
    st.integers(3, 4),
    st.lists(st.integers(0, 15), min_size=1, max_size=6),
)
@settings(max_examples=15, deadline=None)
def test_convergence_after_activity_settles(d, idle_tiles):
    """Once max values stop changing, the engine reaches the new
    equilibrium (provided someone is still active)."""
    sim, engine = build_engine(d)
    n = d * d
    sim.run_for(500)
    idled = {t % n for t in idle_tiles}
    if len(idled) >= n:  # keep at least one active tile
        idled.pop()
    for t in idled:
        engine.set_max(t, 0)
    converged = engine.run_until_converged(500_000)
    assert converged is not None
    engine.check_conservation()
    # Convergence is a mean-error criterion; give the stragglers time to
    # drain fully (eager relinquish keeps pairing until they are empty).
    sim.run_for(150_000)
    for t in idled:
        assert engine.coins(t).has <= 1


def test_rapid_toggle_single_tile():
    """A tile flapping active/idle every few hundred cycles must not
    break conservation or strand coins."""
    sim, engine = build_engine(4)
    for k in range(30):
        engine.set_max(5, 0 if k % 2 else 16)
        sim.run_for(300)
        engine.check_conservation()
    engine.set_max(5, 16)
    assert engine.run_until_converged(300_000) is not None


def test_all_tiles_idle_parks_coins_without_divergence():
    sim, engine = build_engine(3)
    for t in range(9):
        engine.set_max(t, 0)
    sim.run_for(50_000)
    engine.check_conservation()
    total = sum(engine.coins(t).has for t in range(9))
    assert total == engine.pool


def test_negative_transients_never_persist():
    """Concurrent pulls may drive a tile negative (the hardware's sign
    bit); once traffic settles every count is non-negative."""
    sim, engine = build_engine(5)
    rng = rng_for(5, 5)
    for k in range(10):
        tile = int(rng.integers(0, 25))
        engine.set_max(tile, int(rng.integers(0, 64)))
        sim.run_for(int(rng.integers(20, 200)))
    engine.run_until_converged(500_000)
    sim.run_for(20_000)
    for t in range(25):
        assert engine.coins(t).has >= 0
