"""Shared fixtures for the BlitzCoin reproduction test suite."""

import pytest

from repro.noc.behavioral import BehavioralNoc
from repro.noc.topology import MeshTopology
from repro.sim.kernel import Simulator


@pytest.fixture
def sim():
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def mesh_3x3():
    return MeshTopology(3, 3)


@pytest.fixture
def mesh_4x4():
    return MeshTopology(4, 4)


@pytest.fixture
def noc_3x3(sim, mesh_3x3):
    return BehavioralNoc(sim, mesh_3x3)
