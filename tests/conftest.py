"""Shared fixtures and rig factories for the BlitzCoin test suite.

The engine/SoC builders that used to be copy-pasted across the
``test_core_engine*`` / ``test_soc_*`` modules live here once,
parameterized by grid size, seed, config, and NoC class.  Test modules
import them directly (``from tests.conftest import build_engine_rig``)
so they also work inside Hypothesis ``@given`` bodies, where
function-scoped fixtures are off limits.
"""

import signal
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Union

import pytest

from repro.core.config import BlitzCoinConfig, plain_one_way
from repro.core.engine import CoinExchangeEngine
from repro.noc.behavioral import BehavioralNoc
from repro.noc.topology import MeshTopology
from repro.sim.kernel import Simulator
from repro.sim.rng import rng_for
from repro.soc.presets import soc_3x3, soc_4x4, soc_6x6_chip
from repro.soc.soc import Soc

SOC_PRESETS: Dict[str, Callable] = {
    "3x3": soc_3x3,
    "4x4": soc_4x4,
    "6x6": soc_6x6_chip,
}


@dataclass
class EngineRig:
    """A built (and optionally started) coin-exchange test bench.

    Iterable as ``(sim, noc, engine)`` so call sites can unpack just
    what they need.
    """

    sim: Simulator
    noc: BehavioralNoc
    engine: CoinExchangeEngine
    topo: MeshTopology

    def __iter__(self):
        return iter((self.sim, self.noc, self.engine))


def build_engine_rig(
    d: int = 3,
    *,
    config: Optional[BlitzCoinConfig] = None,
    max_per_tile: Union[int, Sequence[int]] = 8,
    initial: Optional[Sequence[int]] = None,
    noc_cls: type = BehavioralNoc,
    noc_kwargs: Optional[dict] = None,
    seed: Optional[int] = None,
    start: bool = False,
    **engine_kwargs,
) -> EngineRig:
    """Build a d x d coin-exchange engine on a fresh simulator.

    ``max_per_tile`` is either a scalar (homogeneous grid) or a full
    per-tile vector; ``initial`` defaults to the max vector (a
    converged start).  ``seed`` routes through :func:`rng_for` for a
    deterministic pairing stream; ``noc_cls``/``noc_kwargs`` swap in
    instrumented fabrics (e.g. a lossy NoC).
    """
    topo = MeshTopology(d, d)
    sim = Simulator()
    noc = noc_cls(sim, topo, **(noc_kwargs or {}))
    n = topo.n_tiles
    if isinstance(max_per_tile, int):
        max_vec = [max_per_tile] * n
    else:
        max_vec = list(max_per_tile)
    if initial is None:
        initial = list(max_vec)
    if seed is not None:
        engine_kwargs.setdefault("rng", rng_for(seed))
    engine = CoinExchangeEngine(
        sim, noc, config or plain_one_way(), max_vec, initial, **engine_kwargs
    )
    if start:
        engine.start()
    return EngineRig(sim=sim, noc=noc, engine=engine, topo=topo)


def build_soc(preset: str = "3x3", **soc_kwargs) -> Soc:
    """A fresh live SoC from one of the named preset configs."""
    return Soc(SOC_PRESETS[preset](), **soc_kwargs)


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the golden-trace fixtures in tests/fixtures/"
        "golden/ instead of comparing against them",
    )


@pytest.fixture
def update_golden(request):
    """True when the run should rewrite golden fixtures."""
    return request.config.getoption("--update-golden")


@pytest.fixture
def make_engine_rig():
    """The :func:`build_engine_rig` factory, as a fixture."""
    return build_engine_rig


@pytest.fixture
def make_soc():
    """The :func:`build_soc` factory, as a fixture."""
    return build_soc


@pytest.fixture
def soc3():
    """A fresh 3x3 autonomous-vehicle SoC."""
    return build_soc("3x3")


@pytest.fixture
def sim():
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def mesh_3x3():
    return MeshTopology(3, 3)


@pytest.fixture
def mesh_4x4():
    return MeshTopology(4, 4)


@pytest.fixture
def noc_3x3(sim, mesh_3x3):
    return BehavioralNoc(sim, mesh_3x3)


# --- per-test wall-clock cap -------------------------------------------
#
# CI installs pytest-timeout (see pyproject's dev extras and ci.yml);
# the local image may not have it.  When the plugin is absent, fall
# back to a SIGALRM watchdog so a wedged simulator loop still fails the
# one test instead of hanging the whole run.

_FALLBACK_TIMEOUT_S = 120


def pytest_configure(config):
    config._blitz_local_timeout = not config.pluginmanager.hasplugin(
        "timeout"
    ) and hasattr(signal, "SIGALRM")


@pytest.fixture(autouse=True)
def _per_test_timeout(request):
    if not request.config._blitz_local_timeout:
        yield
        return

    def _alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded {_FALLBACK_TIMEOUT_S}s wall-clock cap"
        )

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.alarm(_FALLBACK_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
