"""Tests for the thermal RC model and the hotspot governor."""

import numpy as np
import pytest

from repro.noc.topology import MeshTopology
from repro.soc.executor import WorkloadExecutor
from repro.soc.pm import BlitzCoinPM
from repro.soc.presets import soc_3x3
from repro.soc.soc import Soc
from repro.thermal.governor import ThermalGovernor
from repro.thermal.model import (
    ThermalConfig,
    ThermalError,
    ThermalGrid,
    simulate_run_thermals,
)
from repro.workloads.apps import autonomous_vehicle_parallel


class TestThermalConfig:
    def test_defaults_valid(self):
        cfg = ThermalConfig()
        assert cfg.tau_vertical_s == pytest.approx(
            cfg.r_vertical_k_per_w * cfg.c_tile_j_per_k
        )

    def test_invalid_rejected(self):
        with pytest.raises(ThermalError):
            ThermalConfig(r_vertical_k_per_w=0)
        with pytest.raises(ThermalError):
            ThermalConfig(c_tile_j_per_k=-1)


class TestThermalGrid:
    def test_starts_at_ambient(self):
        grid = ThermalGrid(MeshTopology(3, 3))
        assert grid.max_temperature_c == pytest.approx(45.0)

    def test_power_heats_the_dissipating_tile_most(self):
        grid = ThermalGrid(MeshTopology(3, 3))
        power = np.zeros(9)
        power[4] = 0.05  # 50 mW at the center
        temps = grid.steady_state(power)
        assert temps[4] == temps.max()
        assert temps[4] > 45.0 + 5.0

    def test_lateral_spreading(self):
        grid = ThermalGrid(MeshTopology(3, 3))
        power = np.zeros(9)
        power[4] = 0.05
        temps = grid.steady_state(power)
        # Neighbors are warmer than corners (heat spreads laterally).
        assert temps[1] > temps[0]

    def test_transient_approaches_steady_state(self):
        grid = ThermalGrid(MeshTopology(3, 3))
        power = np.zeros(9)
        power[4] = 0.05
        target = grid.steady_state(power)
        for _ in range(50):
            grid.step(power, 50e-6)  # 50 us steps, ~25 tau total
        assert grid.temperatures[4] == pytest.approx(target[4], abs=0.5)

    def test_transient_is_initially_below_steady_state(self):
        grid = ThermalGrid(MeshTopology(3, 3))
        power = np.zeros(9)
        power[4] = 0.05
        target = grid.steady_state(power)
        grid.step(power, 10e-6)  # a fraction of tau
        assert grid.temperatures[4] < target[4] - 1.0

    def test_cooling_back_to_ambient(self):
        grid = ThermalGrid(MeshTopology(3, 3))
        power = np.zeros(9)
        power[4] = 0.05
        grid.step(power, 500e-6)
        grid.step(np.zeros(9), 2e-3)
        assert grid.max_temperature_c == pytest.approx(45.0, abs=0.2)

    def test_shape_mismatch_rejected(self):
        grid = ThermalGrid(MeshTopology(3, 3))
        with pytest.raises(ThermalError):
            grid.step(np.zeros(4), 1e-6)
        with pytest.raises(ThermalError):
            grid.steady_state(np.zeros(4))

    def test_hotspot_listing(self):
        grid = ThermalGrid(MeshTopology(2, 2))
        grid.temperatures[:] = [50.0, 80.0, 45.0, 90.0]
        assert grid.hotspots(75.0) == [1, 3]

    def test_reset(self):
        grid = ThermalGrid(MeshTopology(2, 2))
        grid.temperatures[:] = 99.0
        grid.reset()
        assert grid.max_temperature_c == pytest.approx(45.0)


class TestRunThermals:
    def test_post_hoc_analysis_of_a_soc_run(self):
        soc = Soc(soc_3x3())
        pm = BlitzCoinPM(soc, 120.0)
        run = WorkloadExecutor(
            soc, autonomous_vehicle_parallel(), pm
        ).run()
        analysis = simulate_run_thermals(run, soc.topology)
        assert analysis["peak_by_tile_c"].max() > 46.0
        assert analysis["hottest_trajectory_c"][0] <= (
            analysis["hottest_trajectory_c"].max()
        )
        # Unpowered (non-accelerator) tiles stay near ambient.
        cpu = soc.config.cpu_tile()
        assert analysis["peak_by_tile_c"][cpu] < 60.0


class TestThermalGovernor:
    def _run_with_governor(self, limit_c):
        soc = Soc(soc_3x3())
        pm = BlitzCoinPM(soc, 120.0)
        governor = ThermalGovernor(
            soc,
            pm,
            limit_c=limit_c,
            hysteresis_c=5.0,
            sample_cycles=2_000,
            capped_coins=8,
        )
        executor = WorkloadExecutor(
            soc, autonomous_vehicle_parallel(), pm
        )
        governor.start()
        result = executor.run()
        return result, governor

    def test_low_limit_engages_caps_and_reduces_peak_temp(self):
        unmanaged, gov_off = self._run_with_governor(limit_c=500.0)
        managed, gov_on = self._run_with_governor(limit_c=52.0)
        assert gov_off.cap_events == 0
        assert gov_on.cap_events > 0
        assert gov_on.peak_temperature_c < gov_off.peak_temperature_c

    def test_capping_costs_some_throughput(self):
        free, _ = self._run_with_governor(limit_c=500.0)
        throttled, _ = self._run_with_governor(limit_c=52.0)
        assert throttled.makespan_cycles >= free.makespan_cycles

    def test_hysteresis_releases_caps(self):
        _, gov = self._run_with_governor(limit_c=52.0)
        releases = [e for e in gov.events if e[2] == "release"]
        caps = [e for e in gov.events if e[2] == "cap"]
        assert caps
        # Tiles that cooled (after their task ended) get released.
        assert len(releases) >= 1

    def test_invalid_parameters_rejected(self):
        soc = Soc(soc_3x3())
        pm = BlitzCoinPM(soc, 120.0)
        with pytest.raises(ValueError):
            ThermalGovernor(soc, pm, hysteresis_c=-1.0)
        with pytest.raises(ValueError):
            ThermalGovernor(soc, pm, sample_cycles=0)
