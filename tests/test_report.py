"""Tests for CSV export and post-processing."""

import json

import numpy as np
import pytest

from repro.noc.packet import MessageType, Packet, PacketStats
from repro.obs.metrics import MetricsRegistry
from repro.report.csv_export import (
    CsvExportError,
    export_figure,
    export_packet_stats,
    export_rows,
    export_soc_run,
    fig03_series,
    packet_stats_rows,
    read_csv,
)
from repro.report.post_process import (
    ascii_chart,
    extract_execution_times,
    extract_response_times,
    reconstruct_power_trace,
    throughput_per_watt,
)
from repro.soc.executor import WorkloadExecutor
from repro.soc.pm import PMKind, build_pm
from repro.soc.presets import soc_3x3
from repro.soc.soc import Soc
from repro.workloads.scenarios import build_parallel


@pytest.fixture(scope="module")
def small_run():
    soc = Soc(soc_3x3())
    pm = build_pm(PMKind.BLITZCOIN, soc, 120.0)
    graph = build_parallel(
        [("f", "FFT", 60_000), ("v", "Viterbi", 50_000)]
    )
    result = WorkloadExecutor(soc, graph, pm).run()
    return result, soc.config


class TestExportRows:
    def test_roundtrip(self, tmp_path):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}]
        path = export_rows(tmp_path / "x.csv", rows)
        back = read_csv(path)
        assert back[0]["a"] == "1"
        assert back[1]["b"] == "4.5"

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(CsvExportError):
            export_rows(tmp_path / "x.csv", [])

    def test_bad_fieldnames_rejected(self, tmp_path):
        with pytest.raises(CsvExportError):
            export_rows(tmp_path / "x.csv", [{"a": 1}], fieldnames=["z"])

    def test_creates_parent_dirs(self, tmp_path):
        path = export_rows(tmp_path / "deep/nested/x.csv", [{"a": 1}])
        assert path.exists()


class TestExportFigure:
    def test_one_csv_per_series_plus_manifest(self, tmp_path):
        series = {
            "1-way": [{"d": 4, "cycles": 100}],
            "4-way": [{"d": 4, "cycles": 80}],
        }
        written = export_figure(
            tmp_path, "fig03", series, description="convergence"
        )
        assert set(written) == {"1-way", "4-way", "__manifest__"}
        manifest = json.loads(written["__manifest__"].read_text())
        assert manifest["figure"] == "fig03"
        assert set(manifest["series"]) == {"1-way", "4-way"}

    def test_empty_series_rejected(self, tmp_path):
        with pytest.raises(CsvExportError):
            export_figure(tmp_path, "figX", {})

    def test_fig03_series_flattening(self):
        import repro.experiments.fig03_convergence as f3

        r = f3.run(dims=(3,), trials=1)
        series = fig03_series(r)
        assert set(series) == {"1-way", "4-way"}
        assert series["1-way"][0]["n_tiles"] == 9


class TestExportSocRun:
    def test_exports_power_tasks_freq_meta(self, tmp_path, small_run):
        run, _ = small_run
        written = export_soc_run(tmp_path, run, tag="t")
        assert set(written) >= {"power", "tasks", "meta"}
        power = read_csv(written["power"])
        assert float(power[-1]["time_us"]) > 0
        meta = json.loads(written["meta"].read_text())
        assert meta["budget_mw"] == 120.0


def _stats_with_traffic() -> PacketStats:
    stats = PacketStats()
    for kind, count in (
        (MessageType.COIN_STATUS, 3),
        (MessageType.COIN_UPDATE, 2),
        (MessageType.PM_SET, 1),
    ):
        for _ in range(count):
            p = Packet(src=0, dst=1, msg_type=kind)
            stats.on_inject(p)
            p.injected_at, p.delivered_at = 0, 4
            stats.on_deliver(p, hops=2)
    return stats


class TestPacketStatsExport:
    def test_rows_have_per_kind_and_total(self):
        rows = packet_stats_rows(_stats_with_traffic())
        by_kind = {r["kind"]: r for r in rows}
        assert by_kind["coin_status"]["injected"] == 3
        assert by_kind["coin_update"]["injected"] == 2
        assert by_kind["__total__"]["injected"] == 6
        assert by_kind["__total__"]["total_hops"] == 12
        assert by_kind["__total__"]["mean_latency_cycles"] == 4.0
        assert rows[-1]["kind"] == "__total__"

    def test_csv_roundtrip(self, tmp_path):
        path = export_packet_stats(
            tmp_path / "pkts.csv", _stats_with_traffic()
        )
        back = read_csv(path)
        assert back[0]["kind"] == "coin_status"
        assert back[-1]["injected"] == "6"

    def test_publish_into_metrics_registry(self):
        registry = MetricsRegistry()
        stats = _stats_with_traffic()
        stats.publish(registry, time=100)
        assert registry.value("noc.stats.injected") == 6
        assert registry.value("noc.stats.delivered") == 6
        assert registry.value("noc.stats.coin_packets") == 5
        assert (
            registry.value("noc.stats.packets", kind="coin_status") == 3
        )
        assert registry.value("noc.stats.mean_latency_cycles") == 4.0

    def test_publish_overwrites_not_accumulates(self):
        registry = MetricsRegistry()
        stats = _stats_with_traffic()
        stats.publish(registry, time=100)
        stats.publish(registry, time=200)
        assert registry.value("noc.stats.injected") == 6
        gauge = registry.get("noc.stats.injected")
        assert gauge.last_time == 200


class TestPostProcess:
    def test_reconstruction_matches_recorded_power(self, small_run):
        """The paper's frequency-based reconstruction must agree with
        the directly recorded power samples."""
        run, config = small_run
        rebuilt = reconstruct_power_trace(run, config, n_points=100)
        times_us, recorded = run.power_series(100)
        # Allow small discrepancies at transition sampling boundaries.
        diff = np.abs(rebuilt["total_mw"] - recorded)
        assert np.median(diff) < 2.0
        assert float(np.mean(rebuilt["total_mw"])) == pytest.approx(
            float(np.mean(recorded)), rel=0.1
        )

    def test_execution_times_sorted_and_positive(self, small_run):
        run, _ = small_run
        rows = extract_execution_times(run)
        assert len(rows) == 2
        starts = [r[1] for r in rows]
        assert starts == sorted(starts)
        assert all(r[2] > 0 for r in rows)

    def test_response_summary(self, small_run):
        run, _ = small_run
        summary = extract_response_times(run)
        assert summary["count"] == len(run.response_times_cycles)
        if summary["count"]:
            assert summary["min_us"] <= summary["mean_us"] <= summary["max_us"]

    def test_throughput_per_watt_positive(self, small_run):
        run, _ = small_run
        assert throughput_per_watt(run) > 0

    def test_ascii_chart_shape(self):
        chart = ascii_chart([1, 5, 3, 8, 2], width=10, height=4, cap=6.0)
        lines = chart.splitlines()
        assert len(lines) == 5
        assert any("cap" in line for line in lines)

    def test_ascii_chart_downsamples_long_series(self):
        chart = ascii_chart(list(range(1000)), width=20, height=4)
        assert len(chart.splitlines()[0]) < 60

    def test_ascii_chart_empty(self):
        assert "empty" in ascii_chart([])
