"""Tests for the decentralized coin-exchange engine."""

import dataclasses

import pytest

from repro.core.config import (
    BlitzCoinConfig,
    ExchangeMode,
    plain_four_way,
    plain_one_way,
    preferred_embodiment,
)
from repro.core.engine import CoinExchangeEngine, EngineError
from repro.noc.behavioral import BehavioralNoc
from repro.noc.topology import MeshTopology
from repro.sim.kernel import Simulator
from repro.sim.rng import rng_for
from tests.conftest import build_engine_rig


def make_engine(d=3, config=None, max_per_tile=8, initial=None, **kwargs):
    rig = build_engine_rig(
        d,
        config=config,
        max_per_tile=max_per_tile,
        initial=initial,
        **kwargs,
    )
    return rig.sim, rig.engine


class TestConstruction:
    def test_vector_length_checked(self):
        topo = MeshTopology(2, 2)
        sim = Simulator()
        noc = BehavioralNoc(sim, topo)
        with pytest.raises(EngineError):
            CoinExchangeEngine(sim, noc, plain_one_way(), [1, 2], [1, 2, 3, 4])

    def test_unmanaged_tile_with_coins_rejected(self):
        topo = MeshTopology(2, 2)
        sim = Simulator()
        noc = BehavioralNoc(sim, topo)
        with pytest.raises(EngineError):
            CoinExchangeEngine(
                sim,
                noc,
                plain_one_way(),
                [1, 1, 1, 1],
                [1, 1, 1, 1],
                managed_tiles=[0, 1, 2],
            )

    def test_double_start_rejected(self):
        sim, engine = make_engine()
        engine.start()
        with pytest.raises(EngineError):
            engine.start()


class TestConservation:
    @pytest.mark.parametrize(
        "config",
        [plain_one_way(), plain_four_way(), preferred_embodiment()],
        ids=["1-way", "4-way", "preferred"],
    )
    def test_coins_conserved_throughout(self, config):
        initial = [0] * 9
        initial[0] = 72
        sim, engine = make_engine(
            d=3, config=config, initial=initial, rng=rng_for(1)
        )
        engine.start()
        for _ in range(10):
            sim.run_for(500)
            engine.check_conservation()

    def test_conservation_across_activity_changes(self):
        sim, engine = make_engine(d=3, config=preferred_embodiment())
        engine.start()
        sim.run_for(500)
        engine.set_max(4, 0)
        sim.run_for(500)
        engine.set_max(4, 16)
        sim.run_for(2000)
        engine.check_conservation()


class TestConvergence:
    def test_concentrated_coins_spread_to_equilibrium(self):
        initial = [0] * 9
        initial[0] = 72
        sim, engine = make_engine(d=3, initial=initial)
        engine.start()
        converged = engine.run_until_converged(100_000)
        assert converged is not None
        assert engine.tracker.error < engine.config.convergence_threshold

    def test_already_fair_state_converges_immediately(self):
        sim, engine = make_engine(d=3)
        engine.start()
        assert engine.run_until_converged(10_000) == 0

    def test_steady_state_counts_non_negative(self):
        initial = [0] * 9
        initial[0] = 72
        sim, engine = make_engine(d=3, initial=initial)
        engine.start()
        engine.run_until_converged(100_000)
        sim.run_for(5_000)
        for t in range(9):
            assert engine.coins(t).has >= 0

    def test_four_way_converges(self):
        initial = [0] * 9
        initial[4] = 72
        sim, engine = make_engine(
            d=3, config=plain_four_way(), initial=initial, rng=rng_for(3)
        )
        engine.start()
        assert engine.run_until_converged(200_000) is not None


class TestActivityChanges:
    def test_idle_tile_relinquishes_coins(self):
        sim, engine = make_engine(d=3, config=preferred_embodiment())
        engine.start()
        sim.run_for(200)
        engine.set_max(4, 0)
        engine.run_until_converged(100_000)
        sim.run_for(10_000)
        # The idle tile's coins should have drained to the active tiles.
        assert engine.coins(4).has <= 1

    def test_new_tile_attracts_coins(self):
        max_vec = [8] * 9
        max_vec[4] = 0
        topo = MeshTopology(3, 3)
        sim = Simulator()
        noc = BehavioralNoc(sim, topo)
        engine = CoinExchangeEngine(
            sim, noc, preferred_embodiment(), max_vec, [8] * 9
        )
        engine.start()
        sim.run_for(2_000)
        engine.set_max(4, 64)  # a big consumer appears
        sim.run_for(50_000)
        assert engine.coins(4).has > 8
        engine.check_conservation()

    def test_set_max_on_unmanaged_tile_rejected(self):
        topo = MeshTopology(2, 2)
        sim = Simulator()
        noc = BehavioralNoc(sim, topo)
        engine = CoinExchangeEngine(
            sim,
            noc,
            plain_one_way(),
            [1, 1, 1, 0],
            [1, 1, 1, 0],
            managed_tiles=[0, 1, 2],
        )
        with pytest.raises(EngineError):
            engine.set_max(3, 5)


class TestThermalCaps:
    def test_caps_limit_steady_state_holdings(self):
        config = dataclasses.replace(
            preferred_embodiment(),
            thermal_caps={t: 10 for t in range(9)},
        )
        initial = [0] * 9
        initial[0] = 60
        sim, engine = make_engine(d=3, config=config, initial=initial)
        engine.start()
        sim.run_for(100_000)
        for t in range(9):
            if t != 0:  # the initial holder may start above its cap
                assert engine.coins(t).has <= 10
        engine.check_conservation()


class TestRandomPairing:
    def test_escapes_inactive_barrier(self):
        """A coin-rich tile fenced by inactive tiles still feeds a
        distant hungry tile when random pairing is on (Fig. 5)."""
        topo = MeshTopology(4, 4)
        sim = Simulator()
        noc = BehavioralNoc(sim, topo)
        max_vec = [0] * 16
        max_vec[0] = 8
        max_vec[15] = 8
        initial = [0] * 16
        initial[0] = 12
        config = dataclasses.replace(
            preferred_embodiment(), wrap_around=False
        )
        engine = CoinExchangeEngine(sim, noc, config, max_vec, initial)
        engine.start()
        sim.run_for(300_000)
        assert engine.coins(15).has >= 5

    def test_without_random_pairing_barrier_blocks(self):
        topo = MeshTopology(4, 4)
        sim = Simulator()
        noc = BehavioralNoc(sim, topo)
        max_vec = [0] * 16
        max_vec[0] = 8
        max_vec[15] = 8
        initial = [0] * 16
        initial[0] = 12
        config = BlitzCoinConfig(
            mode=ExchangeMode.ONE_WAY,
            dynamic_timing=False,
            wrap_around=False,
            random_pairing_every=0,
        )
        engine = CoinExchangeEngine(sim, noc, config, max_vec, initial)
        engine.start()
        sim.run_for(100_000)
        # Coins cannot cross the inactive region: corner exchange with
        # inactive neighbors moves everything one hop at most... the
        # distant tile stays starved of its fair share.
        assert engine.coins(15).has < 5


class TestStatistics:
    def test_packet_accounting(self):
        initial = [0] * 9
        initial[0] = 72
        sim, engine = make_engine(d=3, initial=initial)
        engine.start()
        engine.run_until_converged(100_000)
        assert engine.coin_packets > 0
        assert engine.exchanges_started > 0

    def test_dynamic_timing_backs_off_in_steady_state(self):
        sim, engine = make_engine(d=3, config=preferred_embodiment())
        engine.start()
        sim.run_for(50_000)
        intervals = [engine.fsm[t].interval for t in range(9)]
        assert all(
            iv >= engine.config.refresh_count for iv in intervals
        ), f"steady-state intervals did not back off: {intervals}"
