"""Tests for the runtime sanitizer (repro.analysis.sanitize)."""

import dataclasses

import pytest

from repro.analysis.sanitize import (
    SANITIZE_ENV,
    Sanitizer,
    SanitizerError,
    attach_sanitizer,
    sanitize_enabled,
)
from repro.core.config import preferred_embodiment
from repro.core.engine import CoinExchangeEngine
from repro.core.runner import run_convergence_trial
from repro.noc.behavioral import BehavioralNoc
from repro.noc.topology import MeshTopology
from repro.sim.kernel import Simulator


def build_engine(config=None, d=4, max_per_tile=8):
    config = config or preferred_embodiment()
    topo = MeshTopology(d, d)
    sim = Simulator()
    noc = BehavioralNoc(sim, topo)
    n = topo.n_tiles
    engine = CoinExchangeEngine(
        sim, noc, config, [max_per_tile] * n, [max_per_tile] * n
    )
    return engine


class TestEnabling:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        assert not sanitize_enabled()
        assert build_engine().sanitizer is None

    @pytest.mark.parametrize("value", ["1", "true", "YES", "On"])
    def test_env_var_truthy_values(self, monkeypatch, value):
        monkeypatch.setenv(SANITIZE_ENV, value)
        assert sanitize_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "", "off"])
    def test_env_var_falsy_values(self, monkeypatch, value):
        monkeypatch.setenv(SANITIZE_ENV, value)
        assert not sanitize_enabled()

    def test_env_var_attaches_sanitizer(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV, "1")
        engine = build_engine()
        assert isinstance(engine.sanitizer, Sanitizer)

    def test_config_flag_attaches_sanitizer(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        config = dataclasses.replace(
            preferred_embodiment(), sanitize=True
        )
        engine = build_engine(config)
        assert isinstance(engine.sanitizer, Sanitizer)


class TestTransparency:
    """A sanitized run must be bit-identical to an unsanitized one."""

    def test_convergence_trial_identical_results(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        plain = run_convergence_trial(
            6, preferred_embodiment(), seed=11, threshold=1.5
        )
        monkeypatch.setenv(SANITIZE_ENV, "1")
        sanitized = run_convergence_trial(
            6, preferred_embodiment(), seed=11, threshold=1.5
        )
        assert plain == sanitized

    def test_sanitized_clean_run_checks_events(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV, "1")
        engine = build_engine()
        engine.start()
        engine.sim.run(until=2_000)
        assert engine.sanitizer.events_checked > 0
        engine.check_conservation()


class TestViolationDetection:
    def test_injected_coin_corruption_raises_with_trace(self):
        engine = build_engine()
        sanitizer = attach_sanitizer(engine)
        engine.start()
        engine.sim.run(until=300)
        # Corrupt a delta path: coins appear from nowhere, bypassing
        # _apply_delta, exactly what a buggy exchange would do.
        engine.fsm[3].coins.has += 5
        with pytest.raises(SanitizerError) as exc_info:
            engine.sim.run(until=5_000)
        err = exc_info.value
        assert err.kind == "coin-conservation"
        assert err.details["pool"] == engine.pool
        assert len(err.trace) > 0
        # The trace carries real events with simulation timestamps.
        assert any(t.kind == "event" for t in err.trace)
        assert "recent events" in str(err)
        assert sanitizer.events_checked > 0

    def test_negative_max_detected(self):
        engine = build_engine()
        attach_sanitizer(engine)
        engine.start()
        engine.sim.run(until=100)
        engine.fsm[0].coins.max = -1
        with pytest.raises(SanitizerError) as exc_info:
            engine.sim.run(until=2_000)
        assert exc_info.value.kind == "negative-max"

    def test_packet_accounting_corruption_detected(self):
        engine = build_engine()
        sanitizer = attach_sanitizer(engine)
        engine.start()
        engine.sim.run(until=100)
        # Pretend a packet vanished from the fabric.
        sanitizer.packets_outstanding += 1
        with pytest.raises(SanitizerError) as exc_info:
            engine.sim.run(until=2_000)
        assert exc_info.value.kind == "packet-conservation"

    def test_check_now_passes_on_healthy_engine(self):
        engine = build_engine()
        sanitizer = attach_sanitizer(engine)
        engine.start()
        engine.sim.run(until=1_000)
        sanitizer.check_now()  # no raise

    def test_trace_ring_buffer_bounded(self):
        engine = build_engine()
        sanitizer = attach_sanitizer(engine, trace_depth=8)
        engine.start()
        engine.sim.run(until=2_000)
        assert len(sanitizer.trace) <= 8
