"""Tests for the `blitzcoin-repro campaign` command group.

Covers the happy paths (run / rerun-from-cache / status / clean / CSV
export) and the contract that every campaign failure mode exits with
rc 2 and a one-line ``error:`` diagnostic on stderr — never a
traceback.
"""

import json

import pytest

from repro.campaign import CampaignSpec, CampaignStore
from repro.campaign.presets import get_preset
from repro.cli import main


@pytest.fixture
def store_dir(tmp_path):
    return str(tmp_path / "campaigns")


def run_cli(*argv):
    return main(list(argv))


def spec_file(tmp_path):
    spec = CampaignSpec(
        name="cli-test",
        kind="convergence",
        trials=1,
        base_seed=3,
        axes=(("d", (3,)),),
        params={"threshold": 1.5},
    )
    return str(spec.save(tmp_path / "spec.json")), spec


class TestRun:
    def test_preset_run_then_pure_cache_hit(self, capsys, store_dir):
        rc = run_cli(
            "campaign", "run", "--preset", "smoke", "--store", store_dir
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "campaign smoke" in out
        assert "total=4 cached=0 executed=4" in out

        rc = run_cli(
            "campaign", "run", "--preset", "smoke", "--store", store_dir
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "total=4 cached=4 executed=0" in out

    def test_spec_file_run_with_csv(self, capsys, tmp_path, store_dir):
        path, spec = spec_file(tmp_path)
        csv_path = tmp_path / "out.csv"
        rc = run_cli(
            "campaign", "run", "--spec", path,
            "--store", store_dir, "--csv", str(csv_path),
        )
        assert rc == 0
        assert f"campaign {spec.name}" in capsys.readouterr().out
        header = csv_path.read_text().splitlines()[0]
        assert "param.d" in header
        assert "seed" in header

    def test_verbose_prints_per_unit_lines(self, capsys, store_dir):
        rc = run_cli(
            "campaign", "run", "--preset", "smoke",
            "--store", store_dir, "-v",
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("executed seed=") == 4

    def test_workers_flag_verifies_determinism(self, capsys, store_dir):
        rc = run_cli(
            "campaign", "run", "--preset", "smoke",
            "--store", store_dir, "--workers", "2",
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "verified=1" in out
        assert "workers=2" in out

    def test_fresh_reexecutes_everything(self, capsys, store_dir):
        run_cli("campaign", "run", "--preset", "smoke", "--store", store_dir)
        capsys.readouterr()
        rc = run_cli(
            "campaign", "run", "--preset", "smoke",
            "--store", store_dir, "--fresh",
        )
        assert rc == 0
        assert "cached=0 executed=4" in capsys.readouterr().out


class TestStatus:
    def test_never_run(self, capsys, store_dir):
        rc = run_cli(
            "campaign", "status", "--preset", "smoke", "--store", store_dir
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "done=0" in out
        assert "state: never run" in out

    def test_complete_then_resumable_after_damage(self, capsys, store_dir):
        run_cli("campaign", "run", "--preset", "smoke", "--store", store_dir)
        capsys.readouterr()
        rc = run_cli(
            "campaign", "status", "--preset", "smoke", "--store", store_dir
        )
        assert rc == 0
        assert "state: complete" in capsys.readouterr().out

        spec = get_preset("smoke")
        store = CampaignStore(store_dir)
        store.unit_path(spec, spec.units()[0]).unlink()
        rc = run_cli(
            "campaign", "status", "--preset", "smoke", "--store", store_dir
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "missing=1" in out
        assert "state: resumable" in out

    def test_corrupt_artifacts_are_listed(self, capsys, store_dir):
        run_cli("campaign", "run", "--preset", "smoke", "--store", store_dir)
        capsys.readouterr()
        spec = get_preset("smoke")
        store = CampaignStore(store_dir)
        store.unit_path(spec, spec.units()[0]).write_text("{torn")
        rc = run_cli(
            "campaign", "status", "--preset", "smoke", "--store", store_dir
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "corrupt=1" in out
        assert "corrupt: " in out


class TestClean:
    def test_clean_one_spec(self, capsys, store_dir):
        run_cli("campaign", "run", "--preset", "smoke", "--store", store_dir)
        capsys.readouterr()
        rc = run_cli(
            "campaign", "clean", "--preset", "smoke", "--store", store_dir
        )
        assert rc == 0
        assert "removed" in capsys.readouterr().out
        rc = run_cli(
            "campaign", "clean", "--preset", "smoke", "--store", store_dir
        )
        assert rc == 0
        assert "nothing stored" in capsys.readouterr().out

    def test_clean_all(self, capsys, store_dir):
        run_cli("campaign", "run", "--preset", "smoke", "--store", store_dir)
        capsys.readouterr()
        rc = run_cli("campaign", "clean", "--all", "--store", store_dir)
        assert rc == 0
        assert "removed store" in capsys.readouterr().out


class TestErrorPaths:
    """Every failure exits rc 2 with `error:` on stderr, no traceback."""

    def test_unknown_preset(self, capsys, store_dir):
        rc = run_cli(
            "campaign", "run", "--preset", "no-such", "--store", store_dir
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_missing_spec_file(self, capsys, tmp_path, store_dir):
        rc = run_cli(
            "campaign", "run",
            "--spec", str(tmp_path / "absent.json"),
            "--store", store_dir,
        )
        assert rc == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_malformed_spec_file(self, capsys, tmp_path, store_dir):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        rc = run_cli(
            "campaign", "run", "--spec", str(bad), "--store", store_dir
        )
        assert rc == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_invalid_spec_contents(self, capsys, tmp_path, store_dir):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x", "kind": "bogus", "trials": 1}))
        rc = run_cli(
            "campaign", "run", "--spec", str(bad), "--store", store_dir
        )
        assert rc == 2
        assert "kind" in capsys.readouterr().err

    def test_corrupted_store_fails_run_with_hint(self, capsys, store_dir):
        run_cli("campaign", "run", "--preset", "smoke", "--store", store_dir)
        capsys.readouterr()
        spec = get_preset("smoke")
        store = CampaignStore(store_dir)
        store.unit_path(spec, spec.units()[0]).write_text("{torn")
        rc = run_cli(
            "campaign", "run", "--preset", "smoke", "--store", store_dir
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert "campaign clean" in err
        assert "Traceback" not in err

    def test_status_on_unknown_preset(self, capsys, store_dir):
        rc = run_cli(
            "campaign", "status", "--preset", "no-such", "--store", store_dir
        )
        assert rc == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_spec_and_preset_are_mutually_exclusive(self, tmp_path, store_dir):
        path, _ = spec_file(tmp_path)
        with pytest.raises(SystemExit):
            run_cli(
                "campaign", "run", "--spec", path,
                "--preset", "smoke", "--store", store_dir,
            )
