"""Tests for the streaming experiment and the pipelined unroll."""

import pytest

from repro.experiments import streaming
from repro.workloads.apps import autonomous_vehicle_dependent
from repro.workloads.scenarios import pipeline_frames


class TestPipelineFrames:
    def test_unrolls_without_interframe_deps(self):
        base = autonomous_vehicle_dependent()
        unrolled = pipeline_frames(base, 3)
        assert len(unrolled) == 3 * len(base)
        # Frame 1 roots have no dependencies on frame 0.
        assert unrolled["fft0@f1"].deps == ()

    def test_intraframe_deps_preserved(self):
        base = autonomous_vehicle_dependent()
        unrolled = pipeline_frames(base, 2)
        assert unrolled["dla0@f1"].deps == ("fft1@f1", "fft2@f1")

    def test_single_frame_identity(self):
        base = autonomous_vehicle_dependent()
        assert pipeline_frames(base, 1) is base

    def test_concurrency_grows_with_frames(self):
        base = autonomous_vehicle_dependent()
        unrolled = pipeline_frames(base, 3)
        assert unrolled.max_concurrency() > base.max_concurrency()


class TestStreamingDriver:
    def test_two_frame_run(self):
        result = streaming.run(frames=2)
        assert set(result.cells) == {"BC", "BC-C", "C-RR"}
        for cell in result.cells.values():
            assert cell.makespan_us > 0
            assert cell.frame_time_us == pytest.approx(
                cell.makespan_us / 2
            )

    def test_invalid_frame_count_rejected(self):
        with pytest.raises(ValueError):
            streaming.run(frames=1)

    def test_format_rows(self):
        result = streaming.run(frames=2)
        rows = streaming.format_rows(result)
        assert len(rows) == 4
