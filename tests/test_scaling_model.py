"""Tests for the analytical scaling models (Eqs. 5.1-5.3)."""

import pytest

from repro.scaling.model import (
    PAPER_TAUS_US,
    ResponseScalingModel,
    ScalingError,
    fit_tau_us,
    n_max_curve,
    pm_overhead_curve,
    workload_interval_us,
)


class TestResponseScalingModel:
    def test_linear_scheme_scales_linearly(self):
        m = ResponseScalingModel("C-RR", tau_us=0.96, exponent=1.0)
        assert m.response_time_us(100) == pytest.approx(96.0)

    def test_sqrt_scheme_scales_with_root(self):
        m = ResponseScalingModel("BC", tau_us=0.20, exponent=0.5)
        assert m.response_time_us(400) == pytest.approx(4.0)

    def test_n_max_solves_the_crossing(self):
        m = ResponseScalingModel("BC", tau_us=0.20, exponent=0.5)
        t_w = 7000.0
        n = m.n_max(t_w)
        assert m.response_time_us(n) == pytest.approx(t_w / n, rel=1e-9)

    def test_paper_headline_bc_supports_1000_accelerators_at_7ms(self):
        # Section VI-D: N ~ 1000 for T_w >= 7.0 ms.
        bc = ResponseScalingModel.from_paper("BC")
        assert bc.n_max(7000.0) == pytest.approx(1000, rel=0.08)

    def test_paper_headline_bc_supports_100_at_0p2ms(self):
        bc = ResponseScalingModel.from_paper("BC")
        assert bc.n_max(200.0) == pytest.approx(100, rel=0.05)

    def test_bc_supports_5_to_13x_more_than_centralized(self):
        bc = ResponseScalingModel.from_paper("BC")
        for other_name in ("BC-C", "C-RR"):
            other = ResponseScalingModel.from_paper(other_name)
            for t_w in (200.0, 1000.0, 7000.0):
                advantage = bc.n_max(t_w) / other.n_max(t_w)
                assert 3.0 < advantage < 20.0

    def test_pm_fraction_worked_example(self):
        # Section VI-D: at N=100, T_w=10 ms: C-RR 96%, BC-C 66%, BC 2%.
        assert ResponseScalingModel.from_paper("C-RR").pm_time_fraction(
            100, 10_000.0
        ) == pytest.approx(0.96, rel=1e-6)
        assert ResponseScalingModel.from_paper("BC-C").pm_time_fraction(
            100, 10_000.0
        ) == pytest.approx(0.66, rel=1e-6)
        assert ResponseScalingModel.from_paper("BC").pm_time_fraction(
            100, 10_000.0
        ) == pytest.approx(0.02, rel=1e-6)

    def test_unknown_paper_scheme_rejected(self):
        with pytest.raises(ScalingError):
            ResponseScalingModel.from_paper("XYZ")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ScalingError):
            ResponseScalingModel("x", tau_us=0.0, exponent=1.0)
        m = ResponseScalingModel("x", tau_us=1.0, exponent=1.0)
        with pytest.raises(ScalingError):
            m.response_time_us(0)
        with pytest.raises(ScalingError):
            m.n_max(0.0)


class TestFitting:
    def test_single_point_fit_exact(self):
        tau = fit_tau_us([(13, 2.6)], exponent=1.0)
        assert tau == pytest.approx(0.2)

    def test_multi_point_least_squares(self):
        pts = [(4, 0.4), (16, 0.8), (64, 1.6)]  # tau=0.2 at exponent 0.5
        tau = fit_tau_us(pts, exponent=0.5)
        assert tau == pytest.approx(0.2, rel=1e-6)

    def test_empty_measurements_rejected(self):
        with pytest.raises(ScalingError):
            fit_tau_us([], exponent=1.0)

    def test_nonpositive_measurements_rejected(self):
        with pytest.raises(ScalingError):
            fit_tau_us([(13, 0.0)], exponent=1.0)


class TestCurves:
    def test_workload_interval(self):
        assert workload_interval_us(5000.0, 20) == pytest.approx(250.0)

    def test_n_max_curve_ordering(self):
        models = [
            ResponseScalingModel.from_paper(s)
            for s in ("BC", "BC-C", "C-RR", "TS")
        ]
        curves = n_max_curve(models, [200.0, 7000.0])
        for idx in range(2):
            assert curves["BC"][idx] > curves["TS"][idx]
            assert curves["TS"][idx] > curves["BC-C"][idx]
            assert curves["BC-C"][idx] > curves["C-RR"][idx]

    def test_pm_overhead_curve_inverse_ordering(self):
        models = [
            ResponseScalingModel.from_paper(s) for s in ("BC", "C-RR")
        ]
        curves = pm_overhead_curve(models, [10, 100, 1000], 10_000.0)
        for a, b in zip(curves["BC"], curves["C-RR"]):
            assert a < b

    def test_paper_constants_registered(self):
        assert set(PAPER_TAUS_US) == {"BC", "BC-C", "C-RR", "TS"}
