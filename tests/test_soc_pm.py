"""Tests for the power-manager adapters on a live SoC."""

import pytest

from repro.power.allocation import AllocationStrategy
from repro.soc.executor import WorkloadExecutor
from repro.soc.pm import (
    BlitzCoinPM,
    CentralizedPM,
    PMKind,
    StaticPM,
    TokenSmartPM,
    build_pm,
)
from repro.workloads.apps import autonomous_vehicle_parallel
from tests.conftest import build_soc


class TestBuildPm:
    @pytest.mark.parametrize("kind", list(PMKind))
    def test_factory_constructs_each_kind(self, kind):
        soc = build_soc("3x3")
        pm = build_pm(kind, soc, 120.0)
        assert hasattr(pm, "start")
        assert hasattr(pm, "on_tile_start")
        assert hasattr(pm, "response_times")


class TestBlitzCoinPM:
    def test_pool_sized_net_of_idle_floor(self):
        soc = build_soc("3x3")
        pm = BlitzCoinPM(soc, 120.0)
        assert pm.coin_budget.budget_mw < 120.0
        assert pm.coin_budget.pool == 63

    def test_budget_below_idle_floor_rejected(self):
        soc = build_soc("3x3")
        with pytest.raises(ValueError):
            BlitzCoinPM(soc, 1.0)

    def test_tile_start_sets_target_and_attracts_coins(self):
        soc = build_soc("3x3")
        pm = BlitzCoinPM(soc, 120.0)
        pm.start()
        tid = pm.tiles[0]
        soc.set_active(tid, True)
        pm.on_tile_start(tid)
        soc.sim.run_for(20_000)
        assert pm.engine.coins(tid).has > pm.coin_budget.pool // len(pm.tiles)

    def test_tile_end_relinquishes_and_gates_clock(self):
        soc = build_soc("3x3")
        pm = BlitzCoinPM(soc, 120.0)
        pm.start()
        tid = pm.tiles[0]
        soc.set_active(tid, True)
        pm.on_tile_start(tid)
        soc.sim.run_for(20_000)
        soc.set_active(tid, False)
        pm.on_tile_end(tid)
        soc.sim.run_for(5_000)
        assert soc.actuators[tid].f_target_hz == 0.0

    def test_ap_strategy_equalizes_targets(self):
        soc = build_soc("3x3")
        pm = BlitzCoinPM(
            soc, 120.0, strategy=AllocationStrategy.ABSOLUTE_PROPORTIONAL
        )
        targets = set(pm.coin_budget.max_by_tile.values())
        assert len(targets) == 1  # equal absolute shares fit under caps

    def test_rp_strategy_weights_by_pmax(self):
        soc = build_soc("3x3")
        pm = BlitzCoinPM(soc, 120.0)
        by_class = {}
        for t in pm.tiles:
            by_class[soc.config.class_of(t)] = pm.coin_budget.max_by_tile[t]
        assert by_class["NVDLA"] > by_class["FFT"] > by_class["Viterbi"]

    def test_response_logged_after_activity_change(self):
        soc = build_soc("3x3")
        pm = BlitzCoinPM(soc, 120.0)
        pm.start()
        tid = pm.tiles[0]
        soc.set_active(tid, True)
        pm.on_tile_start(tid)
        soc.sim.run_for(100_000)
        assert len(pm.response_times) >= 1
        assert pm.response_log[0][0] <= pm.response_log[0][1] + soc.sim.now


class TestCentralizedPM:
    @pytest.mark.parametrize("policy", ["crr", "bcc"])
    def test_controller_grants_power_to_active_tiles(self, policy):
        soc = build_soc("3x3")
        pm = CentralizedPM(soc, 120.0, policy=policy)
        pm.start()
        tid = soc.config.tiles_of_class("FFT")[0]
        soc.set_active(tid, True)
        pm.on_tile_start(tid)
        soc.sim.run_for(50_000)
        assert soc.frequency(tid) > 0

    def test_unknown_policy_rejected(self):
        soc = build_soc("3x3")
        with pytest.raises(ValueError):
            CentralizedPM(soc, 120.0, policy="magic")

    def test_crr_slower_than_bcc_per_tile(self):
        soc = build_soc("3x3")
        crr = CentralizedPM(soc, 120.0, policy="crr")
        soc2 = build_soc("3x3")
        bcc = CentralizedPM(soc2, 120.0, policy="bcc")
        assert (
            crr.scheme.timing.poll_overhead > bcc.scheme.timing.poll_overhead
        )


class TestTokenSmartPM:
    def test_ring_covers_managed_tiles(self):
        soc = build_soc("3x3")
        pm = TokenSmartPM(soc, 120.0)
        assert sorted(pm.ring) == sorted(pm.tiles)

    def test_tokens_conserved(self):
        soc = build_soc("3x3")
        pm = TokenSmartPM(soc, 120.0)
        pm.start()
        tid = pm.tiles[0]
        soc.set_active(tid, True)
        pm.on_tile_start(tid)
        soc.sim.run_for(30_000)
        assert sum(pm.has.values()) + pm.pool_tokens == pm.coin_budget.pool

    def test_active_tile_acquires_tokens(self):
        soc = build_soc("3x3")
        pm = TokenSmartPM(soc, 120.0)
        pm.start()
        tid = pm.tiles[0]
        soc.set_active(tid, True)
        pm.on_tile_start(tid)
        soc.sim.run_for(30_000)
        assert pm.has[tid] > 0
        assert soc.frequency(tid) > 0


class TestCapEnforcement:
    @pytest.mark.parametrize(
        "kind",
        [
            PMKind.BLITZCOIN,
            PMKind.BLITZCOIN_CENTRAL,
            PMKind.ROUND_ROBIN,
            PMKind.TOKENSMART,
            PMKind.STATIC,
        ],
    )
    def test_every_scheme_respects_the_power_cap(self, kind):
        """Fig. 16's headline invariant, with a 10% transient allowance
        for actuator slew overlap."""
        soc = build_soc("3x3")
        pm = build_pm(kind, soc, 120.0)
        result = WorkloadExecutor(
            soc, autonomous_vehicle_parallel(), pm
        ).run()
        assert result.peak_power_mw() <= 1.10 * 120.0


class TestCoinPrecision:
    def test_coin_bits_sets_counter_width(self):
        soc = build_soc("3x3")
        pm = BlitzCoinPM(soc, 120.0, coin_bits=4)
        assert max(pm.coin_budget.max_by_tile.values()) <= 15
        assert pm.luts[pm.tiles[0]].n_entries == 16

    def test_invalid_coin_bits_rejected(self):
        soc = build_soc("3x3")
        with pytest.raises(ValueError):
            BlitzCoinPM(soc, 120.0, coin_bits=0)
        with pytest.raises(ValueError):
            BlitzCoinPM(soc, 120.0, coin_bits=13)

    def test_coarse_coins_still_run_to_completion(self):
        soc = build_soc("3x3")
        pm = BlitzCoinPM(soc, 120.0, coin_bits=3)
        result = WorkloadExecutor(
            soc, autonomous_vehicle_parallel(), pm
        ).run()
        assert result.makespan_cycles > 0
