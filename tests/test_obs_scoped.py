"""Concurrency battery for the scoped observability runtime.

``repro.obs.runtime`` serves ``runtime.sink`` from a ContextVar, so
every thread (and every asyncio task) resolves its own sink.  These
tests pin the properties the parallel serve lanes depend on:

* two threads running simulations under their own scoped sinks must
  not cross-contaminate counters, spans, profiles, or monitor alerts
  — each session collects exactly what a solo run collects;
* a fresh thread (or any context with nothing installed) sees ``None``
  and runs uninstrumented, even while other threads observe;
* ContextVar state *persists* on reused pool threads, which is why
  ``uninstall()`` in a ``finally`` is load-bearing for lane workers;
* ``observing()`` nesting semantics are pinned: nested installs raise
  ``ObsError`` and leave the outer sink in place, and the ``finally``
  always clears whatever the block left installed;
* a Hypothesis property drives arbitrary step-by-step interleavings of
  two observing threads through an event handshake and asserts perfect
  attribution for every schedule.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import NullSink, ObsError, Observation, runtime
from repro.obs.monitor import Monitor, MonitorSet
from repro.obs.runtime import current, enabled, install, observing, uninstall
from tests.conftest import build_engine_rig


def _observed_engine_run(d: int, seed: int, cycles: int) -> Observation:
    """One engine sim under its own scoped session; returns the session."""
    with observing() as session:
        rig = build_engine_rig(d, seed=seed, start=True)
        rig.engine.set_max(0, 2)  # an imbalance to trade away
        rig.sim.run(until=cycles)
    return session


def _fingerprint(session: Observation):
    return (
        session.registry.value("engine.exchanges_initiated"),
        session.registry.value("noc.packets", kind="coin_status"),
        len(session.trace.spans),
        session.profile.events_total,
    )


class TestThreadIsolation:
    def test_two_threads_collect_exactly_their_own_run(self):
        # Reference: what each run collects when it is alone.
        solo_a = _fingerprint(_observed_engine_run(3, 7, 30_000))
        solo_b = _fingerprint(_observed_engine_run(4, 11, 30_000))
        assert solo_a != solo_b  # distinct configs → distinct footprints

        results = {}
        barrier = threading.Barrier(2)

        def worker(key, d, seed):
            barrier.wait()  # force genuine overlap
            results[key] = _fingerprint(_observed_engine_run(d, seed, 30_000))

        threads = [
            threading.Thread(target=worker, args=("a", 3, 7)),
            threading.Thread(target=worker, args=("b", 4, 11)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Scoped sinks: the concurrent sessions are bit-identical to
        # the solo ones — no counter, span, or profile event leaked
        # across threads in either direction.
        assert results["a"] == solo_a
        assert results["b"] == solo_b

    def test_fresh_thread_sees_none_while_main_observes(self):
        seen = {}

        def probe():
            seen["sink"] = runtime.sink
            seen["enabled"] = enabled()

        with observing():
            t = threading.Thread(target=probe)
            t.start()
            t.join()
        assert seen["sink"] is None
        assert seen["enabled"] is False

    def test_thread_install_invisible_to_main(self):
        installed = threading.Event()
        release = threading.Event()

        def worker():
            install(NullSink())
            installed.set()
            release.wait(5)
            uninstall()

        t = threading.Thread(target=worker)
        t.start()
        assert installed.wait(5)
        try:
            assert runtime.sink is None  # the worker's sink is its own
            assert current() is None
        finally:
            release.set()
            t.join()

    def test_pool_threads_persist_context_across_tasks(self):
        # ThreadPoolExecutor reuses threads and ContextVar state set in
        # a thread sticks to it: a lane worker that skips uninstall()
        # poisons the next job on that thread.  This is the documented
        # reason uninstall-in-finally is load-bearing.
        with ThreadPoolExecutor(max_workers=1) as pool:
            leaked = NullSink()
            pool.submit(install, leaked).result()
            assert pool.submit(current).result() is leaked  # persisted!
            assert pool.submit(uninstall).result() is leaked
            assert pool.submit(current).result() is None

    def test_executor_lanes_scope_independent_sinks(self):
        # The serve lane-worker discipline, distilled: N pool threads,
        # each job installs its own session and uninstalls in finally.
        def job(i):
            session = Observation(label=f"lane-{i}")
            install(session)
            try:
                for t in range(i + 1):
                    runtime.sink.inc("job.steps", t)
            finally:
                uninstall()
            return i, session

        with ThreadPoolExecutor(max_workers=4) as pool:
            for i, session in pool.map(job, range(16)):
                assert session.registry.value("job.steps") == i + 1
            assert all(
                sink is None
                for sink in [pool.submit(current).result() for _ in range(4)]
            )


class _TagMonitor(Monitor):
    """Alerts on every ``tagged`` event, recording the event's tag."""

    name = "tag"

    def on_event(self, name, time, cat, track, args):
        if name == "tagged":
            self.emit("info", time, "tagged", tag=args["tag"])


class TestAlertIsolation:
    def test_monitor_alerts_stay_with_their_thread(self):
        outcome = {}
        barrier = threading.Barrier(2)

        def worker(tag, events):
            monitor = _TagMonitor()
            sink = MonitorSet([monitor], Observation(label=tag))
            barrier.wait()
            install(sink)
            try:
                for t in range(events):
                    runtime.sink.event("tagged", t, args={"tag": tag})
                sink.finish()
            finally:
                uninstall()
            outcome[tag] = monitor.alerts

        threads = [
            threading.Thread(target=worker, args=("left", 5)),
            threading.Thread(target=worker, args=("right", 9)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(outcome["left"]) == 5
        assert len(outcome["right"]) == 9
        assert {a.data["tag"] for a in outcome["left"]} == {"left"}
        assert {a.data["tag"] for a in outcome["right"]} == {"right"}


class TestFaultInjectorScoping:
    def test_concurrent_injecting_scopes_per_thread(self):
        # The fault injector rides the same scoped-runtime pattern as
        # the obs sink: two lanes may each install their own injector.
        # (Process-wide state here used to fail every concurrent
        # fault-injected scenario with "already installed".)
        from repro.faults import FaultPlan
        from repro.faults import runtime as faults_runtime
        from repro.faults.runtime import injecting

        barrier = threading.Barrier(2)
        seen = {}

        def worker(tag):
            barrier.wait()
            with injecting(FaultPlan.uniform(drop=0.1)) as inj:
                seen[tag] = (inj, faults_runtime.injector)
            seen[tag + "-after"] = faults_runtime.injector

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen["a"][0] is seen["a"][1]
        assert seen["b"][0] is seen["b"][1]
        assert seen["a"][0] is not seen["b"][0]
        assert seen["a-after"] is None and seen["b-after"] is None
        assert faults_runtime.injector is None


class TestObservingNesting:
    def test_nested_observing_raises_and_preserves_outer(self):
        with observing() as outer:
            with pytest.raises(ObsError):
                with observing():
                    pass  # pragma: no cover - nested install must raise
            assert runtime.sink is outer  # outer sink survived the raise
        assert runtime.sink is None

    def test_nested_install_raises_and_preserves_outer(self):
        with observing() as outer:
            with pytest.raises(ObsError):
                install(NullSink())
            assert runtime.sink is outer
        assert runtime.sink is None

    def test_observing_finally_clears_replacement_sink(self):
        # Swapping sinks mid-block is legal (uninstall + install); the
        # block's finally still leaves the context clean.
        with observing():
            uninstall()
            replacement = install(NullSink())
            assert runtime.sink is replacement
        assert runtime.sink is None

    def test_sequential_blocks_are_independent(self):
        with observing() as first:
            first.inc("x", 0)
        with observing() as second:
            pass
        assert first is not second
        assert first.registry.value("x") == 1
        assert second.registry.value("x") == 0


class _SteppedObserver(threading.Thread):
    """A thread that installs its own session and incs once per ``go``."""

    def __init__(self, tag: str, steps: int) -> None:
        super().__init__(name=f"obs-{tag}")
        self.tag = tag
        self.steps = steps
        self.session = Observation(label=tag)
        self.go = threading.Semaphore(0)
        self.ack = threading.Semaphore(0)

    def run(self) -> None:
        install(self.session)
        try:
            for t in range(self.steps):
                self.go.acquire()
                runtime.sink.inc("steps", t, tag=self.tag)
                self.ack.release()
        finally:
            uninstall()


@given(
    schedule=st.lists(st.sampled_from(["a", "b"]), min_size=1, max_size=24)
)
@settings(max_examples=20, deadline=None)
def test_interleaved_threads_attribute_every_step(schedule):
    """Any interleaving of two observing threads attributes perfectly.

    Hypothesis picks the schedule; a semaphore handshake makes the two
    threads take their increments in exactly that order.  Whatever the
    interleaving, each session ends with precisely its own step count
    under its own tag — the ContextVar scoping leaves no schedule in
    which an increment lands in the other thread's registry.
    """
    counts = {"a": schedule.count("a"), "b": schedule.count("b")}
    workers = {
        tag: _SteppedObserver(tag, steps) for tag, steps in counts.items()
    }
    for worker in workers.values():
        worker.start()
    for tag in schedule:  # drive the exact interleaving, step by step
        workers[tag].go.release()
        assert workers[tag].ack.acquire(timeout=10)
    for worker in workers.values():
        worker.join(timeout=10)
        assert not worker.is_alive()
    for tag, worker in workers.items():
        own = worker.session.registry.value("steps", tag=tag)
        other = "b" if tag == "a" else "a"
        assert own == counts[tag]
        assert worker.session.registry.value("steps", tag=other) == 0
