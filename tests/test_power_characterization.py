"""Tests for the P/V/F characterization models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power.characterization import (
    ACCELERATOR_CATALOG,
    AcceleratorClass,
    CharacterizationError,
    PowerFrequencyCurve,
    get_curve,
)

ALL_NAMES = sorted(ACCELERATOR_CATALOG)


class TestCatalog:
    def test_six_accelerator_classes(self):
        assert set(ALL_NAMES) == {
            "FFT",
            "Viterbi",
            "NVDLA",
            "GEMM",
            "Conv2D",
            "Vision",
        }

    def test_3x3_soc_combined_power_matches_budget_fractions(self):
        # 3 FFT + 2 Viterbi + 1 NVDLA ~ 400 mW so that 120/60 mW budgets
        # are 30%/15% (Section VI-A).
        total = (
            3 * get_curve("FFT").p_max_mw
            + 2 * get_curve("Viterbi").p_max_mw
            + get_curve("NVDLA").p_max_mw
        )
        assert total == pytest.approx(400.0, rel=0.02)

    def test_4x4_soc_combined_power_matches_budget_fractions(self):
        # 5 GEMM + 4 Conv2D + 4 Vision ~ 1350 mW so 450/900 mW are
        # 33%/66% (Section VI-B).
        total = (
            5 * get_curve("GEMM").p_max_mw
            + 4 * get_curve("Conv2D").p_max_mw
            + 4 * get_curve("Vision").p_max_mw
        )
        assert total == pytest.approx(1350.0, rel=0.02)

    def test_unknown_class_rejected(self):
        with pytest.raises(CharacterizationError):
            get_curve("TPU")

    def test_curves_cached(self):
        assert get_curve("FFT") is get_curve("FFT")


class TestVoltageFrequency:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_f_max_is_monotone_in_voltage(self, name):
        c = get_curve(name)
        spec = c.spec
        vs = [spec.v_min + k * (spec.v_max - spec.v_min) / 10 for k in range(11)]
        fs = [c.f_max_at(v) for v in vs]
        assert all(a < b for a, b in zip(fs, fs[1:]))

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_calibrated_top_point(self, name):
        c = get_curve(name)
        assert c.f_max_at(c.spec.v_max) == pytest.approx(
            c.spec.f_max_hz, rel=1e-9
        )
        assert c.power_mw(c.spec.v_max, c.spec.f_max_hz) == pytest.approx(
            c.spec.p_max_mw, rel=1e-9
        )

    def test_out_of_range_voltage_rejected(self):
        c = get_curve("FFT")
        with pytest.raises(CharacterizationError):
            c.f_max_at(0.3)
        with pytest.raises(CharacterizationError):
            c.f_max_at(1.2)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_v_for_f_inverts_f_max(self, name):
        c = get_curve(name)
        for frac in (0.5, 0.8, 1.0):
            f = c.spec.f_max_hz * frac
            v = c.v_for_f(f)
            assert c.f_max_at(v) >= f * (1 - 1e-6)

    def test_low_frequency_stays_at_v_min(self):
        c = get_curve("FFT")
        assert c.v_for_f(1e6) == c.spec.v_min

    def test_excessive_frequency_rejected(self):
        c = get_curve("FFT")
        with pytest.raises(CharacterizationError):
            c.v_for_f(2 * c.spec.f_max_hz)


class TestPower:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_power_at_f_monotone(self, name):
        c = get_curve(name)
        fs = [c.spec.f_max_hz * k / 10 for k in range(11)]
        ps = [c.power_at_f(f) for f in fs]
        assert all(a <= b + 1e-9 for a, b in zip(ps, ps[1:]))

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_f_for_power_inverts_power_at_f(self, name):
        c = get_curve(name)
        for frac in (0.3, 0.6, 0.9):
            p = c.p_max_mw * frac
            f = c.f_for_power(p)
            assert c.power_at_f(f) <= p * (1 + 1e-6)

    def test_f_for_power_saturates_at_f_max(self):
        c = get_curve("FFT")
        assert c.f_for_power(10 * c.p_max_mw) == c.spec.f_max_hz

    def test_f_for_power_zero_below_leakage_floor(self):
        c = get_curve("NVDLA")
        assert c.f_for_power(0.1) == 0.0

    def test_unsustainable_point_rejected(self):
        c = get_curve("FFT")
        with pytest.raises(CharacterizationError):
            c.power_mw(c.spec.v_min, c.spec.f_max_hz)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_idle_power_below_min_voltage_point(self, name):
        c = get_curve(name)
        p_min_point = c.power_mw(c.spec.v_min, c.f_max_at(c.spec.v_min))
        assert c.p_idle_mw == pytest.approx(p_min_point / 7.5)

    def test_low_voltage_points_are_more_efficient(self):
        """The physics behind RP's win: MHz-per-mW improves at low V."""
        c = get_curve("FFT")
        lo = c.f_max_at(c.spec.v_min) / c.power_mw(
            c.spec.v_min, c.f_max_at(c.spec.v_min)
        )
        hi = c.spec.f_max_hz / c.spec.p_max_mw
        assert lo > 1.5 * hi

    def test_sweep_shape(self):
        samples = get_curve("GEMM").sweep(5)
        assert len(samples) == 5
        assert samples[0][0] == pytest.approx(0.60)
        assert samples[-1][0] == pytest.approx(0.90)


class TestValidation:
    def test_bad_voltage_range_rejected(self):
        with pytest.raises(CharacterizationError):
            AcceleratorClass(
                name="x", v_min=0.9, v_max=0.8, f_max_hz=1e9, p_max_mw=10
            )

    def test_threshold_above_vmin_rejected(self):
        with pytest.raises(CharacterizationError):
            AcceleratorClass(
                name="x",
                v_min=0.4,
                v_max=1.0,
                f_max_hz=1e9,
                p_max_mw=10,
                v_threshold=0.5,
            )

    def test_custom_class_is_usable(self):
        spec = AcceleratorClass(
            name="custom", v_min=0.55, v_max=0.95, f_max_hz=1e9, p_max_mw=42
        )
        curve = PowerFrequencyCurve(spec)
        assert curve.power_at_f(5e8) < 42

    @given(st.floats(0.05, 0.95))
    @settings(max_examples=50, deadline=None)
    def test_inverse_consistency_property(self, frac):
        c = get_curve("Conv2D")
        p = c.p_max_mw * frac
        f = c.f_for_power(p)
        if f > 0:
            assert c.power_at_f(f) <= p + 1e-6
