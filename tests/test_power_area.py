"""Tests for the area-overhead model."""

import pytest

from repro.power.area import (
    BLITZCOIN_BLOCK_AREAS_MM2,
    PRIOR_ART_OVERHEADS,
    AreaError,
    TileAreaBudget,
    comparison_rows,
)


class TestTileAreaBudget:
    def test_paper_headline_under_one_percent(self):
        budget = TileAreaBudget(1.0)
        assert budget.total_fraction < 0.01

    def test_block_breakdown_matches_paper(self):
        fractions = TileAreaBudget(1.0).block_fractions
        assert fractions["tdc_and_coin_logic"] == pytest.approx(0.0049)
        assert fractions["ring_oscillator"] == pytest.approx(0.0004)
        assert 0.0001 <= fractions["ldo"] <= 0.0003

    def test_overhead_scales_inversely_with_tile_size(self):
        small = TileAreaBudget(0.25)
        large = TileAreaBudget(4.0)
        assert small.total_fraction == pytest.approx(
            16 * large.total_fraction
        )

    def test_soc_overhead_replicates_per_tile(self):
        budget = TileAreaBudget(1.0)
        one = budget.soc_overhead_mm2(1)
        assert budget.soc_overhead_mm2(400) == pytest.approx(400 * one)

    def test_advantage_over_prior_art(self):
        budget = TileAreaBudget(1.0)
        # Switched-capacitor designs are 30-70x larger.
        assert budget.advantage_over("switched-cap UVFR [51]") > 30
        # Even the closest digital LDO is >2x larger.
        assert budget.advantage_over("digital LDO [54]") > 2

    def test_invalid_inputs_rejected(self):
        with pytest.raises(AreaError):
            TileAreaBudget(0.0)
        budget = TileAreaBudget(1.0)
        with pytest.raises(AreaError):
            budget.soc_overhead_mm2(0)
        with pytest.raises(AreaError):
            budget.advantage_over("fictional design")


class TestComparison:
    def test_blitzcoin_is_smallest(self):
        rows = comparison_rows()
        ours = dict(rows)["BlitzCoin (this work)"]
        assert all(
            ours < frac
            for name, frac in rows
            if name != "BlitzCoin (this work)"
        )

    def test_all_prior_designs_listed(self):
        rows = comparison_rows()
        names = {name for name, _ in rows}
        assert set(PRIOR_ART_OVERHEADS) <= names

    def test_block_areas_positive(self):
        assert all(a > 0 for a in BLITZCOIN_BLOCK_AREAS_MM2.values())
