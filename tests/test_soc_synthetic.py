"""Tests for synthetic SoC generation."""

import pytest

from repro.soc.synthetic import (
    accelerator_census,
    suggested_budget_mw,
    synthetic_soc,
    synthetic_workload,
)
from repro.soc.tile import TileKind


class TestSyntheticSoc:
    def test_grid_filled_with_accelerators(self):
        cfg = synthetic_soc(5, seed=1)
        assert cfg.topology.n_tiles == 25
        assert len(cfg.managed_accelerators()) == 22  # 25 - cpu/mem/io

    def test_infrastructure_tiles_present(self):
        cfg = synthetic_soc(5, seed=1)
        kinds = [s.kind for s in cfg.tiles.values()]
        assert kinds.count(TileKind.CPU) == 1
        assert kinds.count(TileKind.MEM) == 1
        assert kinds.count(TileKind.IO) == 1

    def test_deterministic_by_seed(self):
        a = synthetic_soc(6, seed=3)
        b = synthetic_soc(6, seed=3)
        assert accelerator_census(a) == accelerator_census(b)

    def test_different_seeds_differ(self):
        a = synthetic_soc(8, seed=1)
        b = synthetic_soc(8, seed=2)
        assert accelerator_census(a) != accelerator_census(b)

    def test_mix_controls_composition(self):
        cfg = synthetic_soc(6, seed=1, mix={"FFT": 1.0})
        assert set(accelerator_census(cfg)) == {"FFT"}

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            synthetic_soc(1)
        with pytest.raises(ValueError):
            synthetic_soc(4, mix={"TPU": 1.0})
        with pytest.raises(ValueError):
            synthetic_soc(4, mix={"FFT": 0.0})


class TestSyntheticWorkload:
    def test_one_task_per_tile_by_default(self):
        cfg = synthetic_soc(5, seed=1)
        graph = synthetic_workload(cfg, seed=1)
        assert len(graph) == len(cfg.managed_accelerators())
        assert graph.is_parallel()

    def test_tasks_pinned_to_matching_tiles(self):
        cfg = synthetic_soc(4, seed=2)
        graph = synthetic_workload(cfg, seed=2)
        for task in graph.tasks.values():
            assert cfg.class_of(task.tile_hint) == task.acc_class

    def test_oversubscription(self):
        cfg = synthetic_soc(4, seed=2)
        graph = synthetic_workload(cfg, seed=2, tasks_per_tile=2.0)
        assert len(graph) == 2 * len(cfg.managed_accelerators())

    def test_invalid_work_range_rejected(self):
        cfg = synthetic_soc(4, seed=0)
        with pytest.raises(ValueError):
            synthetic_workload(cfg, work_range=(10, 5))


class TestBudget:
    def test_budget_is_fraction_of_combined_peak(self):
        cfg = synthetic_soc(4, seed=5)
        b30 = suggested_budget_mw(cfg, 0.30)
        b60 = suggested_budget_mw(cfg, 0.60)
        assert b60 == pytest.approx(2 * b30)
        assert b30 > 0

    def test_invalid_fraction_rejected(self):
        cfg = synthetic_soc(4, seed=5)
        with pytest.raises(ValueError):
            suggested_budget_mw(cfg, 0.0)


class TestEndToEnd:
    def test_synthetic_soc_runs_under_blitzcoin(self):
        from repro.soc.executor import WorkloadExecutor
        from repro.soc.pm import PMKind, build_pm
        from repro.soc.soc import Soc

        cfg = synthetic_soc(4, seed=7)
        soc = Soc(cfg)
        budget = suggested_budget_mw(cfg)
        pm = build_pm(PMKind.BLITZCOIN, soc, budget)
        graph = synthetic_workload(cfg, seed=7)
        result = WorkloadExecutor(soc, graph, pm).run()
        assert result.makespan_cycles > 0
        assert result.peak_power_mw() <= 1.10 * budget
