"""Tests for the Monte-Carlo trial runner."""

import pytest

from repro.core.config import plain_one_way, preferred_embodiment
from repro.core.runner import (
    ScenarioSpec,
    heterogeneous_scenario,
    homogeneous_scenario,
    random_initial_allocation,
    run_convergence_trial,
    run_trials,
    settle_to_residual,
)
from repro.sim.rng import rng_for


class TestScenarios:
    def test_homogeneous_pool_size(self):
        s = homogeneous_scenario(4, max_per_tile=32, utilization=0.5)
        assert s.n_tiles == 16
        assert s.pool == 16 * 32 // 2

    def test_heterogeneous_types_spread_max_values(self):
        s = heterogeneous_scenario(4, acc_types=4, base_max=8, seed=1)
        distinct = set(s.max_by_tile)
        assert distinct == {8, 16, 24, 32}

    def test_heterogeneous_single_type_is_homogeneous(self):
        s = heterogeneous_scenario(4, acc_types=1, base_max=8)
        assert set(s.max_by_tile) == {8}

    def test_invalid_scenario_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(max_by_tile=[1, -2], pool=5)
        with pytest.raises(ValueError):
            ScenarioSpec(max_by_tile=[1], pool=-1)
        with pytest.raises(ValueError):
            heterogeneous_scenario(4, acc_types=0)


class TestInitialAllocation:
    def test_allocation_sums_to_pool(self):
        s = homogeneous_scenario(5)
        has = random_initial_allocation(s, rng_for(3))
        assert sum(has) == s.pool
        assert len(has) == 25

    def test_donor_concentration(self):
        s = homogeneous_scenario(10)
        has = random_initial_allocation(s, rng_for(3), donor_fraction=0.1)
        donors = sum(1 for h in has if h > 0)
        assert donors <= 10  # at most 10% of 100 tiles

    def test_full_spread_with_unit_fraction(self):
        s = homogeneous_scenario(10)
        has = random_initial_allocation(s, rng_for(3), donor_fraction=1.0)
        donors = sum(1 for h in has if h > 0)
        assert donors > 50  # nearly all tiles get something

    def test_deterministic_under_seed(self):
        s = homogeneous_scenario(6)
        a = random_initial_allocation(s, rng_for(9))
        b = random_initial_allocation(s, rng_for(9))
        assert a == b

    def test_invalid_fraction_rejected(self):
        s = homogeneous_scenario(4)
        with pytest.raises(ValueError):
            random_initial_allocation(s, rng_for(0), donor_fraction=0.0)


class TestTrials:
    def test_trial_converges_and_reports(self):
        r = run_convergence_trial(4, plain_one_way(), seed=0, threshold=1.5)
        assert r.converged
        assert r.cycles is not None and r.cycles > 0
        assert r.packets > 0
        assert r.final_error < 1.5
        assert r.start_error > r.final_error

    def test_trial_is_deterministic(self):
        a = run_convergence_trial(4, plain_one_way(), seed=7, threshold=1.5)
        b = run_convergence_trial(4, plain_one_way(), seed=7, threshold=1.5)
        assert a == b

    def test_different_seeds_differ(self):
        a = run_convergence_trial(6, plain_one_way(), seed=1, threshold=1.5)
        b = run_convergence_trial(6, plain_one_way(), seed=2, threshold=1.5)
        assert a.cycles != b.cycles or a.packets != b.packets

    def test_run_trials_count(self):
        results = run_trials(3, plain_one_way(), 4)
        assert len(results) == 4

    def test_preferred_embodiment_converges_on_larger_grid(self):
        r = run_convergence_trial(
            8, preferred_embodiment(), seed=0, threshold=1.5
        )
        assert r.converged


class TestSettle:
    def test_settle_reports_residual(self):
        r = settle_to_residual(
            4, preferred_embodiment(), seed=0, settle_cycles=60_000
        )
        assert r.worst_final_error < 4.0
        assert r.exchanges > 0

    def test_settle_is_deterministic(self):
        a = settle_to_residual(4, preferred_embodiment(), seed=5, settle_cycles=30_000)
        b = settle_to_residual(4, preferred_embodiment(), seed=5, settle_cycles=30_000)
        assert a == b
