"""Tests for workload persistence (CSV round-trips)."""

import pytest

from repro.workloads.apps import (
    autonomous_vehicle_dependent,
    computer_vision_dependent,
)
from repro.workloads.synthetic import random_phase_trace
from repro.workloads.trace_io import (
    TraceIoError,
    load_phase_trace,
    load_taskgraph,
    save_phase_trace,
    save_taskgraph,
)


class TestTaskGraphRoundTrip:
    @pytest.mark.parametrize(
        "builder",
        [autonomous_vehicle_dependent, computer_vision_dependent],
    )
    def test_roundtrip_preserves_structure(self, tmp_path, builder):
        graph = builder()
        path = save_taskgraph(graph, tmp_path / "wl.csv")
        back = load_taskgraph(path)
        assert set(back.tasks) == set(graph.tasks)
        for name, task in graph.tasks.items():
            loaded = back[name]
            assert loaded.acc_class == task.acc_class
            assert loaded.work_cycles == task.work_cycles
            assert set(loaded.deps) == set(task.deps)

    def test_tile_hints_preserved(self, tmp_path):
        from repro.workloads.dag import Task, TaskGraph

        graph = TaskGraph([Task("a", "FFT", 100, tile_hint=7)])
        back = load_taskgraph(save_taskgraph(graph, tmp_path / "w.csv"))
        assert back["a"].tile_hint == 7

    def test_loaded_graph_is_runnable(self, tmp_path):
        from repro.soc.executor import WorkloadExecutor
        from repro.soc.pm import PMKind, build_pm
        from tests.conftest import build_soc

        path = save_taskgraph(
            autonomous_vehicle_dependent(), tmp_path / "wl.csv"
        )
        graph = load_taskgraph(path)
        soc = build_soc("3x3")
        pm = build_pm(PMKind.STATIC, soc, 120.0)
        result = WorkloadExecutor(soc, graph, pm).run()
        assert len(result.task_finish_cycles) == len(graph)

    def test_bad_header_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("foo,bar\n1,2\n")
        with pytest.raises(TraceIoError):
            load_taskgraph(bad)

    def test_bad_work_value_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text(
            "name,acc_class,work_cycles,deps,tile_hint\na,FFT,notanint,,\n"
        )
        with pytest.raises(TraceIoError) as err:
            load_taskgraph(bad)
        assert ":2:" in str(err.value)

    def test_cycle_rejected_at_load(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text(
            "name,acc_class,work_cycles,deps,tile_hint\n"
            "a,FFT,10,b,\nb,FFT,10,a,\n"
        )
        with pytest.raises(TraceIoError):
            load_taskgraph(bad)


class TestPhaseTraceRoundTrip:
    def test_roundtrip(self, tmp_path):
        trace = random_phase_trace(6, 5_000, 40_000, seed=3)
        path = save_phase_trace(trace, tmp_path / "trace.csv")
        back = load_phase_trace(path)
        assert back == trace

    def test_missing_metadata_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("time_cycles,tile,active\n10,0,1\n")
        with pytest.raises(TraceIoError):
            load_phase_trace(bad)

    def test_bad_header_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("a,b,c\n")
        with pytest.raises(TraceIoError):
            load_phase_trace(bad)
