"""Tests for workload persistence (CSV round-trips).

Beyond structural round-trips, the property classes pin the stronger
byte-identity contract the fuzzer's corpus rests on: for any valid
trace, ``save(load(save(x)))`` writes the same bytes as ``save(x)``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.apps import (
    autonomous_vehicle_dependent,
    computer_vision_dependent,
)
from repro.workloads.production import diurnal_arrival_trace
from repro.workloads.synthetic import random_phase_trace
from repro.workloads.trace_io import (
    TraceIoError,
    load_arrival_trace,
    load_phase_trace,
    load_taskgraph,
    save_arrival_trace,
    save_phase_trace,
    save_taskgraph,
)
from tests.strategies import arrival_traces, task_graphs


class TestTaskGraphRoundTrip:
    @pytest.mark.parametrize(
        "builder",
        [autonomous_vehicle_dependent, computer_vision_dependent],
    )
    def test_roundtrip_preserves_structure(self, tmp_path, builder):
        graph = builder()
        path = save_taskgraph(graph, tmp_path / "wl.csv")
        back = load_taskgraph(path)
        assert set(back.tasks) == set(graph.tasks)
        for name, task in graph.tasks.items():
            loaded = back[name]
            assert loaded.acc_class == task.acc_class
            assert loaded.work_cycles == task.work_cycles
            assert set(loaded.deps) == set(task.deps)

    def test_tile_hints_preserved(self, tmp_path):
        from repro.workloads.dag import Task, TaskGraph

        graph = TaskGraph([Task("a", "FFT", 100, tile_hint=7)])
        back = load_taskgraph(save_taskgraph(graph, tmp_path / "w.csv"))
        assert back["a"].tile_hint == 7

    def test_loaded_graph_is_runnable(self, tmp_path):
        from repro.soc.executor import WorkloadExecutor
        from repro.soc.pm import PMKind, build_pm
        from tests.conftest import build_soc

        path = save_taskgraph(
            autonomous_vehicle_dependent(), tmp_path / "wl.csv"
        )
        graph = load_taskgraph(path)
        soc = build_soc("3x3")
        pm = build_pm(PMKind.STATIC, soc, 120.0)
        result = WorkloadExecutor(soc, graph, pm).run()
        assert len(result.task_finish_cycles) == len(graph)

    def test_bad_header_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("foo,bar\n1,2\n")
        with pytest.raises(TraceIoError):
            load_taskgraph(bad)

    def test_bad_work_value_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text(
            "name,acc_class,work_cycles,deps,tile_hint\na,FFT,notanint,,\n"
        )
        with pytest.raises(TraceIoError) as err:
            load_taskgraph(bad)
        assert ":2:" in str(err.value)

    def test_cycle_rejected_at_load(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text(
            "name,acc_class,work_cycles,deps,tile_hint\n"
            "a,FFT,10,b,\nb,FFT,10,a,\n"
        )
        with pytest.raises(TraceIoError):
            load_taskgraph(bad)


class TestPhaseTraceRoundTrip:
    def test_roundtrip(self, tmp_path):
        trace = random_phase_trace(6, 5_000, 40_000, seed=3)
        path = save_phase_trace(trace, tmp_path / "trace.csv")
        back = load_phase_trace(path)
        assert back == trace

    def test_missing_metadata_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("time_cycles,tile,active\n10,0,1\n")
        with pytest.raises(TraceIoError):
            load_phase_trace(bad)

    def test_bad_header_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("a,b,c\n")
        with pytest.raises(TraceIoError):
            load_phase_trace(bad)

    def test_bad_event_value_rejected_with_line_number(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text(
            "time_cycles,tile,active\n#horizon,1000,2\n10,0,maybe\n"
        )
        with pytest.raises(TraceIoError) as err:
            load_phase_trace(bad)
        assert ":3:" in str(err.value)


class TestArrivalTraceRoundTrip:
    def test_roundtrip(self, tmp_path):
        trace = diurnal_arrival_trace(3, 200_000, seed=7)
        assert len(trace.arrivals) > 0
        path = save_arrival_trace(trace, tmp_path / "arrivals.csv")
        assert load_arrival_trace(path) == trace

    def test_empty_trace_roundtrips(self, tmp_path):
        trace = diurnal_arrival_trace(2, 10_000, seed=0, mean_arrivals=0)
        path = save_arrival_trace(trace, tmp_path / "arrivals.csv")
        back = load_arrival_trace(path)
        assert back == trace
        assert back.n_tenants == 2 and back.horizon_cycles == 10_000

    def test_missing_metadata_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("cycle,tenant,acc_class,work_cycles\n5,0,FFT,100\n")
        with pytest.raises(TraceIoError, match="#horizon"):
            load_arrival_trace(bad)

    def test_bad_header_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("a,b,c,d\n")
        with pytest.raises(TraceIoError, match="header"):
            load_arrival_trace(bad)

    def test_bad_work_value_rejected_with_line_number(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text(
            "cycle,tenant,acc_class,work_cycles\n"
            "#horizon,1000,2,\n5,0,FFT,lots\n"
        )
        with pytest.raises(TraceIoError) as err:
            load_arrival_trace(bad)
        assert ":3:" in str(err.value)

    def test_arrival_beyond_horizon_rejected_at_load(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text(
            "cycle,tenant,acc_class,work_cycles\n"
            "#horizon,1000,2,\n5000,0,FFT,100\n"
        )
        with pytest.raises(TraceIoError, match="beyond horizon"):
            load_arrival_trace(bad)


class TestByteIdentity:
    """save(load(save(x))) writes the same bytes as save(x)."""

    @given(graph=task_graphs())
    @settings(max_examples=40, deadline=None)
    def test_taskgraph_byte_identity(self, graph, tmp_path_factory):
        root = tmp_path_factory.mktemp("tg")
        first = save_taskgraph(graph, root / "a.csv")
        second = save_taskgraph(load_taskgraph(first), root / "b.csv")
        assert first.read_bytes() == second.read_bytes()

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_phase_trace_byte_identity(self, seed, tmp_path_factory):
        root = tmp_path_factory.mktemp("pt")
        trace = random_phase_trace(5, 4_000, 30_000, seed=seed)
        first = save_phase_trace(trace, root / "a.csv")
        second = save_phase_trace(load_phase_trace(first), root / "b.csv")
        assert first.read_bytes() == second.read_bytes()

    @given(trace=arrival_traces())
    @settings(max_examples=40, deadline=None)
    def test_arrival_trace_byte_identity(self, trace, tmp_path_factory):
        root = tmp_path_factory.mktemp("at")
        first = save_arrival_trace(trace, root / "a.csv")
        second = save_arrival_trace(load_arrival_trace(first), root / "b.csv")
        assert first.read_bytes() == second.read_bytes()
